"""Setup shim for environments without the ``wheel`` package.

``pyproject.toml`` is the single source of metadata; this file only enables
``pip install -e . --no-use-pep517`` (legacy editable installs) on offline
machines where PEP-517 wheel building is unavailable.
"""

from setuptools import setup

setup()
