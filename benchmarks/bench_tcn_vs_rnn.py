"""TCN vs RNN: the premise of the paper (Sec. I, via Bai et al. [6]).

The paper's motivation rests on TCNs offering "smaller memory footprint,
more data reuse opportunities and higher arithmetic intensity" than RNNs
at comparable accuracy.  This bench quantifies both halves on our
substrate:

* accuracy: ResTCN vs an LSTM of matched hidden width on the Nottingham
  task, identical training budgets;
* hardware: GAP8 latency *per MAC* — convolutions tile and reuse weights
  across the time axis, while the LSTM runs sequential matrix-vector steps
  with no reuse, so the TCN achieves a several-fold better effective
  throughput.
"""

import numpy as np

from conftest import RESTCN_WIDTH, print_header
from repro.core import train_plain
from repro.hw import GAP8Model
from repro.models import MusicLSTM, restcn_hand_tuned
from repro.nn import polyphonic_nll


def test_tcn_vs_rnn_accuracy_and_throughput(benchmark, music_loaders):
    train, val, _ = music_loaders
    results = {}

    def run():
        tcn = restcn_hand_tuned(width_mult=RESTCN_WIDTH, seed=0)
        tcn_out = train_plain(tcn, polyphonic_nll, train, val,
                              epochs=8, patience=5)
        hidden = tcn.hidden
        lstm = MusicLSTM(hidden=hidden, rng=np.random.default_rng(0))
        lstm_out = train_plain(lstm, polyphonic_nll, train, val,
                               epochs=8, patience=5)
        results["tcn"] = (tcn, tcn_out)
        results["lstm"] = (lstm, lstm_out)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    tcn, tcn_out = results["tcn"]
    lstm, lstm_out = results["lstm"]

    gap8 = GAP8Model()
    tcn_report = gap8.estimate(tcn, (1, 88, 128))
    lstm_report = gap8.estimate(lstm, (1, 88, 128))
    tcn_ms_per_mmac = tcn_report.latency_ms / (tcn_report.total_macs / 1e6)
    lstm_ms_per_mmac = lstm_report.latency_ms / (lstm_report.total_macs / 1e6)

    print_header("TCN vs RNN — accuracy and GAP8 arithmetic efficiency")
    print(f"{'model':<14s} {'params':>8s} {'val NLL':>8s} {'train s':>8s} "
          f"{'ms/MMAC':>8s}")
    print(f"{'ResTCN (hand)':<14s} {tcn.count_parameters():>8d} "
          f"{tcn_out.best_val:>8.3f} {tcn_out.seconds:>8.2f} "
          f"{tcn_ms_per_mmac:>8.2f}")
    print(f"{'LSTM':<14s} {lstm.count_parameters():>8d} "
          f"{lstm_out.best_val:>8.3f} {lstm_out.seconds:>8.2f} "
          f"{lstm_ms_per_mmac:>8.2f}")

    # --- paper-shape assertions -----------------------------------------
    # TCN accuracy is at least competitive with the LSTM (Bai et al.).
    assert tcn_out.best_val <= lstm_out.best_val * 1.15
    # TCNs have higher arithmetic intensity on the SoC (lower ms per MMAC).
    assert tcn_ms_per_mmac < lstm_ms_per_mmac
