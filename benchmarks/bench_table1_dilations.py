"""Table I: per-layer dilations of the small/medium/large PIT outputs.

Regenerates the paper's Table I selection: from each λ sweep, pick the
smallest network, the largest, and the one closest in size to the original
hand-designed ResTCN/TEMPONet, and print their per-layer dilation tuples
next to the hand-tuned references.

Paper shape to reproduce: the *small* output uses larger dilations than the
hand-tuned network in most layers; the *large* output keeps several layers
at (or near) d=1; all dilations are powers of two within each layer's
budget.
"""

from conftest import RESTCN_WIDTH, TEMPONET_WIDTH, print_header
from repro.core import layer_choices, pit_layers
from repro.evaluation import select_small_medium_large
from repro.models import (
    RESTCN_HAND_DILATIONS,
    TEMPONET_HAND_DILATIONS,
    restcn_hand_tuned,
    restcn_seed,
    temponet_hand_tuned,
    temponet_seed,
)


def _selection(sweep, reference_params):
    return select_small_medium_large(sweep.points, reference_params)


def _check_dilations_valid(dilations, seed_model):
    for layer, d in zip(pit_layers(seed_model), dilations):
        assert d in layer_choices(layer), (d, layer.rf_max)


def test_table1_dilations(benchmark, restcn_sweep, temponet_sweep):
    restcn_ref = restcn_hand_tuned(width_mult=RESTCN_WIDTH, seed=0).count_parameters()
    temponet_ref = temponet_hand_tuned(width_mult=TEMPONET_WIDTH,
                                       seed=0).count_parameters()

    def run():
        return (_selection(restcn_sweep, restcn_ref),
                _selection(temponet_sweep, temponet_ref))

    restcn_sel, temponet_sel = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table I — dilations of PIT outputs")
    print(f"{'network':<26s} dilations")
    print(f"{'ResTCN dil=hand-tuned':<26s} {RESTCN_HAND_DILATIONS}")
    for name in ("small", "medium", "large"):
        p = restcn_sel[name]
        print(f"{'PIT ResTCN ' + name:<26s} {p.dilations}  "
              f"({p.params} params, lam={p.lam:g})")
    print(f"{'TEMPONet dil=hand-tuned':<26s} {TEMPONET_HAND_DILATIONS}")
    for name in ("small", "medium", "large"):
        p = temponet_sel[name]
        print(f"{'PIT TEMPONet ' + name:<26s} {p.dilations}  "
              f"({p.params} params, lam={p.lam:g})")

    # --- paper-shape assertions -----------------------------------------
    # Selection ordering by construction.
    assert restcn_sel["small"].params <= restcn_sel["medium"].params
    assert restcn_sel["medium"].params <= restcn_sel["large"].params or \
        restcn_sel["medium"].params <= restcn_ref * 1.5
    assert temponet_sel["small"].params <= temponet_sel["large"].params
    # All dilations live in the per-layer power-of-two budgets.
    _check_dilations_valid(restcn_sel["small"].dilations,
                           restcn_seed(width_mult=RESTCN_WIDTH, seed=0))
    _check_dilations_valid(temponet_sel["small"].dilations,
                           temponet_seed(width_mult=TEMPONET_WIDTH, seed=0))
    # The small nets use aggressive dilation: mean d above the hand-tuned.
    small = restcn_sel["small"].dilations
    assert sum(small) >= sum(RESTCN_HAND_DILATIONS)
