"""Fig. 5: search/training-time comparison — PIT vs ProxylessNAS vs plain.

The paper measures wall-clock time to obtain the small/medium/large
TEMPONet variants: ProxylessNAS needs up to 10.4x PIT's time, while PIT is
only 1.3-2.3x slower than training a single hand-designed network.

Here all three are run on the same machine, same loaders, same early-stop
discipline.  The per-epoch cost difference is structural: PIT trains one
weight set with masks; the supernet trains one sampled branch per batch
but must converge every branch, so it needs many more epochs.

Shape asserted: time(plain) <= time(PIT) < time(Proxyless), with
PIT/plain a small factor and Proxyless/PIT > 1.
"""

import numpy as np

from conftest import PIT_SCHEDULE, TEMPONET_WIDTH, print_header, temponet_factory
from repro.baselines import ProxylessTrainer, proxylessify
from repro.core import PITTrainer, train_plain
from repro.models import temponet_hand_tuned
from repro.nn import mae_loss

# Matched search budgets: each method sees the same max number of epochs.
EPOCH_BUDGET = 8
FINETUNE_BUDGET = 4


def _time_plain(loaders):
    train, val, _ = loaders
    model = temponet_hand_tuned(width_mult=TEMPONET_WIDTH, seed=0)
    result = train_plain(model, mae_loss, train, val,
                         epochs=EPOCH_BUDGET + FINETUNE_BUDGET, patience=6)
    return result.seconds, result.best_val


def _time_pit(loaders):
    train, val, _ = loaders
    model = temponet_factory()
    trainer = PITTrainer(model, mae_loss, lam=0.05, gamma_lr=0.03,
                         warmup_epochs=1, max_prune_epochs=EPOCH_BUDGET - 1,
                         prune_patience=EPOCH_BUDGET,
                         finetune_epochs=FINETUNE_BUDGET, finetune_patience=4)
    result = trainer.fit(train, val)
    return result.total_seconds, result.best_val


def _time_proxyless(loaders):
    # The supernet updates only one branch per batch, so converging the
    # chosen path needs roughly |branches|x the epochs of a single-weight-set
    # method — the structural source of the paper's 5-10x gap.  The budget
    # reflects that while keeping the same early-stop patience.
    train, val, _ = loaders
    supernet = proxylessify(temponet_factory(), rng=np.random.default_rng(0))
    trainer = ProxylessTrainer(supernet, mae_loss, lam=1e-6, alpha_lr=0.05,
                               warmup_epochs=1,
                               max_search_epochs=2 * EPOCH_BUDGET,
                               search_patience=EPOCH_BUDGET,
                               finetune_epochs=FINETUNE_BUDGET,
                               finetune_patience=4)
    result = trainer.fit(train, val)
    return result.total_seconds, result.best_val


def test_fig5_training_time(benchmark, ppg_loaders):
    timings = {}

    def run():
        timings["plain"] = _time_plain(ppg_loaders)
        timings["pit"] = _time_pit(ppg_loaders)
        timings["proxyless"] = _time_proxyless(ppg_loaders)
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)

    plain_s, plain_mae = timings["plain"]
    pit_s, pit_mae = timings["pit"]
    px_s, px_mae = timings["proxyless"]

    print_header("Fig. 5 — training time (same machine, same budgets)")
    print(f"{'method':<22s} {'seconds':>9s} {'MAE':>8s} {'vs plain':>9s} {'vs PIT':>8s}")
    print(f"{'No-NAS training':<22s} {plain_s:>9.2f} {plain_mae:>8.3f} "
          f"{1.0:>9.2f} {plain_s / pit_s:>8.2f}")
    print(f"{'PIT':<22s} {pit_s:>9.2f} {pit_mae:>8.3f} "
          f"{pit_s / plain_s:>9.2f} {1.0:>8.2f}")
    print(f"{'ProxylessNAS':<22s} {px_s:>9.2f} {px_mae:>8.3f} "
          f"{px_s / plain_s:>9.2f} {px_s / pit_s:>8.2f}")
    print(f"paper: PIT 1.3-2.3x slower than plain; Proxyless up to 10.4x PIT")

    # --- paper-shape assertions -----------------------------------------
    # PIT costs more than plain training (it also learns γ) but stays within
    # a small factor of it.
    assert pit_s <= plain_s * 5.0
    # The supernet search is the most expensive of the three.
    assert px_s > pit_s
    assert px_s > plain_s
