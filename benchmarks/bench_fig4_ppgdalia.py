"""Fig. 4 (bottom): PIT Pareto frontier on PPG-Dalia from the TEMPONet seed.

Regenerates the (parameters, MAE) scatter of the paper's Fig. 4 bottom
panel: the undilated seed (square), the hand-tuned TEMPONet (triangle),
and the PIT λ-sweep outputs (dots).

Paper shape to reproduce: PIT traces a front from ~seed-size down to the
max-dilation corner; the hand-engineered TEMPONet sits on (not beyond) the
PIT front ("the hand-engineered network sits on the Pareto frontier in
this case").

The λ sweep behind ``temponet_sweep`` runs through the parallel DSE
engine; set ``REPRO_DSE_WORKERS`` to fan the grid points out over a
worker pool and ``REPRO_DSE_CACHE_DIR`` to resume interrupted sessions
(see ``conftest.py``) — the resulting points are identical either way.
"""

import numpy as np

from conftest import TEMPONET_WIDTH, print_header, temponet_factory
from repro.core import train_plain
from repro.evaluation import dominates, pareto_points
from repro.models import TEMPONET_HAND_DILATIONS, temponet_fixed, temponet_hand_tuned
from repro.nn import mae_loss


def _train_reference(dilations, loaders, epochs=12):
    train, val, _ = loaders
    model = temponet_fixed(dilations, width_mult=TEMPONET_WIDTH, seed=0)
    result = train_plain(model, mae_loss, train, val, epochs=epochs, patience=6)
    return model.count_parameters(), result.best_val


def test_fig4_bottom_pareto_frontier(benchmark, temponet_sweep, ppg_loaders):
    seed_point = None
    hand_point = None

    def run():
        nonlocal seed_point, hand_point
        seed_point = _train_reference(None, ppg_loaders)
        hand_point = _train_reference(TEMPONET_HAND_DILATIONS, ppg_loaders)
        return temponet_sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    points = [(p.params, p.loss) for p in sweep.points]
    front = pareto_points(points + [seed_point, hand_point])

    print_header("Fig. 4 (bottom) — TEMPONet on PPG-Dalia: params vs MAE")
    print(f"{'architecture':<28s} {'params':>8s} {'MAE':>8s}")
    print(f"{'TEMPONet seed (d=1)':<28s} {seed_point[0]:>8d} {seed_point[1]:>8.3f}")
    print(f"{'TEMPONet hand-tuned':<28s} {hand_point[0]:>8d} {hand_point[1]:>8.3f}")
    for p in sorted(sweep.points, key=lambda q: q.params):
        tag = f"PIT lam={p.lam:g}"
        print(f"{tag:<28s} {p.params:>8d} {p.loss:>8.3f}  d={p.dilations}")
    print(f"Pareto front: {[(int(a), round(b, 3)) for a, b in front]}")

    # --- paper-shape assertions -----------------------------------------
    sizes = [p.params for p in sweep.points]
    assert max(sizes) > min(sizes)          # front has spread
    assert min(sizes) < seed_point[0]       # smaller-than-seed nets found
    # PIT's best is MAE-competitive with the seed (within 20% at this scale).
    assert min(p.loss for p in sweep.points) <= seed_point[1] * 1.2
    # No PIT point is *strictly dominated* by the seed.
    assert not any(dominates(seed_point, (p.params, p.loss))
                   for p in sweep.points if p.params < seed_point[0])
