"""Table III: deployment of all ten networks on the GAP8 SoC.

The paper deploys, for each benchmark, the d=1 seed, the hand-tuned
original, and the three PIT outputs (small/medium/large), reporting
#weights, loss, latency and energy on the 8-core cluster at 100 MHz.

Two complementary views are produced here:

* **cost columns at full scale** — the paper-width networks carrying the
  dilations PIT discovered at laptop scale, priced by the calibrated GAP8
  model.  This is directly comparable to the paper's ms/mJ magnitudes.
* **loss column at laptop scale** — the trained, int8-quantized small nets
  from the sweep, evaluated through the deployment flow.

Shape asserted (paper Sec. IV-D): PIT-small/medium are several times
smaller *and* faster than the seed, with the latency gain sub-linear in
the size gain; energy tracks latency at constant power.
"""

import numpy as np

from conftest import (
    RESTCN_WIDTH,
    TEMPONET_WIDTH,
    print_header,
)
from repro.core import export_network, pit_layers
from repro.evaluation import select_small_medium_large
from repro.hw import GAP8Model, deploy
from repro.models import (
    RESTCN_HAND_DILATIONS,
    TEMPONET_HAND_DILATIONS,
    restcn_fixed,
    restcn_hand_tuned,
    temponet_fixed,
    temponet_hand_tuned,
)
from repro.nn import mae_loss, polyphonic_nll

RESTCN_INPUT = (1, 88, 128)
TEMPONET_INPUT = (1, 4, 256)


def _full_scale_rows(sweep, fixed_factory, hand_dilations, input_shape, reference):
    """Price paper-width networks with seed/hand/PIT dilations on GAP8."""
    gap8 = GAP8Model()
    selection = select_small_medium_large(sweep.points, reference)
    rows = []
    for name, dilations in [
        ("dil=1 (seed)", None),
        ("dil=hand-tuned", hand_dilations),
        ("PIT small", selection["small"].dilations),
        ("PIT medium", selection["medium"].dilations),
        ("PIT large", selection["large"].dilations),
    ]:
        net = fixed_factory(dilations)
        report = gap8.estimate(net, input_shape)
        rows.append((name, net.count_parameters(), report.latency_ms,
                     report.energy_mj))
    return rows


def _print_rows(title, rows):
    print_header(title)
    print(f"{'network':<22s} {'#weights':>10s} {'latency':>10s} {'energy':>9s}")
    for name, params, latency, energy in rows:
        print(f"{name:<22s} {params / 1e6:>9.2f}M {latency:>8.1f}ms {energy:>7.1f}mJ")


def test_table3_full_scale_costs(benchmark, restcn_sweep, temponet_sweep):
    restcn_ref = restcn_hand_tuned(width_mult=RESTCN_WIDTH, seed=0).count_parameters()
    temponet_ref = temponet_hand_tuned(width_mult=TEMPONET_WIDTH,
                                       seed=0).count_parameters()

    def run():
        restcn_rows = _full_scale_rows(
            restcn_sweep, lambda d: restcn_fixed(d, width_mult=1.0, seed=0),
            RESTCN_HAND_DILATIONS, RESTCN_INPUT, restcn_ref)
        temponet_rows = _full_scale_rows(
            temponet_sweep, lambda d: temponet_fixed(d, width_mult=1.0, seed=0),
            TEMPONET_HAND_DILATIONS, TEMPONET_INPUT, temponet_ref)
        return restcn_rows, temponet_rows

    restcn_rows, temponet_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    _print_rows("Table III (cost columns, full scale) — ResTCN / GAP8",
                restcn_rows)
    print("paper: seed 3.53M/1002ms/262.7mJ, hand 1.05M/500ms/131mJ, "
          "PIT s/m/l 0.37M/336.7, 0.48M/335.9, 1.39M/539.2")
    _print_rows("Table III (cost columns, full scale) — TEMPONet / GAP8",
                temponet_rows)
    print("paper: seed 939K/112.6ms/29.5mJ, hand 423K/58.8ms/15.4mJ, "
          "PIT s/m/l 381K/54.8, 440K/59.8, 694K/86.3")

    for rows in (restcn_rows, temponet_rows):
        seed_name, seed_params, seed_latency, seed_energy = rows[0]
        small = rows[2]
        # PIT-small is several times smaller AND faster than the seed.
        assert seed_params / small[1] > 2.0
        assert seed_latency / small[2] > 1.5
        # Energy follows latency at constant power.
        for _, _, latency, energy in rows:
            assert abs(energy - 0.262 * latency) < 1e-6

    # The sub-linear latency-vs-size effect (paper: 7.4x fewer weights ->
    # only 3.0x faster) shows on ResTCN, whose cost is conv-dominated; in
    # TEMPONet the fixed FC head compresses the *size* gain instead.
    seed_params, seed_latency = restcn_rows[0][1], restcn_rows[0][2]
    small_params, small_latency = restcn_rows[2][1], restcn_rows[2][2]
    assert seed_latency / small_latency < seed_params / small_params


def test_table3_quantized_loss(benchmark, temponet_sweep, ppg_loaders):
    """The loss column: deploy the trained laptop-scale nets with int8."""
    train, _, test = ppg_loaders

    def run():
        selection = select_small_medium_large(
            temponet_sweep.points,
            temponet_hand_tuned(width_mult=TEMPONET_WIDTH, seed=0).count_parameters())
        reports = []
        for name in ("small", "medium", "large"):
            point = selection[name]
            net = temponet_fixed(point.dilations, width_mult=TEMPONET_WIDTH, seed=0)
            # Re-train briefly at this scale before deployment.
            from repro.core import train_plain
            train_plain(net, mae_loss, train, ppg_loaders[1], epochs=4, patience=4)
            reports.append(deploy(net, mae_loss, train, test, TEMPONET_INPUT,
                                  name=f"PIT TEMPONet {name}"))
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table III (loss column, laptop scale) — int8 deployments")
    print(f"{'network':<26s} {'#weights':>9s} {'float':>8s} {'int8':>8s} "
          f"{'latency':>9s} {'energy':>8s}")
    for report in reports:
        print(f"{report.name:<26s} {report.params:>9d} "
              f"{report.float_loss:>8.3f} {report.quantized_loss:>8.3f} "
              f"{report.latency_ms:>7.2f}ms {report.energy_mj:>6.2f}mJ")

    for report in reports:
        assert np.isfinite(report.quantized_loss)
        # int8 quantization must not destroy the regressor.
        assert report.quantized_loss <= report.float_loss * 1.25 + 1.0
