"""Shared fixtures for the benchmark harness.

Every table and figure of the paper is regenerated at *laptop scale*: the
same seed architectures with reduced width (``width_mult``), the synthetic
datasets at reduced size, and shortened training schedules.  Absolute
numbers therefore differ from the paper; the benches assert and print the
*shape* of each result (who wins, by roughly what factor) — see
EXPERIMENTS.md for the side-by-side record.

Expensive artifacts (the λ sweeps) are computed once per session and shared
across bench files through session-scoped fixtures.  Each grid point of a
sweep now trains on a private copy of the loaders' shuffle RNG, so the
points are independent of execution order (parallel == serial,
bit-identical); absolute sweep numbers therefore differ slightly from the
pre-engine serial driver, which threaded one RNG stream through the grid.
Two environment knobs speed up / resume the sweeps without affecting the
numbers further:

* ``REPRO_DSE_WORKERS``  — worker-pool size for the λ sweeps (default 0 =
  serial);
* ``REPRO_DSE_CACHE_DIR`` — directory for JSON sweep caches; completed
  (λ, warmup) points are skipped when a bench session is re-run.

The conv kernels honour ``REPRO_CONV_BACKEND`` (``einsum`` / ``im2col``)
process-wide — see ``repro.autograd.backends``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import PITTrainer
from repro.data import (
    DataLoader,
    NottinghamConfig,
    PPGDaliaConfig,
    make_nottingham,
    make_ppg_dalia,
    train_val_test_split,
)
from repro.evaluation import run_dse
from repro.models import restcn_seed, temponet_seed
from repro.nn import mae_loss, polyphonic_nll

# Scale knobs: one place to trade fidelity for runtime.
RESTCN_WIDTH = 0.06
TEMPONET_WIDTH = 0.125
MUSIC_CONFIG = NottinghamConfig(num_tunes=16, seq_len=32)
PPG_CONFIG = PPGDaliaConfig(num_subjects=3, seconds_per_subject=50)

PIT_SCHEDULE = dict(gamma_lr=0.03, max_prune_epochs=6, prune_patience=6,
                    finetune_epochs=4, finetune_patience=4)
MUSIC_LAMBDAS = (0.0, 3e-4, 3e-3, 3e-2)
PPG_LAMBDAS = (0.0, 0.05, 0.5, 5.0)
SEQ_LEN_MUSIC = MUSIC_CONFIG.seq_len - 1

DSE_WORKERS = int(os.environ.get("REPRO_DSE_WORKERS", "0"))
DSE_CACHE_DIR = os.environ.get("REPRO_DSE_CACHE_DIR")


def _sweep_cache(name: str):
    if not DSE_CACHE_DIR:
        return None
    return os.path.join(DSE_CACHE_DIR, f"dse_{name}.json")


def _loaders(dataset, batch, seed=0):
    train, val, test = train_val_test_split(dataset, rng=np.random.default_rng(seed))
    return (DataLoader(train, batch, shuffle=True, rng=np.random.default_rng(seed + 1)),
            DataLoader(val, batch),
            DataLoader(test, batch))


@pytest.fixture(scope="session")
def music_loaders():
    return _loaders(make_nottingham(MUSIC_CONFIG, seed=0), batch=4)


@pytest.fixture(scope="session")
def ppg_loaders():
    return _loaders(make_ppg_dalia(PPG_CONFIG, seed=0), batch=16)


def restcn_factory():
    return restcn_seed(width_mult=RESTCN_WIDTH, seed=0)


def temponet_factory():
    return temponet_seed(width_mult=TEMPONET_WIDTH, seed=0)


@pytest.fixture(scope="session")
def restcn_sweep(music_loaders):
    """The Fig. 4 (top) λ sweep: PIT searches from the ResTCN seed."""
    train, val, _ = music_loaders
    return run_dse(restcn_factory, polyphonic_nll, train, val,
                   lambdas=MUSIC_LAMBDAS, warmups=(1,),
                   trainer_kwargs=dict(PIT_SCHEDULE),
                   workers=DSE_WORKERS, cache_path=_sweep_cache("restcn"),
                   cache_tag=f"restcn|width={RESTCN_WIDTH}")


@pytest.fixture(scope="session")
def temponet_sweep(ppg_loaders):
    """The Fig. 4 (bottom) λ sweep: PIT searches from the TEMPONet seed."""
    train, val, _ = ppg_loaders
    return run_dse(temponet_factory, mae_loss, train, val,
                   lambdas=PPG_LAMBDAS, warmups=(1,),
                   trainer_kwargs=dict(PIT_SCHEDULE),
                   workers=DSE_WORKERS, cache_path=_sweep_cache("temponet"),
                   cache_tag=f"temponet|width={TEMPONET_WIDTH}")


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
