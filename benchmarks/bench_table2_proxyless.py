"""Table II: PIT vs ProxylessNAS on TEMPONet / PPG-Dalia.

The paper adapts ProxylessNAS to dilation search by enumerating, for every
layer, one supernet branch per power-of-two dilation — exactly the space
PIT explores.  The comparison reports #weights and MAE for the small /
medium / large outputs of each method.

Paper shape to reproduce: the two methods land in the same size region and
comparable accuracy; at the large end PIT matches or beats the supernet
(paper: 694k/4.92 vs 731k/5.15).  At laptop scale we run one search per
size regime (λ low/high) for each method.
"""

import numpy as np

from conftest import PIT_SCHEDULE, TEMPONET_WIDTH, print_header, temponet_factory
from repro.baselines import ProxylessTrainer, proxylessify
from repro.core import PITTrainer
from repro.evaluation import select_small_medium_large
from repro.models import temponet_hand_tuned
from repro.nn import mae_loss

# Expected-size λ for the supernet: its regularizer is in parameter units,
# so the magnitudes differ from PIT's Eq. 6 λ.
PROXYLESS_LAMBDAS = (1e-6, 1e-3)


def _run_proxyless(lam, loaders):
    train, val, _ = loaders
    supernet = proxylessify(temponet_factory(), rng=np.random.default_rng(0))
    trainer = ProxylessTrainer(supernet, mae_loss, lam=lam, alpha_lr=0.05,
                               warmup_epochs=1, max_search_epochs=5,
                               search_patience=5, finetune_epochs=4,
                               finetune_patience=4)
    return trainer.fit(train, val)


def test_table2_pit_vs_proxylessnas(benchmark, temponet_sweep, ppg_loaders):
    def run():
        return [_run_proxyless(lam, ppg_loaders) for lam in PROXYLESS_LAMBDAS]

    proxyless_results = benchmark.pedantic(run, rounds=1, iterations=1)

    reference = temponet_hand_tuned(width_mult=TEMPONET_WIDTH,
                                    seed=0).count_parameters()
    pit_sel = select_small_medium_large(temponet_sweep.points, reference)

    print_header("Table II — ProxylessNAS vs PIT (TEMPONet / PPG-Dalia)")
    print(f"{'method':<24s} {'#weights':>9s} {'MAE':>8s}   dilations")
    for lam, result in zip(PROXYLESS_LAMBDAS, proxyless_results):
        print(f"{'Proxyless lam=' + format(lam, 'g'):<24s} "
              f"{result.params:>9d} {result.best_val:>8.3f}   {result.dilations}")
    for name in ("small", "medium", "large"):
        p = pit_sel[name]
        print(f"{'PIT ' + name:<24s} {p.params:>9d} {p.loss:>8.3f}   {p.dilations}")

    # --- paper-shape assertions -----------------------------------------
    pit_sizes = {p.params for p in temponet_sweep.points}
    px_sizes = {r.params for r in proxyless_results}
    # Same search space: both size sets fall in the same global range.
    lo = min(pit_sizes | px_sizes)
    hi = max(pit_sizes | px_sizes)
    assert lo < hi
    for r in proxyless_results:
        assert np.isfinite(r.best_val)
        assert len(r.dilations) == 7
    # PIT's best accuracy is at least competitive with the supernet's best
    # (paper: PIT wins the large regime), with slack for the tiny scale.
    best_pit = min(p.loss for p in temponet_sweep.points)
    best_px = min(r.best_val for r in proxyless_results)
    assert best_pit <= best_px * 1.3
