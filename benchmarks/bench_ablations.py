"""Ablations of PIT's design choices (paper Sec. III-C).

The paper motivates three training-procedure choices without a dedicated
table; this bench makes them measurable:

* **warmup length** — "a shorter warmup, yielding a less accurate network
  at the beginning of pruning, tends to favor model simplifications";
* **fine-tuning** — "both warmup and fine-tuning significantly improve the
  final accuracy of the pruned networks";
* **cost metric** — "the method is easily extendable to other types of
  optimizations (e.g., FLOPs reduction)": the FLOPs-weighted regularizer
  must prune too, weighting long-sequence layers more;
* **PIT vs random search** — sanity: at equal per-candidate budget, PIT's
  single run lands on the random-search Pareto front or better.
"""

import numpy as np

from conftest import PIT_SCHEDULE, print_header, temponet_factory
from repro.baselines import random_search
from repro.core import PITTrainer, evaluate, export_network, pit_layers
from repro.evaluation import dominates
from repro.nn import mae_loss

LAM = 0.3  # moderate pressure: warmup length can tip layers either way


def _search(loaders, lam=LAM, warmup=1, finetune=4, regularizer="size"):
    train, val, _ = loaders
    model = temponet_factory()
    trainer = PITTrainer(model, mae_loss, lam=lam, gamma_lr=0.05,
                         warmup_epochs=warmup, max_prune_epochs=6,
                         prune_patience=6, finetune_epochs=finetune,
                         finetune_patience=4, regularizer=regularizer)
    result = trainer.fit(train, val)
    return model, result


def test_ablation_warmup_length(benchmark, ppg_loaders):
    results = {}

    def run():
        for warmup in (0, 3):
            _, result = _search(ppg_loaders, warmup=warmup)
            results[warmup] = result
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation — warmup length (Sec. III-C)")
    print(f"{'warmup':>7s} {'params':>8s} {'val MAE':>8s}  dilations")
    for warmup, result in sorted(results.items()):
        print(f"{warmup:>7d} {result.effective_params:>8d} "
              f"{result.best_val:>8.3f}  {result.dilations}")

    # Paper trend: shorter warmup favors simplification (never *larger* nets).
    assert results[0].effective_params <= results[3].effective_params
    for result in results.values():
        assert np.isfinite(result.best_val)


def test_ablation_finetuning(benchmark, ppg_loaders):
    outcome = {}

    def run():
        train, val, _ = ppg_loaders
        model = temponet_factory()
        trainer = PITTrainer(model, mae_loss, lam=LAM, gamma_lr=0.03,
                             warmup_epochs=1, max_prune_epochs=5,
                             prune_patience=5, finetune_epochs=0)
        no_finetune = trainer.fit(train, val)
        before = evaluate(model, mae_loss, val)

        model2, with_finetune = _search(ppg_loaders, finetune=4)
        outcome.update(before=before, no_ft=no_finetune, with_ft=with_finetune)
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation — fine-tuning phase (Sec. III-C)")
    print(f"after pruning, no fine-tune : MAE {outcome['before']:.3f}")
    print(f"after fine-tuning           : MAE {outcome['with_ft'].best_val:.3f}")

    # Fine-tuning restores the best state over its epochs, so it can only
    # improve (or match) the post-pruning validation loss.
    assert outcome["with_ft"].best_val <= outcome["before"] * 1.01


def test_ablation_flops_regularizer(benchmark, ppg_loaders):
    results = {}

    def run():
        # FLOPs terms carry the extra output-length factor (~128 here), so
        # the equivalent pressure needs a correspondingly smaller λ.
        for reg, lam in (("size", 1.0), ("flops", 1.0 / 128)):
            _, result = _search(ppg_loaders, lam=lam, regularizer=reg)
            results[reg] = result
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation — size vs FLOPs regularizer (Sec. III extension)")
    for reg, result in results.items():
        print(f"{reg:<6s}: {result.effective_params:>7d} params, "
              f"MAE {result.best_val:.3f}, d={result.dilations}")

    # Both cost metrics drive pruning at these strengths.
    for result in results.values():
        assert max(result.dilations) > 1


def test_ablation_pit_vs_random_search(benchmark, ppg_loaders):
    collected = {}

    def run():
        train, val, _ = ppg_loaders
        _, pit_result = _search(ppg_loaders, lam=1.0)
        random_results = random_search(
            temponet_factory(), mae_loss, train, val, count=3, epochs=6,
            patience=4, rng=np.random.default_rng(0))
        collected.update(pit=pit_result, random=random_results)
        return collected

    benchmark.pedantic(run, rounds=1, iterations=1)

    pit = collected["pit"]
    print_header("Ablation — PIT vs uniform random search")
    print(f"{'method':<18s} {'params':>8s} {'val MAE':>8s}  dilations")
    print(f"{'PIT (lam=0.5)':<18s} {pit.effective_params:>8d} "
          f"{pit.best_val:>8.3f}  {pit.dilations}")
    for r in collected["random"]:
        print(f"{'random':<18s} {r.params:>8d} {r.best_val:>8.3f}  {r.dilations}")

    # PIT's point must not be strictly dominated by any random candidate.
    pit_point = (pit.effective_params, pit.best_val)
    dominated = [r for r in collected["random"]
                 if dominates((r.params, r.best_val), pit_point)]
    assert len(dominated) <= 1  # tolerate one lucky sample at toy scale
