"""Fig. 4 (top): PIT Pareto frontier on Nottingham from the ResTCN seed.

Regenerates the (parameters, NLL) scatter of the paper's Fig. 4 top panel:
the undilated seed (square), the hand-tuned ResTCN of Bai et al.
(triangle), and the PIT architectures from the λ sweep (dots), then
extracts the Pareto front.

Paper shape to reproduce: PIT points populate a front that reaches both
smaller-and-similar-accuracy and similar-size-and-better-accuracy regions
than the seed, and PIT dominates (or matches) the hand-tuned network.

The λ sweep behind ``restcn_sweep`` runs through the parallel DSE engine;
set ``REPRO_DSE_WORKERS`` to fan the grid points out over a worker pool
and ``REPRO_DSE_CACHE_DIR`` to resume interrupted sessions (see
``conftest.py``) — the resulting points are identical either way.
"""

import numpy as np

from conftest import RESTCN_WIDTH, print_header, restcn_factory
from repro.core import train_plain
from repro.evaluation import pareto_points
from repro.models import RESTCN_HAND_DILATIONS, restcn_fixed, restcn_hand_tuned
from repro.nn import polyphonic_nll


def _train_reference(dilations, loaders, epochs=10):
    train, val, _ = loaders
    model = restcn_fixed(dilations, width_mult=RESTCN_WIDTH, seed=0)
    result = train_plain(model, polyphonic_nll, train, val,
                         epochs=epochs, patience=5)
    return model.count_parameters(), result.best_val


def test_fig4_top_pareto_frontier(benchmark, restcn_sweep, music_loaders):
    seed_point = None
    hand_point = None

    def run():
        nonlocal seed_point, hand_point
        seed_point = _train_reference(None, music_loaders)
        hand_point = _train_reference(RESTCN_HAND_DILATIONS, music_loaders)
        return restcn_sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    points = [(p.params, p.loss) for p in sweep.points]
    front = pareto_points(points + [seed_point, hand_point])

    print_header("Fig. 4 (top) — ResTCN on Nottingham: params vs NLL")
    print(f"{'architecture':<28s} {'params':>8s} {'NLL':>8s}")
    print(f"{'ResTCN seed (d=1)':<28s} {seed_point[0]:>8d} {seed_point[1]:>8.3f}")
    print(f"{'ResTCN hand-tuned':<28s} {hand_point[0]:>8d} {hand_point[1]:>8.3f}")
    for p in sorted(sweep.points, key=lambda q: q.params):
        tag = f"PIT lam={p.lam:g}"
        print(f"{tag:<28s} {p.params:>8d} {p.loss:>8.3f}  d={p.dilations}")
    print(f"Pareto front: {[(int(a), round(b, 3)) for a, b in front]}")

    # --- paper-shape assertions -----------------------------------------
    sizes = [p.params for p in sweep.points]
    # The λ sweep produces size diversity (a front, not a single point).
    assert max(sizes) > min(sizes)
    # PIT finds at least one architecture smaller than the undilated seed.
    assert min(sizes) < seed_point[0]
    # The best PIT point is accuracy-competitive with the seed (within 15%).
    best_loss = min(p.loss for p in sweep.points)
    assert best_loss <= seed_point[1] * 1.15
