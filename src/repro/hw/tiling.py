"""L1 tiling for the GAP8 memory hierarchy.

GAP8's cluster computes out of a 64 kB single-cycle L1 scratchpad; layers
whose working set exceeds it must be *tiled*: the NN-Tool flow splits each
convolution into (output-channel × time) tiles, double-buffers them
through the cluster DMA, and executes tile-by-tile.  This module
implements that tiling decision analytically:

* :func:`layer_working_set` — bytes a full conv layer needs resident;
* :func:`find_tiling` — the largest (channel, time) tile whose working set
  (double-buffered) fits L1, preferring time-major tiles (weights stay
  resident, maximizing reuse — the TCN-friendly case);
* :func:`tiling_traffic` — total DMA bytes moved for a layer under a
  tiling, including weight re-fetches when the kernel does not stay
  resident.

The GAP8 latency model uses these to derive the per-layer DMA term instead
of a flat estimate when ``GAP8Config.use_tiling`` is set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["TileSpec", "layer_working_set", "find_tiling", "tiling_traffic"]


@dataclass
class TileSpec:
    """One tiling decision for a conv layer."""
    channels: int        # output channels per tile
    time: int            # output samples per tile
    num_tiles: int
    weights_resident: bool  # kernel stays in L1 across all tiles
    working_set_bytes: int

    @property
    def is_untiled(self) -> bool:
        return self.num_tiles == 1


def conv_bytes(c_in: int, c_out: int, k: int, t_in: int, t_out: int,
               weight_bytes_per: int = 1, act_bytes_per: int = 1,
               bias_bytes_per: int = 4) -> dict:
    """Byte sizes of one conv's operands (int8 weights/acts, int32 bias)."""
    return {
        "weights": c_out * c_in * k * weight_bytes_per + c_out * bias_bytes_per,
        "input": c_in * t_in * act_bytes_per,
        "output": c_out * t_out * act_bytes_per,
    }


def layer_working_set(c_in: int, c_out: int, k: int, t_in: int, t_out: int) -> int:
    """Bytes the layer needs fully resident (no tiling)."""
    sizes = conv_bytes(c_in, c_out, k, t_in, t_out)
    return sizes["weights"] + sizes["input"] + sizes["output"]


def _tile_bytes(c_in: int, c_out_tile: int, k: int, dilation: int,
                t_tile: int) -> int:
    """Working set of one (channel, time) tile, double-buffered I/O.

    The input tile must include the receptive-field halo
    ``(k - 1) * dilation`` on the left of the time window.
    """
    halo = (k - 1) * dilation
    weights = c_out_tile * c_in * k + c_out_tile * 4
    inputs = c_in * (t_tile + halo)
    outputs = c_out_tile * t_tile
    # Double-buffering: two copies of the I/O tiles in flight.
    return weights + 2 * (inputs + outputs)


def find_tiling(c_in: int, c_out: int, k: int, dilation: int,
                t_out: int, l1_bytes: int = 64 * 1024) -> Optional[TileSpec]:
    """Choose the largest ``(channel, time)`` tile fitting L1.

    Execution model (NN-Tool style): the outer loop walks channel tiles —
    each tile's weight slice is DMA'd in exactly once — and the inner loop
    sweeps time tiles with those weights resident.  Larger channel tiles
    are preferred (fewer input re-reads), then larger time tiles (less
    halo overhead).

    Returns None when even a (1-channel, 1-sample) tile does not fit —
    the layer cannot execute from L1 at all (never the case for the
    paper's networks, but callers must handle it).
    """
    c_tile = c_out
    while c_tile >= 1:
        t_tile = t_out
        while t_tile >= 1:
            size = _tile_bytes(c_in, c_tile, k, dilation, t_tile)
            if size <= l1_bytes:
                num = math.ceil(c_out / c_tile) * math.ceil(t_out / t_tile)
                return TileSpec(channels=c_tile, time=t_tile, num_tiles=num,
                                weights_resident=(c_tile == c_out),
                                working_set_bytes=size)
            if t_tile == 1:
                break
            t_tile = max(1, t_tile // 2)
        if c_tile == 1:
            break
        c_tile = max(1, c_tile // 2)
    return None


def tiling_traffic(c_in: int, c_out: int, k: int, dilation: int,
                   t_in: int, t_out: int, tile: TileSpec) -> int:
    """Total L2→L1 DMA bytes for one layer under a tiling decision.

    Weight slices move exactly once (the channel-outer/time-inner sweep
    keeps each slice resident for its whole time sweep); the input window
    is re-read once per channel pass, plus the halo overlap once per time
    tile; outputs move once.
    """
    halo = (k - 1) * dilation
    weight_bytes = c_out * c_in * k + c_out * 4
    time_tiles = math.ceil(t_out / tile.time)
    channel_passes = math.ceil(c_out / tile.channels)

    input_traffic = channel_passes * c_in * (t_out + halo * time_tiles)
    output_traffic = c_out * t_out
    return input_traffic + output_traffic + weight_bytes
