"""Analytical performance/energy model of the GAP8 SoC (paper Sec. IV-A/D).

GAP8 is GreenWaves Technologies' parallel ultra-low-power SoC: one I/O core
plus an 8-core RISC-V cluster with DSP ISA extensions, a 64 kB single-cycle
L1 scratchpad, 512 kB of L2, optional external L3, and two DMA engines.
The paper deploys int8 networks on the 8-core cluster at 100 MHz via the
proprietary NN-Tool flow and reports latency/energy (Table III).

Since the silicon is unavailable here, we model per-layer cost analytically
and calibrate the constants against the *published seed-network
measurements* (substitution documented in DESIGN.md §4):

* effective MAC throughput at d=1 is ``mac_rate_d1`` MAC/cycle — the value
  3.6 reproduces both published seed latencies (ResTCN d=1: 1002 ms with
  128-frame sequences; TEMPONet d=1: 112.6 ms) within a few percent;
* dilated kernels pay a throughput penalty ``1 + dilation_penalty·log2(d)``
  (strided loads break SIMD/DMA locality) — this reproduces the paper's
  *sub-linear* latency-vs-size scaling (7.4× fewer weights → only 3×
  faster);
* per-layer fixed overhead (kernel setup, im2col, DMA programming) and an
  L3 penalty when weights exceed L2 complete the model;
* energy = latency × average cluster power; Table III is consistent with a
  constant 262 mW (every row satisfies E ≈ 0.262 · latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import AvgPool1d, BatchNorm1d, CausalConv1d, Linear, MaxPool1d, Module
from ..core.pit_conv import PITConv1d

__all__ = ["GAP8Config", "LayerCost", "GAP8Report", "GAP8Model"]


def _is_recurrent(module: Module) -> bool:
    from ..nn.recurrent import GRU, LSTM
    return isinstance(module, (LSTM, GRU))


@dataclass
class GAP8Config:
    """Hardware constants; defaults calibrated to paper Table III."""
    cluster_cores: int = 8
    frequency_hz: float = 100e6
    l1_bytes: int = 64 * 1024
    l2_bytes: int = 512 * 1024
    mac_rate_d1: float = 3.6          # effective MAC/cycle, whole cluster, d=1
    dilation_penalty: float = 0.30    # throughput divisor grows with log2(d)
    dma_bytes_per_cycle: float = 4.0  # L2 <-> L1 DMA bandwidth
    fixed_cycles_per_layer: float = 2_000.0
    l3_penalty: float = 2.0           # memory-cycle multiplier when spilling to L3
    power_w: float = 0.262            # average cluster+SoC power at 100 MHz
    # RNN steps are sequential matrix-vector products: no weight reuse across
    # a tile, so throughput is memory-bound — the quantitative basis of the
    # paper's "TCNs offer more data reuse / higher arithmetic intensity"
    # premise (Sec. I, via [6]).
    rnn_mac_rate: float = 0.9
    # When True, the DMA term is derived from an explicit L1 tiling decision
    # (repro.hw.tiling) instead of a flat operand-size estimate.
    use_tiling: bool = True

    def mac_rate(self, dilation: int) -> float:
        """Effective cluster MAC throughput for a given dilation."""
        return self.mac_rate_d1 / (1.0 + self.dilation_penalty * math.log2(dilation))


@dataclass
class LayerCost:
    """Per-layer deployment cost breakdown."""
    name: str
    kind: str
    macs: int
    weight_bytes: int
    activation_bytes: int
    dilation: int
    compute_cycles: float
    memory_cycles: float
    fixed_cycles: float

    @property
    def cycles(self) -> float:
        return self.compute_cycles + self.memory_cycles + self.fixed_cycles


@dataclass
class GAP8Report:
    """Whole-network deployment estimate (one Table III row)."""
    layers: List[LayerCost]
    total_cycles: float
    latency_ms: float
    energy_mj: float
    total_macs: int
    total_weight_bytes: int
    fits_l2: bool

    def summary(self) -> str:
        return (f"{self.total_macs / 1e6:.1f} MMAC, "
                f"{self.total_weight_bytes / 1024:.0f} kB weights, "
                f"{self.latency_ms:.1f} ms, {self.energy_mj:.1f} mJ"
                + ("" if self.fits_l2 else " [L3 spill]"))


class GAP8Model:
    """Estimate latency/energy of a network deployed on the GAP8 cluster.

    Usage::

        model = GAP8Model()
        report = model.estimate(network, input_shape=(1, 88, 128))

    The network must be an *exported* (fixed-dilation) model; searchable
    models are rejected so that reported numbers always describe a
    deployable TCN.
    """

    def __init__(self, config: Optional[GAP8Config] = None):
        self.config = config or GAP8Config()

    # ------------------------------------------------------------------
    def estimate(self, network: Module, input_shape: Tuple[int, ...]) -> GAP8Report:
        """Trace one forward pass and price every layer."""
        for module in network.modules():
            if isinstance(module, PITConv1d):
                raise ValueError(
                    "GAP8Model requires an exported network; call "
                    "repro.core.export_network first")
        self._trace(network, input_shape)
        total_weight_bytes = self._network_weight_bytes(network)
        fits_l2 = total_weight_bytes <= self.config.l2_bytes

        layers = []
        for name, module in network.named_modules():
            cost = self._layer_cost(name, module, fits_l2)
            if cost is not None:
                layers.append(cost)

        total_cycles = sum(layer.cycles for layer in layers)
        latency_s = total_cycles / self.config.frequency_hz
        return GAP8Report(
            layers=layers,
            total_cycles=total_cycles,
            latency_ms=latency_s * 1e3,
            energy_mj=latency_s * self.config.power_w * 1e3,
            total_macs=sum(layer.macs for layer in layers),
            total_weight_bytes=total_weight_bytes,
            fits_l2=fits_l2,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _trace(network: Module, input_shape: Tuple[int, ...]) -> None:
        was_training = network.training
        network.eval()
        with no_grad():
            network(Tensor(np.zeros(input_shape)))
        if was_training:
            network.train()

    @staticmethod
    def _network_weight_bytes(network: Module) -> int:
        total = 0
        for module in network.modules():
            if isinstance(module, (CausalConv1d, Linear)):
                total += module.weight.data.size  # int8: 1 byte per weight
                if module.bias is not None:
                    total += module.bias.data.size * 4  # int32 biases
            elif _is_recurrent(module):
                total += sum(p.data.size for _, p in module.named_parameters())
        return total

    def _layer_cost(self, name: str, module: Module, fits_l2: bool) -> Optional[LayerCost]:
        cfg = self.config
        if isinstance(module, CausalConv1d):
            if not hasattr(module, "last_t_out"):
                raise RuntimeError(f"layer {name} was never traced")
            t_out = module.last_t_out
            t_in = module.last_t_in
            macs = (module.in_channels * module.out_channels
                    * module.kernel_size * t_out)
            weight_bytes = module.weight.data.size + (
                module.bias.data.size * 4 if module.bias is not None else 0)
            dilation = module.dilation
            kind = "conv1d"
            if cfg.use_tiling:
                from .tiling import find_tiling, tiling_traffic
                tile = find_tiling(module.in_channels, module.out_channels,
                                   module.kernel_size, dilation, t_out,
                                   l1_bytes=cfg.l1_bytes)
                if tile is None:
                    raise ValueError(
                        f"layer {name} cannot be tiled into {cfg.l1_bytes} B of L1")
                traffic = tiling_traffic(
                    module.in_channels, module.out_channels,
                    module.kernel_size, dilation, t_in, t_out, tile)
                # The memory term below adds weight_bytes once; the rest of
                # the tiled traffic (inputs, outputs, weight re-fetches)
                # lands in act_bytes.
                act_bytes = max(traffic - weight_bytes, 0)
            else:
                act_bytes = (module.in_channels * t_in
                             + module.out_channels * t_out)
        elif isinstance(module, Linear):
            if not hasattr(module, "last_input_shape"):
                raise RuntimeError(f"layer {name} was never traced")
            macs = module.in_features * module.out_features
            weight_bytes = module.weight.data.size + (
                module.bias.data.size * 4 if module.bias is not None else 0)
            act_bytes = module.in_features + module.out_features
            dilation = 1
            kind = "linear"
        elif _is_recurrent(module):
            if not hasattr(module, "last_t"):
                raise RuntimeError(f"layer {name} was never traced")
            t = module.last_t
            macs = sum(p.data.size for n, p in module.named_parameters()
                       if n.startswith("weight")) * t
            weight_bytes = sum(p.data.size for _, p in module.named_parameters())
            act_bytes = (module.input_size + module.hidden_size) * t
            # Sequential GEMV steps: memory-bound throughput, no dilation.
            compute = macs / cfg.rnn_mac_rate
            memory = (weight_bytes * t + act_bytes) / cfg.dma_bytes_per_cycle
            if not fits_l2:
                memory *= cfg.l3_penalty
            return LayerCost(
                name=name, kind="recurrent", macs=macs,
                weight_bytes=weight_bytes, activation_bytes=act_bytes,
                dilation=1, compute_cycles=compute, memory_cycles=memory,
                fixed_cycles=cfg.fixed_cycles_per_layer * 2)
        else:
            # BatchNorm folds into the preceding conv at deployment; pooling
            # and activations are memory-bound and folded into the fixed
            # per-layer overhead of their producer.
            return None

        compute = macs / (cfg.mac_rate(dilation))
        memory = (weight_bytes + act_bytes) / cfg.dma_bytes_per_cycle
        if not fits_l2:
            memory *= cfg.l3_penalty
        return LayerCost(
            name=name, kind=kind, macs=macs, weight_bytes=weight_bytes,
            activation_bytes=act_bytes, dilation=dilation,
            compute_cycles=compute, memory_cycles=memory,
            fixed_cycles=cfg.fixed_cycles_per_layer)
