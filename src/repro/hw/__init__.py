"""Hardware deployment substrate: int8 quantization + GAP8 SoC model."""

from .quantization import (
    QuantizedArray,
    quantize_array,
    dequantize_array,
    fake_quantize,
    FakeQuant,
    QuantWrapper,
    quantize_network,
    quantization_error,
)
from .gap8 import GAP8Config, LayerCost, GAP8Report, GAP8Model
from .deployment import (
    DeploymentReport,
    GAP8PointEvaluator,
    deploy,
    format_table_iii,
    gap8_evaluator,
)

__all__ = [
    "QuantizedArray",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "FakeQuant",
    "QuantWrapper",
    "quantize_network",
    "quantization_error",
    "GAP8Config",
    "LayerCost",
    "GAP8Report",
    "GAP8Model",
    "DeploymentReport",
    "GAP8PointEvaluator",
    "deploy",
    "format_table_iii",
    "gap8_evaluator",
]
