"""Post-training int8 quantization (the paper deploys "int8-quantized models").

Implements the standard NN-Tool/X-CUBE-AI-style scheme:

* weights: symmetric per-output-channel int8 (zero-point 0);
* activations: affine per-tensor uint8, ranges collected from a calibration
  pass over representative data;
* biases: int32 (kept in float here — they are exact at these scales).

:func:`quantize_network` produces a *fake-quantized* copy of a model: every
``CausalConv1d``/``Linear`` weight is replaced by its quantize-dequantize
image and a :class:`FakeQuant` node is attached to its output, so the float
forward pass reproduces int8 inference numerics (what the accuracy column
of Table III is measured on).
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import CausalConv1d, Linear, Module

__all__ = [
    "QuantizedArray",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "FakeQuant",
    "QuantWrapper",
    "quantize_network",
    "quantization_error",
]


@dataclass
class QuantizedArray:
    """Integer codes plus the affine decoding parameters."""
    q: np.ndarray
    scale: np.ndarray  # scalar or per-channel
    zero_point: np.ndarray

    def dequantize(self) -> np.ndarray:
        return (self.q.astype(np.float64) - self.zero_point) * self.scale


def quantize_array(x: np.ndarray, bits: int = 8, symmetric: bool = True,
                   per_channel_axis: Optional[int] = None) -> QuantizedArray:
    """Quantize a float array to ``bits``-bit integers.

    Symmetric mode maps ``[-max|x|, +max|x|]`` onto the signed integer
    range (weights); affine mode maps ``[min, max]`` onto the unsigned
    range (activations).

    Level accounting (the int8 convention of NN-Tool / X-CUBE-AI, which
    the unit tests pin):

    * symmetric ``bits=8`` produces codes in ``[-127, 127]`` — 255 live
      levels with an exact zero and ``scale = max|x| / 127``; code −128
      exists in int8 but is never emitted, keeping the grid symmetric;
    * affine ``bits=8`` produces codes in ``[0, 255]`` — all 256 levels —
      with an *integer* zero-point ``round(-lo/scale)``, so a real 0.0
      inside the range decodes exactly (what makes zero-padding and ReLU
      cut-offs survive quantization).
    """
    if bits < 2 or bits > 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    x = np.asarray(x, dtype=np.float64)
    if per_channel_axis is not None:
        reduce_axes = tuple(a for a in range(x.ndim) if a != per_channel_axis)
    else:
        reduce_axes = tuple(range(x.ndim))

    if symmetric:
        qmax = 2 ** (bits - 1) - 1
        amax = np.abs(x).max(axis=reduce_axes, keepdims=True)
        scale = np.where(amax > 0, amax / qmax, 1.0)
        # |x| <= amax means round(x/scale) already lands in [-qmax, qmax];
        # the clip documents (and enforces) that -qmax-1 never appears.
        q = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int32)
        zero_point = np.zeros_like(scale)
    else:
        qmax = 2 ** bits - 1
        lo = x.min(axis=reduce_axes, keepdims=True)
        hi = x.max(axis=reduce_axes, keepdims=True)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        scale = span / qmax
        zero_point = np.round(-lo / scale)
        q = np.clip(np.round(x / scale) + zero_point, 0, qmax).astype(np.int32)
    return QuantizedArray(q=q, scale=scale, zero_point=zero_point)


def dequantize_array(qa: QuantizedArray) -> np.ndarray:
    return qa.dequantize()


def fake_quantize(x: np.ndarray, bits: int = 8, symmetric: bool = True,
                  per_channel_axis: Optional[int] = None) -> np.ndarray:
    """Quantize-dequantize round trip (the int8 image in float arithmetic)."""
    return quantize_array(x, bits, symmetric, per_channel_axis).dequantize()


class FakeQuant(Module):
    """Activation fake-quantizer with range calibration.

    In ``calibrating`` mode it records the running min/max of what passes
    through; afterwards it clamps + quantize-dequantizes onto the affine
    ``2**bits``-level grid of :func:`quantize_array` (integer zero-point,
    so an in-range 0.0 decodes exactly — ``bits=8`` is the 256-code uint8
    activation grid that pairs with the 255-code symmetric int8 weights).

    Using an *uncalibrated* quantizer raises: the old behaviour was a
    silent float passthrough, which made a never-calibrated "quantized"
    network indistinguishable from the float one.  A *degenerate* range
    (``hi == lo``, e.g. a constant activation) collapses to that single
    value — the one-level grid — rather than passing floats through.

    The calibrated range (``lo``/``hi``) and the mode flag are *registered
    buffers*, not plain attributes: a calibrated model checkpointed with
    :mod:`repro.nn.serialization` gets its activation ranges back on load
    (plain attributes silently dropped them, so a reloaded "quantized"
    model ran in float).
    """

    def __init__(self, bits: int = 8):
        super().__init__()
        self.bits = bits
        self.register_buffer("calibrating", np.asarray(True))
        self.register_buffer("lo", np.asarray(np.inf))
        self.register_buffer("hi", np.asarray(-np.inf))

    @property
    def calibrated(self) -> bool:
        """True once a calibration pass has recorded a finite range."""
        return bool(np.isfinite(self.lo) and np.isfinite(self.hi))

    @property
    def degenerate(self) -> bool:
        """True when calibration saw only a single constant value."""
        return self.calibrated and float(self.hi) <= float(self.lo)

    def forward(self, x: Tensor) -> Tensor:
        if self.calibrating:
            if x.data.size:
                self.lo = min(float(self.lo), float(x.data.min()))
                self.hi = max(float(self.hi), float(x.data.max()))
            return x
        if not self.calibrated:
            raise RuntimeError(
                "FakeQuant used without calibration: no data ever passed "
                "through while `calibrating` was set, so the activation "
                "range is unknown (lo=inf). Run calibration batches "
                "through the network (see quantize_network) first.")
        lo, hi = float(self.lo), float(self.hi)
        if hi <= lo:
            # One-level grid: every input decodes to the single observed
            # value (clip keeps the clamping semantics of the normal path).
            return Tensor(np.clip(x.data, lo, lo))
        qmax = 2 ** self.bits - 1
        scale = (hi - lo) / qmax
        zero_point = np.round(-lo / scale)
        q = np.clip(np.round(x.data / scale) + zero_point, 0, qmax)
        return Tensor((q - zero_point) * scale)

    def __repr__(self) -> str:
        return (f"FakeQuant(bits={self.bits}, "
                f"range=({float(self.lo):.3g}, {float(self.hi):.3g}))")


class QuantWrapper(Module):
    """A conv/linear layer with quantized weights and output fake-quant."""

    def __init__(self, layer: Module, bits: int = 8):
        super().__init__()
        per_channel = 0  # output channels lead both weight layouts
        layer.weight.data[...] = fake_quantize(
            layer.weight.data, bits=bits, symmetric=True,
            per_channel_axis=per_channel)
        self.layer = layer
        self.act_quant = FakeQuant(bits=bits)

    def forward(self, x: Tensor) -> Tensor:
        return self.act_quant(self.layer(x))

    def __repr__(self) -> str:
        return f"QuantWrapper({self.layer!r})"


def quantize_network(model: Module, calibration_loader, bits: int = 8,
                     max_batches: int = 4) -> Module:
    """Return a fake-quantized deep copy of ``model``.

    Weights are per-channel symmetric int8; activation ranges are calibrated
    by running up to ``max_batches`` batches through the wrapped network.
    """
    quantized = copy.deepcopy(model)
    quantized.eval()
    for module in quantized.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, (CausalConv1d, Linear)):
                setattr(module, name, QuantWrapper(child, bits=bits))
    # Calibration pass.
    batches = 0
    with no_grad():
        for x, _ in calibration_loader:
            quantized(Tensor(x))
            batches += 1
            if batches >= max_batches:
                break
    if batches == 0:
        raise ValueError(
            "quantize_network: the calibration loader yielded no batches, "
            "so no activation range was observed. The result would be a "
            "float network masquerading as quantized — pass a loader with "
            "at least one batch of representative data.")
    degenerate: List[str] = []
    for name, module in quantized.named_modules():
        if isinstance(module, FakeQuant):
            module.calibrating = False
            if module.degenerate:
                degenerate.append(name or type(module).__name__)
    if degenerate:
        warnings.warn(
            "quantize_network: degenerate activation range (constant "
            f"calibration output) at {degenerate}; these activations "
            "collapse to a single quantization level. Check that the "
            "calibration data is representative.",
            RuntimeWarning, stacklevel=2)
    return quantized


def quantization_error(model: Module, quantized: Module, loader,
                       max_batches: int = 4) -> float:
    """Mean relative L2 output error of the quantized network."""
    errors: List[float] = []
    model.eval()
    quantized.eval()
    with no_grad():
        for i, (x, _) in enumerate(loader):
            ref = model(Tensor(x)).data
            out = quantized(Tensor(x)).data
            denom = np.linalg.norm(ref) + 1e-12
            errors.append(float(np.linalg.norm(out - ref) / denom))
            if i + 1 >= max_batches:
                break
    return float(np.mean(errors))
