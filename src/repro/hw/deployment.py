"""NN-Tool-like deployment flow (paper Sec. IV-A "Deployment").

The paper's flow: take a trained network, quantize it to int8 with
GreenWaves' NN-Tool, and run it on GAP8's 8-core cluster at 100 MHz.  The
:func:`deploy` function reproduces that pipeline on our substrate:

1. export the searchable model (if needed) into a fixed-dilation TCN;
2. int8 fake-quantization with activation-range calibration;
3. quantized-accuracy evaluation on a test loader;
4. latency/energy estimation with the calibrated GAP8 model.

The result is one row of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..core.export import export_network
from ..core.regularizer import pit_layers
from ..core.trainer import evaluate
from ..nn import Module
from .gap8 import GAP8Config, GAP8Model, GAP8Report
from .quantization import quantize_network

__all__ = ["DeploymentReport", "deploy"]


@dataclass
class DeploymentReport:
    """One deployed network: the columns of paper Table III."""
    name: str
    params: int
    float_loss: float
    quantized_loss: float
    latency_ms: float
    energy_mj: float
    gap8: GAP8Report

    def row(self) -> str:
        """Render in the Table III layout."""
        return (f"{self.name:<24s} {self.params / 1e6:7.2f}M "
                f"{self.quantized_loss:8.3f} {self.latency_ms:9.1f} ms "
                f"{self.energy_mj:7.1f} mJ")


def deploy(network: Module, loss_fn: Callable, calibration_loader, test_loader,
           input_shape: Tuple[int, ...], name: str = "network",
           quantize: bool = True, bits: int = 8,
           config: Optional[GAP8Config] = None) -> DeploymentReport:
    """Run the full deployment flow on a trained network."""
    if pit_layers(network):
        network = export_network(network)
    float_loss = evaluate(network, loss_fn, test_loader)
    if quantize:
        quantized = quantize_network(network, calibration_loader, bits=bits)
        quantized_loss = evaluate(quantized, loss_fn, test_loader)
    else:
        quantized_loss = float_loss
    report = GAP8Model(config).estimate(network, input_shape)
    return DeploymentReport(
        name=name,
        params=network.count_parameters(),
        float_loss=float_loss,
        quantized_loss=quantized_loss,
        latency_ms=report.latency_ms,
        energy_mj=report.energy_mj,
        gap8=report,
    )
