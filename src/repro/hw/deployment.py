"""NN-Tool-like deployment flow (paper Sec. IV-A "Deployment").

The paper's flow: take a trained network, quantize it to int8 with
GreenWaves' NN-Tool, and run it on GAP8's 8-core cluster at 100 MHz.  The
:func:`deploy` function reproduces that pipeline on our substrate:

1. export the searchable model (if needed) into a fixed-dilation TCN;
2. int8 fake-quantization with activation-range calibration;
3. quantized-accuracy evaluation on a test loader;
4. latency/energy estimation with the calibrated GAP8 model.

The result is one row of Table III; :func:`format_table_iii` renders a set
of reports in the paper's layout.

:func:`gap8_evaluator` packages the same pipeline as a
:class:`repro.evaluation.DSEEngine` ``point_evaluator``: the sweep trains a
grid point, the evaluator deploys it and annotates the
:class:`~repro.evaluation.DSEPoint` with latency/energy/quantized-loss
metrics — making deployment cost a first-class DSE objective
(``result.pareto(objectives=("params", "latency_ms", "loss"))``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.export import deployable_network
from ..core.trainer import evaluate
from ..nn import Module
from .gap8 import GAP8Config, GAP8Model, GAP8Report
from .quantization import quantize_network

__all__ = ["DeploymentReport", "deploy", "format_table_iii",
           "GAP8PointEvaluator", "gap8_evaluator"]


@dataclass
class DeploymentReport:
    """One deployed network: the columns of paper Table III."""
    name: str
    params: int
    float_loss: float
    quantized_loss: float
    latency_ms: float
    energy_mj: float
    gap8: GAP8Report

    def row(self) -> str:
        """Render in the Table III layout."""
        return (f"{self.name:<24s} {self.params / 1e6:7.2f}M "
                f"{self.quantized_loss:8.3f} {self.latency_ms:9.1f} ms "
                f"{self.energy_mj:7.1f} mJ")

    def metrics(self) -> Dict[str, float]:
        """The report as a flat objective dict (DSE ``metrics`` payload)."""
        return {
            "latency_ms": float(self.latency_ms),
            "energy_mj": float(self.energy_mj),
            "quantized_loss": float(self.quantized_loss),
            "float_test_loss": float(self.float_loss),
            "fits_l2": 1.0 if self.gap8.fits_l2 else 0.0,
            "total_macs": float(self.gap8.total_macs),
            "weight_bytes": float(self.gap8.total_weight_bytes),
        }


def deploy(network: Module, loss_fn: Callable, calibration_loader, test_loader,
           input_shape: Tuple[int, ...], name: str = "network",
           quantize: bool = True, bits: int = 8,
           config: Optional[GAP8Config] = None) -> DeploymentReport:
    """Run the full deployment flow on a trained network."""
    network = deployable_network(network)
    float_loss = evaluate(network, loss_fn, test_loader)
    if quantize:
        quantized = quantize_network(network, calibration_loader, bits=bits)
        quantized_loss = evaluate(quantized, loss_fn, test_loader)
    else:
        quantized_loss = float_loss
    report = GAP8Model(config).estimate(network, input_shape)
    return DeploymentReport(
        name=name,
        params=network.count_parameters(),
        float_loss=float_loss,
        quantized_loss=quantized_loss,
        latency_ms=report.latency_ms,
        energy_mj=report.energy_mj,
        gap8=report,
    )


def format_table_iii(reports: Sequence[DeploymentReport]) -> str:
    """Paper-style Table III over a set of deployment reports."""
    from ..evaluation.reporting import format_table
    headers = ["network", "params", "float loss", "int8 loss",
               "latency [ms]", "energy [mJ]", "fits L2"]
    rows = [(r.name, r.params, r.float_loss, r.quantized_loss,
             r.latency_ms, r.energy_mj, bool(r.gap8.fits_l2))
            for r in reports]
    return format_table(headers, rows,
                        formats=[None, "d", ".4f", ".4f", ".1f", ".2f", None])


class GAP8PointEvaluator:
    """Hardware-in-the-loop DSE hook: deploy each trained grid point.

    Called by the sweep as ``evaluator(model, point)`` with the trained
    (possibly still searchable) model; returns the deployment metrics to
    merge into ``DSEPoint.metrics``.  Module-level class (not a closure) so
    ``DSEEngine(executor="process")`` can pickle it; ``cache_name`` is its
    stable identity inside :class:`repro.evaluation.DSECache` keys and
    encodes everything that changes the metrics — bit width, the
    quantize-or-not flag, input shape, and any non-default hardware
    constants — so e.g. a ``--bits 4`` resume can never be served int8
    numbers cached by a ``--bits 8`` sweep.  (The loss function and the
    loaders are the model/data identity ``cache_tag`` already names.)

    The calibration/test loaders are deep-copied per call (sharing the
    read-only sample arrays), so concurrent grid points never thread
    iteration state through each other — the same discipline the engine
    applies to the training loaders, keeping parallel sweeps bit-identical
    to serial ones.
    """

    def __init__(self, loss_fn: Callable, calibration_loader, test_loader,
                 input_shape: Tuple[int, ...], *, quantize: bool = True,
                 bits: int = 8, config: Optional[GAP8Config] = None):
        self.loss_fn = loss_fn
        self.calibration_loader = calibration_loader
        self.test_loader = test_loader
        self.input_shape = tuple(input_shape)
        self.quantize = quantize
        self.bits = bits
        self.config = config

    @property
    def cache_name(self) -> str:
        parts = [f"bits={self.bits}" if self.quantize else "no-quant",
                 "shape=" + "x".join(str(d) for d in self.input_shape)]
        if self.config is not None:
            from dataclasses import asdict
            parts.extend(f"{k}={v}"
                         for k, v in sorted(asdict(self.config).items()))
        return f"gap8({','.join(parts)})"

    def __call__(self, network: Module, point=None) -> Dict[str, float]:
        from ..data import clone_loader
        report = deploy(network, self.loss_fn,
                        clone_loader(self.calibration_loader),
                        clone_loader(self.test_loader),
                        self.input_shape,
                        name="" if point is None else f"lam={point.lam:g}",
                        quantize=self.quantize, bits=self.bits,
                        config=self.config)
        return report.metrics()


def gap8_evaluator(loss_fn: Callable, calibration_loader, test_loader,
                   input_shape: Tuple[int, ...], *, quantize: bool = True,
                   bits: int = 8,
                   config: Optional[GAP8Config] = None) -> GAP8PointEvaluator:
    """Build the standard GAP8 ``point_evaluator`` for a DSE sweep.

    Usage::

        engine = DSEEngine(factory, loss_fn, train, val,
                           point_evaluators=[gap8_evaluator(
                               loss_fn, val, test, (1, 4, 256))])
    """
    return GAP8PointEvaluator(loss_fn, calibration_loader, test_loader,
                              input_shape, quantize=quantize, bits=bits,
                              config=config)
