"""TEMPONet — the bio-signal TCN of Zanghieri et al. [1], used on PPG-Dalia.

Three convolutional blocks (channel widths 32/64/128), each with two
dilated temporal convolutions followed by a block-transition convolution
and average pooling, then a fully-connected regression head producing the
heart-rate estimate in BPM.

The 7 searchable convolutions carry the hand-tuned dilations
``(2, 2, 1, 4, 4, 8, 8)`` (paper Table I) with receptive fields
``(5, 5, 5, 9, 9, 17, 17)``; the PIT seed keeps those receptive fields at
``d = 1``.  The resulting search space is ``3·3·3·4·4·5·5 ≈ 1.1e4`` — the
"~10^4 alternatives" of paper Sec. IV-B.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor
from ..core.masks import kept_lags
from ..core.pit_conv import PITConv1d
from ..nn import (
    AvgPool1d,
    BatchNorm1d,
    CausalConv1d,
    Dropout,
    Flatten,
    Linear,
    Module,
    ReLU,
    Sequential,
)

__all__ = ["TEMPONet", "TEMPONET_HAND_DILATIONS", "TEMPONET_RECEPTIVE_FIELDS"]

TEMPONET_HAND_DILATIONS: Tuple[int, ...] = (2, 2, 1, 4, 4, 8, 8)
TEMPONET_RECEPTIVE_FIELDS: Tuple[int, ...] = (5, 5, 5, 9, 9, 17, 17)
# Input/output channels of the 7 searchable convolutions (width_mult = 1).
_CONV_CHANNELS: Tuple[Tuple[int, int], ...] = (
    (4, 32), (32, 32),      # block 1 dilated pair
    (32, 64),               # block 1 -> 2 transition
    (64, 64), (64, 64),     # block 2 dilated pair
    (64, 128), (128, 128),  # block 3 dilated pair
)


def _make_conv(in_ch: int, out_ch: int, rf: int, dilation: Optional[int],
               searchable: bool, rng: np.random.Generator) -> Module:
    if searchable:
        return PITConv1d(in_ch, out_ch, rf_max=rf, rng=rng)
    d = dilation if dilation is not None else 1
    kernel = len(kept_lags(rf, d))
    return CausalConv1d(in_ch, out_ch, kernel_size=kernel, dilation=d, rng=rng)


class TEMPONet(Module):
    """TEMPONet for window-level heart-rate regression.

    Input windows are ``(N, 4, 256)`` (PPG + 3-axis accel, 8 s at 32 Hz);
    output is ``(N, 1)`` — the estimated mean heart rate of the window.

    Parameters
    ----------
    searchable:
        When True the 7 temporal convolutions are :class:`PITConv1d` seed
        layers; otherwise fixed convolutions at ``dilations``.
    dilations:
        Per-conv dilation tuple (len 7); ``TEMPONET_HAND_DILATIONS`` gives
        the hand-engineered network of [1]; all-1 gives the seed.
    width_mult:
        Scales all channel widths and the FC head.
    input_length:
        Window length in samples (256 in the DeepPPG protocol).
    """

    def __init__(self, input_channels: int = 4, input_length: int = 256,
                 searchable: bool = False,
                 dilations: Optional[Sequence[int]] = None,
                 width_mult: float = 1.0, dropout: float = 0.1,
                 output_bias_init: float = 100.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        rfs = TEMPONET_RECEPTIVE_FIELDS
        if dilations is None:
            dils: Tuple[Optional[int], ...] = (None,) * len(rfs)
        else:
            if len(dilations) != len(rfs):
                raise ValueError(f"expected {len(rfs)} dilations, got {len(dilations)}")
            dils = tuple(dilations)

        def scaled(ch: int) -> int:
            return max(2, int(round(ch * width_mult)))

        channels = [(input_channels if i == 0 else scaled(cin), scaled(cout))
                    for i, (cin, cout) in enumerate(_CONV_CHANNELS)]

        convs = []
        for (cin, cout), rf, d in zip(channels, rfs, dils):
            convs.append(_make_conv(cin, cout, rf, d, searchable, rng))

        c1, c2, c3, c4, c5, c6, c7 = convs
        w32, w64, w128 = scaled(32), scaled(64), scaled(128)
        self.features = Sequential(
            c1, BatchNorm1d(w32), ReLU(),
            c2, BatchNorm1d(w32), ReLU(),
            c3, BatchNorm1d(w64), ReLU(), AvgPool1d(2),          # 256 -> 128
            c4, BatchNorm1d(w64), ReLU(),
            c5, BatchNorm1d(w64), ReLU(), AvgPool1d(2),          # 128 -> 64
            c6, BatchNorm1d(w128), ReLU(),
            c7, BatchNorm1d(w128), ReLU(), AvgPool1d(2),         # 64 -> 32
            AvgPool1d(2),                                        # 32 -> 16
        )
        feature_len = input_length // 16
        output = Linear(scaled(128), 1, rng=rng)
        # Start the regressor at the population-mean heart rate: equivalent
        # to the target centering done by the DeepPPG pipeline, and it makes
        # short trainings start from the marginal predictor instead of 0 BPM.
        output.bias.data[...] = output_bias_init
        self.head = Sequential(
            Flatten(),
            Linear(w128 * feature_len, scaled(128), rng=rng), ReLU(),
            Dropout(dropout, rng=rng),
            Linear(scaled(128), scaled(128), rng=rng), ReLU(),
            output,
        )
        self.input_length = input_length

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(N, 4, 256)`` sensor windows to ``(N, 1)`` BPM estimates."""
        if x.shape[-1] != self.input_length:
            raise ValueError(f"expected input length {self.input_length}, "
                             f"got {x.shape[-1]}")
        return self.head(self.features(x))
