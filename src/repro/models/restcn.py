"""ResTCN — the residual TCN of Bai et al. [6] used on Nottingham.

The network is a stack of residual temporal blocks, two causal convolutions
per block, with the classic hand-tuned dilation schedule ``(1, 1, 2, 2, 4,
4, 8, 8)`` and base kernel size 5 — giving per-conv receptive fields
``(5, 5, 9, 9, 17, 17, 33, 33)``.

Following paper Sec. IV-A, the *seed* network for PIT keeps those receptive
fields but sets ``d = 1`` everywhere with maximally-sized filters; in
searchable mode each convolution is a :class:`repro.core.PITConv1d` with
``rf_max`` equal to the layer's receptive field.  With kernel 5 and 4
blocks this yields a search space of ``3·3·4·4·5·5·6·6 ≈ 1.3e5``
configurations — the "~10^5 solutions" of paper Sec. IV-B.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor
from ..core.masks import kept_lags
from ..core.pit_conv import PITConv1d
from ..nn import CausalConv1d, Dropout, Module, ReLU, Sequential

__all__ = ["ResTCN", "RESTCN_HAND_DILATIONS", "RESTCN_RECEPTIVE_FIELDS"]

RESTCN_HAND_DILATIONS: Tuple[int, ...] = (1, 1, 2, 2, 4, 4, 8, 8)
_BASE_KERNEL = 5
RESTCN_RECEPTIVE_FIELDS: Tuple[int, ...] = tuple(
    (_BASE_KERNEL - 1) * d + 1 for d in RESTCN_HAND_DILATIONS)


def _make_conv(in_ch: int, out_ch: int, rf: int, dilation: Optional[int],
               searchable: bool, rng: np.random.Generator) -> Module:
    """One temporal conv: searchable PIT layer, or fixed conv at ``dilation``.

    A fixed conv with dilation ``d`` keeps the receptive field ``rf`` by
    using ``len(kept_lags(rf, d))`` taps (``d=1`` reproduces the maximally-
    sized seed filter).
    """
    if searchable:
        return PITConv1d(in_ch, out_ch, rf_max=rf, rng=rng)
    d = dilation if dilation is not None else 1
    kernel = len(kept_lags(rf, d))
    return CausalConv1d(in_ch, out_ch, kernel_size=kernel, dilation=d, rng=rng)


class _ResidualBlock(Module):
    """Two causal convs with ReLU/dropout and an additive skip connection."""

    def __init__(self, in_ch: int, out_ch: int, rfs: Sequence[int],
                 dilations: Sequence[Optional[int]], dropout: float,
                 searchable: bool, rng: np.random.Generator):
        super().__init__()
        self.conv1 = _make_conv(in_ch, out_ch, rfs[0], dilations[0], searchable, rng)
        self.relu1 = ReLU()
        self.drop1 = Dropout(dropout, rng=rng)
        self.conv2 = _make_conv(out_ch, out_ch, rfs[1], dilations[1], searchable, rng)
        self.relu2 = ReLU()
        self.drop2 = Dropout(dropout, rng=rng)
        self.downsample = (CausalConv1d(in_ch, out_ch, kernel_size=1, rng=rng)
                           if in_ch != out_ch else None)
        self.out_relu = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        out = self.drop1(self.relu1(self.conv1(x)))
        out = self.drop2(self.relu2(self.conv2(out)))
        skip = x if self.downsample is None else self.downsample(x)
        return self.out_relu(out + skip)


class ResTCN(Module):
    """Residual TCN for polyphonic-music next-frame prediction.

    Parameters
    ----------
    input_channels / output_channels:
        88 piano keys in and out (logits per key per frame).
    hidden:
        Width of every block (Bai et al. use 150 for Nottingham).
    searchable:
        When True every conv is a :class:`PITConv1d` seed layer (d=1,
        maximal filters); when False, fixed convs at ``dilations``.
    dilations:
        Per-conv dilation tuple (len 8); defaults to all-1 (the seed) when
        not searchable.  Use ``RESTCN_HAND_DILATIONS`` for the hand-tuned
        network of [6].
    width_mult:
        Scales ``hidden`` (used to shrink experiments to laptop scale).
    """

    def __init__(self, input_channels: int = 88, output_channels: int = 88,
                 hidden: int = 150, dropout: float = 0.1,
                 searchable: bool = False,
                 dilations: Optional[Sequence[int]] = None,
                 width_mult: float = 1.0, head_bias_init: float = -3.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden = max(4, int(round(hidden * width_mult)))
        self.input_channels = input_channels
        self.output_channels = output_channels
        self.hidden = hidden

        rfs = RESTCN_RECEPTIVE_FIELDS
        if dilations is None:
            dils: Tuple[Optional[int], ...] = (None,) * len(rfs)
        else:
            if len(dilations) != len(rfs):
                raise ValueError(f"expected {len(rfs)} dilations, got {len(dilations)}")
            dils = tuple(dilations)

        blocks = []
        in_ch = input_channels
        for b in range(len(rfs) // 2):
            blocks.append(_ResidualBlock(
                in_ch, hidden, rfs[2 * b: 2 * b + 2], dils[2 * b: 2 * b + 2],
                dropout, searchable, rng))
            in_ch = hidden
        self.blocks = Sequential(*blocks)
        # Per-timestep linear head, implemented as a 1-tap convolution.  The
        # bias starts at the piano-roll base rate (~4.5% of keys active per
        # frame -> logit ~ -3), so training begins at the marginal
        # distribution instead of the uninformative 50% point.
        self.head = CausalConv1d(hidden, output_channels, kernel_size=1, rng=rng)
        self.head.bias.data[...] = head_bias_init

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(N, 88, T)`` piano-roll frames to next-frame logits."""
        return self.head(self.blocks(x))

    @property
    def receptive_field(self) -> int:
        """Total temporal receptive field of the stack (stride-aware)."""
        from ..core.export import network_receptive_field
        return network_receptive_field(self)
