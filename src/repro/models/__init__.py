"""Seed architectures: ResTCN (Nottingham) and TEMPONet (PPG-Dalia)."""

from .restcn import ResTCN, RESTCN_HAND_DILATIONS, RESTCN_RECEPTIVE_FIELDS
from .temponet import TEMPONet, TEMPONET_HAND_DILATIONS, TEMPONET_RECEPTIVE_FIELDS
from .rnn_baselines import MusicLSTM, HeartRateGRU
from .seeds import (
    restcn_seed,
    restcn_fixed,
    restcn_hand_tuned,
    temponet_seed,
    temponet_fixed,
    temponet_hand_tuned,
)

__all__ = [
    "ResTCN",
    "RESTCN_HAND_DILATIONS",
    "RESTCN_RECEPTIVE_FIELDS",
    "TEMPONet",
    "TEMPONET_HAND_DILATIONS",
    "TEMPONET_RECEPTIVE_FIELDS",
    "restcn_seed",
    "restcn_fixed",
    "restcn_hand_tuned",
    "temponet_seed",
    "temponet_fixed",
    "temponet_hand_tuned",
    "MusicLSTM",
    "HeartRateGRU",
]
