"""RNN baseline models for the TCN-vs-RNN comparison (paper Sec. I / [6]).

``MusicLSTM`` mirrors the role of ResTCN on Nottingham: an LSTM/GRU encoder
over the 88-key piano roll with a per-timestep linear head producing
next-frame logits.  ``HeartRateGRU`` mirrors TEMPONet on PPG-Dalia.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..nn import CausalConv1d, Linear, Module
from ..nn.recurrent import GRU, LSTM

__all__ = ["MusicLSTM", "HeartRateGRU"]


class MusicLSTM(Module):
    """LSTM for polyphonic-music next-frame prediction, Bai et al. style."""

    def __init__(self, num_keys: int = 88, hidden: int = 150,
                 cell: str = "lstm", head_bias_init: float = -3.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if cell == "lstm":
            self.encoder = LSTM(num_keys, hidden, rng=rng)
        elif cell == "gru":
            self.encoder = GRU(num_keys, hidden, rng=rng)
        else:
            raise ValueError("cell must be 'lstm' or 'gru'")
        self.head = CausalConv1d(hidden, num_keys, kernel_size=1, rng=rng)
        self.head.bias.data[...] = head_bias_init

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.encoder(x))


class HeartRateGRU(Module):
    """GRU regressor for PPG heart-rate windows (the RNN counterpart of
    TEMPONet): encode the window, read the final hidden state, regress BPM."""

    def __init__(self, input_channels: int = 4, hidden: int = 64,
                 output_bias_init: float = 100.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.encoder = GRU(input_channels, hidden, rng=rng)
        self.head = Linear(hidden, 1, rng=rng)
        self.head.bias.data[...] = output_bias_init

    def forward(self, x: Tensor) -> Tensor:
        states = self.encoder(x)           # (N, H, T)
        final = states[:, :, -1]           # (N, H)
        return self.head(final)
