"""Seed-network construction helpers (paper Sec. IV-A).

The paper's protocol: take a hand-engineered TCN, keep every layer's
receptive field, set ``d = 1`` with maximally-sized filters, and hand the
result to PIT.  These helpers build the searchable seeds, the fixed d=1
references, and the hand-tuned originals for both benchmarks, with a
``width_mult`` knob that shrinks the experiment to laptop scale without
changing its structure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .restcn import ResTCN, RESTCN_HAND_DILATIONS
from .temponet import TEMPONet, TEMPONET_HAND_DILATIONS

__all__ = [
    "restcn_seed",
    "restcn_fixed",
    "restcn_hand_tuned",
    "temponet_seed",
    "temponet_fixed",
    "temponet_hand_tuned",
]


def restcn_seed(width_mult: float = 1.0, seed: int = 0, **kwargs) -> ResTCN:
    """Searchable ResTCN seed: PIT layers, d=1, maximal filters."""
    return ResTCN(searchable=True, width_mult=width_mult,
                  rng=np.random.default_rng(seed), **kwargs)


def restcn_fixed(dilations: Optional[Sequence[int]] = None, width_mult: float = 1.0,
                 seed: int = 0, **kwargs) -> ResTCN:
    """Fixed-dilation ResTCN (``None`` = all-1, the undilated seed)."""
    return ResTCN(searchable=False, dilations=dilations, width_mult=width_mult,
                  rng=np.random.default_rng(seed), **kwargs)


def restcn_hand_tuned(width_mult: float = 1.0, seed: int = 0, **kwargs) -> ResTCN:
    """The hand-engineered ResTCN of Bai et al. (d = 1,1,2,2,4,4,8,8)."""
    return restcn_fixed(RESTCN_HAND_DILATIONS, width_mult=width_mult,
                        seed=seed, **kwargs)


def temponet_seed(width_mult: float = 1.0, seed: int = 0, **kwargs) -> TEMPONet:
    """Searchable TEMPONet seed: PIT layers, d=1, maximal filters."""
    return TEMPONet(searchable=True, width_mult=width_mult,
                    rng=np.random.default_rng(seed), **kwargs)


def temponet_fixed(dilations: Optional[Sequence[int]] = None, width_mult: float = 1.0,
                   seed: int = 0, **kwargs) -> TEMPONet:
    """Fixed-dilation TEMPONet (``None`` = all-1, the undilated seed)."""
    return TEMPONet(searchable=False, dilations=dilations, width_mult=width_mult,
                    rng=np.random.default_rng(seed), **kwargs)


def temponet_hand_tuned(width_mult: float = 1.0, seed: int = 0, **kwargs) -> TEMPONet:
    """The hand-engineered TEMPONet of Zanghieri et al. (d = 2,2,1,4,4,8,8)."""
    return temponet_fixed(TEMPONET_HAND_DILATIONS, width_mult=width_mult,
                          seed=seed, **kwargs)
