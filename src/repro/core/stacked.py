"""Stacked PIT search: M (λ, warmup) grid points trained in lockstep.

The DSE sweep of paper Fig. 4 trains the *same* seed architecture once per
λ value; only the loss scaling differs.  :class:`StackedPITTrainer` runs
Algorithm 1 on a whole group of grid points at once through a
:class:`repro.nn.StackedModel`: every parameter carries a leading model
axis ``(M, ...)``, every batch is stacked to ``(M, N, ...)``, and the
per-model losses are combined as::

    L = Σ_m  active_m · (L_perf(W_m) + λ_m · L_R(γ_m))

Model slices are mathematically independent, so the gradient of ``L``
w.r.t. slice ``m`` equals the gradient the sequential trainer would
compute for that grid point; the stack just executes all M of them per op
dispatch.  The trainer reproduces sequential *semantics* exactly (up to
floating-point reduction order — see ``tests/test_dse_stacked.py`` for the
locked tolerance):

* per-model early stopping: a converged model is masked out of the loss
  (``active_m = 0``), its dropout streams stop advancing, its state is
  snapshotted at the stop epoch and restored at the phase boundary — the
  stack keeps training the rest at zero semantic cost to the finished one;
* per-model data streams: each model consumes its *own* epoch sequence of
  the training loader (via :class:`repro.data.EpochReplayLoader`), so a
  model entering fine-tuning after an early prune stop sees exactly the
  batches its sequential run would have;
* per-model Adam / per-model gradient clipping / per-model BatchNorm
  running statistics — all carried on the stacked axis.

Stacking requires the model to be built from layers with registered
stacked counterparts and plain :class:`repro.data.DataLoader` loaders;
anything else raises :class:`repro.nn.StackingUnsupported` *before
training starts* and the DSE engine falls back to the sequential path.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..autograd import (
    CompiledStep,
    EagerStep,
    Tensor,
    binarize_ste,
    concatenate,
    conv1d_causal_stacked,
    get_default_dtype,
    no_grad,
    where,
)
from ..autograd.graph import CompileConfig, CompiledEpoch
from ..data import EpochReplayLoader
from ..nn.losses import (
    bce_with_logits,
    huber_loss,
    mae_loss,
    mse_loss,
    polyphonic_nll,
)
from ..nn.module import Module, Parameter
from ..nn.stacked import (
    StackContext,
    StackedModel,
    StackingUnsupported,
    register_slice_sync,
    register_stacked,
    stack_parameter,
)
from ..optim import Adam, EarlyStopping, clip_grads_stacked
from ..testing import faults
from .checkpoint import (
    TrainerCheckpoint,
    capture_rngs,
    module_rng_map,
    optimizer_arrays,
    restore_optimizer,
    restore_rngs,
    restore_stopper,
    stopper_arrays,
)
from .export import effective_parameters, network_dilations
from .masks import TimeMask, lag_gamma_indices
from .pit_conv import PITConv1d
from .regularizer import gamma_size_coefficients
from .trainer import DivergedError, PITResult

__all__ = [
    "StackedTimeMask",
    "StackedPITConv1d",
    "stacked_regularizer_vector",
    "per_model_loss",
    "register_stacked_loss",
    "clip_grad_norm_stacked",
    "StackedPITTrainer",
]


# ----------------------------------------------------------------------
# Stacked searchable layers
# ----------------------------------------------------------------------

class StackedTimeMask(Module):
    """M independent :class:`TimeMask` instances on one ``(M, L-1)`` γ̂.

    ``forward`` returns the stacked lag mask ``(M, rf_max)``; binarization,
    the reversed cumulative Γ products and the lag scatter all act
    per-model along the leading axis.
    """

    def __init__(self, template: TimeMask, ctx: StackContext):
        super().__init__()
        self.m = ctx.m
        self.rf_max = template.rf_max
        self.length = template.length
        self.threshold = template.threshold
        self.gamma_hat = Parameter(
            stack_parameter(template.gamma_hat.data, ctx.m),
            name="stacked.pit.gamma_hat")
        self.register_buffer(
            "frozen_mask", stack_parameter(template.frozen_mask, ctx.m))
        self._lag_indices = lag_gamma_indices(template.rf_max)
        self.frozen = template.frozen

    # -- training-time mask -------------------------------------------------
    def forward(self) -> Tensor:
        if self.frozen:
            return Tensor(self.frozen_mask)
        if self.length == 1:
            return Tensor(np.ones((self.m, self.rf_max)))
        gamma_bin = binarize_ste(self.gamma_hat, self.threshold)  # (M, L-1)
        full_gamma = concatenate(
            [Tensor(np.ones((self.m, 1))), gamma_bin], axis=1)    # (M, L)
        cumulative = [full_gamma[:, 0:1]]
        for k in range(1, self.length):
            cumulative.append(cumulative[-1] * full_gamma[:, k:k + 1])
        big_gamma = concatenate(list(reversed(cumulative)), axis=1)  # (M, L)
        return big_gamma[:, self._lag_indices]                       # (M, rf)

    # -- per-model bookkeeping ----------------------------------------------
    def binary_gamma(self, index: int) -> np.ndarray:
        if self.length == 1:
            return np.ones(1)
        bits = (self.gamma_hat.data[index] >= self.threshold).astype(np.float64)
        return np.concatenate([[1.0], bits])

    def current_mask(self, index: int) -> np.ndarray:
        from .masks import mask_from_binary_gamma
        if self.frozen and self.frozen_mask.shape[1]:
            return self.frozen_mask[index].copy()
        return mask_from_binary_gamma(self.binary_gamma(index), self.rf_max)

    def current_dilation(self, index: int) -> int:
        from .masks import effective_dilation
        if self.frozen and self.frozen_mask.shape[1]:
            # Mirror TimeMask.current_dilation: a frozen mask is the
            # authority, even if γ̂ was restored out of sync with it.
            alive = np.nonzero(self.frozen_mask[index] >= 0.5)[0]
            gaps = np.diff(alive)
            return int(gaps[0]) if gaps.size else self.rf_max
        return effective_dilation(self.binary_gamma(index), self.rf_max)

    def freeze(self) -> None:
        """Fix all M masks at their current binary values."""
        masks = np.stack([self.current_mask(i) for i in range(self.m)])
        self.update_buffer("frozen_mask", masks)
        self.frozen = True

    def unfreeze(self) -> None:
        self.frozen = False

    def __repr__(self) -> str:
        return (f"StackedTimeMask(M={self.m}, rf_max={self.rf_max}, "
                f"L={self.length}, frozen={self.frozen})")


class StackedPITConv1d(Module):
    """M searchable PIT convolutions sharing one stacked dispatch."""

    def __init__(self, template: PITConv1d, ctx: StackContext):
        super().__init__()
        self.m = ctx.m
        self.in_channels = template.in_channels
        self.out_channels = template.out_channels
        self.rf_max = template.rf_max
        self.stride = template.stride
        self.backend = template.backend
        self.weight = Parameter(stack_parameter(template.weight.data, ctx.m),
                                name="stacked.pitconv.weight")
        self.bias = (Parameter(stack_parameter(template.bias.data, ctx.m),
                               name="stacked.pitconv.bias")
                     if template.bias is not None else None)
        self.mask = StackedTimeMask(template.mask, ctx)
        self._flip_index = template._flip_index.copy()
        self._last_t_out: Optional[int] = None

    def forward(self, x: Tensor) -> Tensor:
        mask_lags = self.mask()                        # (M, rf_max), lag order
        mask_kernel = mask_lags[:, self._flip_index]   # kernel order
        masked_weight = self.weight * mask_kernel.reshape(
            self.m, 1, 1, self.rf_max)
        out = conv1d_causal_stacked(x, masked_weight, self.bias, dilation=1,
                                    stride=self.stride, backend=self.backend)
        self._last_t_out = out.shape[-1]
        return out

    def effective_params(self, index: int) -> int:
        """Post-export parameter count of model slice ``index`` (mirrors
        :meth:`PITConv1d.effective_params`)."""
        kept = int(self.mask.current_mask(index).sum())
        count = kept * self.in_channels * self.out_channels
        if self.bias is not None:
            count += self.out_channels
        return count

    def freeze(self) -> None:
        self.mask.freeze()

    def unfreeze(self) -> None:
        self.mask.unfreeze()

    def __repr__(self) -> str:
        return (f"StackedPITConv1d(M={self.m}, {self.in_channels}, "
                f"{self.out_channels}, rf_max={self.rf_max}, "
                f"s={self.stride})")


@register_stacked(PITConv1d)
def _stack_pit_conv(template: PITConv1d, ctx: StackContext) -> StackedPITConv1d:
    return StackedPITConv1d(template, ctx)


def _sync_mask_flags(stacked_net: Module, template: Module) -> None:
    """Mirror per-stack freeze flags onto the template's masks.

    Parameters and the ``frozen_mask`` buffers travel through the generic
    name-aligned slice sync; the boolean ``frozen`` flag is a plain
    attribute and needs this hook so a synced template reports the right
    dilations/params.
    """
    stacked_masks = [m for m in stacked_net.modules()
                     if isinstance(m, StackedTimeMask)]
    template_masks = [m for m in template.modules() if isinstance(m, TimeMask)]
    for source, target in zip(stacked_masks, template_masks):
        target.frozen = source.frozen


register_slice_sync(_sync_mask_flags)


# ----------------------------------------------------------------------
# Stacked regularizer (Eq. 6 with a per-model axis, λ applied by caller)
# ----------------------------------------------------------------------

def stacked_regularizer_vector(stacked: StackedModel,
                               kind: str = "size") -> Tensor:
    """Per-model regularizer values ``(M,)`` — Eq. 6 *without* the λ factor.

    ``kind="size"`` is the paper's model-size Lasso; ``"flops"`` multiplies
    each layer's term by its last recorded output length, mirroring
    :func:`repro.core.flops_regularizer`.  The caller applies its per-model
    λ vector (``λ ⊙ reg``), which is exactly where stacked grid points
    differ from each other.
    """
    terms: List[Tensor] = []
    for layer in stacked.net.modules():
        if not isinstance(layer, StackedPITConv1d):
            continue
        mask = layer.mask
        if mask.frozen or mask.length <= 1:
            continue
        coeffs = Tensor(gamma_size_coefficients(layer.rf_max))     # (L-1,)
        contribution = (coeffs * mask.gamma_hat.abs()).sum(axis=1)  # (M,)
        factor = float(layer.in_channels * layer.out_channels)
        if kind == "flops":
            factor *= float(layer._last_t_out or 1)
        terms.append(contribution * factor)
    if not terms:
        return Tensor(np.zeros(stacked.stack_size))
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total


# ----------------------------------------------------------------------
# Per-model losses
# ----------------------------------------------------------------------

def _tail_axes(t: Tensor) -> tuple:
    return tuple(range(1, t.ndim))


def _stacked_mse(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return (diff * diff).mean(axis=_tail_axes(pred))


def _stacked_mae(pred: Tensor, target: Tensor) -> Tensor:
    return (pred - target).abs().mean(axis=_tail_axes(pred))


def _stacked_bce(logits: Tensor, targets: Tensor) -> Tensor:
    softplus = ((-logits.abs()).exp() + 1.0).log()
    per_element = logits.relu() - logits * targets + softplus
    return per_element.mean(axis=_tail_axes(logits))


def _stacked_polyphonic_nll(logits: Tensor, targets: Tensor) -> Tensor:
    softplus = ((-logits.abs()).exp() + 1.0).log()
    per_element = logits.relu() - logits * targets + softplus  # (M, N, 88, T)
    per_frame = per_element.sum(axis=2)                        # (M, N, T)
    return per_frame.mean(axis=(1, 2))


def _stacked_huber(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    diff = (pred - target).abs()
    quadratic = 0.5 * diff * diff
    linear = delta * diff - 0.5 * delta * delta
    return where(diff <= delta, quadratic, linear).mean(axis=_tail_axes(pred))


#: loss_fn -> vectorized per-model variant returning an (M,) tensor.
_STACKED_LOSSES: Dict[Callable, Callable] = {
    mse_loss: _stacked_mse,
    mae_loss: _stacked_mae,
    bce_with_logits: _stacked_bce,
    polyphonic_nll: _stacked_polyphonic_nll,
    huber_loss: _stacked_huber,
}


def register_stacked_loss(loss_fn: Callable, stacked_fn: Callable) -> None:
    """Register a vectorized per-model variant of ``loss_fn``.

    ``stacked_fn(pred, target)`` receives stacked ``(M, N, ...)`` tensors
    and must return the ``(M,)`` vector of per-model losses.  Unregistered
    losses still work through a generic per-slice fallback — correct, just
    M small graphs instead of one vectorized reduction.
    """
    _STACKED_LOSSES[loss_fn] = stacked_fn


def per_model_loss(loss_fn: Callable, pred: Tensor, target: Tensor) -> Tensor:
    """``(M,)`` tensor of per-model task losses for stacked predictions."""
    fast = _STACKED_LOSSES.get(loss_fn)
    if fast is not None:
        return fast(pred, target)
    parts = [loss_fn(pred[i], target[i]).reshape(1)
             for i in range(pred.shape[0])]
    return concatenate(parts, axis=0)


def clip_grad_norm_stacked(params: Sequence[Parameter], max_norm: float
                           ) -> np.ndarray:
    """Per-model gradient clipping over stacked parameters.

    The sequential trainer clips each model's *global* gradient norm; on a
    stack that norm lives per slice: ``norm_m = ||(g_p[m])_p||_2``.  Slices
    are scaled independently, so no model's clipping decision leaks into
    another's — matching M separate :func:`repro.optim.clip_grad_norm`
    calls.  Returns the per-model pre-clipping norms.
    """
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return np.zeros(0)
    m = grads[0].shape[0]
    total = np.zeros(m)
    for g in grads:
        total += (g * g).reshape(m, -1).sum(axis=1)
    norms = np.sqrt(total)
    scales = np.where(norms > max_norm, max_norm / np.maximum(norms, 1e-300),
                      1.0)
    if np.any(scales < 1.0):
        for g in grads:
            g *= scales.reshape((m,) + (1,) * (g.ndim - 1))
    return norms


# ----------------------------------------------------------------------
# The lockstep trainer
# ----------------------------------------------------------------------

class StackedPITTrainer:
    """Algorithm 1 over M grid points at once (same warmup, per-model λ).

    Mirrors :class:`repro.core.PITTrainer`'s parameters with ``lams`` (a
    sequence) replacing ``lam``; :meth:`fit` returns one
    :class:`PITResult` per λ, index-aligned, semantically equivalent to M
    sequential ``PITTrainer(model_i, lam=lams[i], ...)`` runs (up to
    floating-point reduction order — batched kernels sum in different
    orders than per-model ones).

    Phase seconds in the results are the *stack's* wall clock (all models
    share it); per-model epoch counts, histories and early-stop points are
    exact.

    Raises :class:`repro.nn.StackingUnsupported` before any training when
    the model contains layers without stacked counterparts (channel masks,
    recurrent baselines, Proxyless value-dependent supernets) — callers
    fall back to the sequential path.
    """

    def __init__(self, model: Module, loss_fn, lams: Sequence[float],
                 lr: float = 1e-3, gamma_lr: Optional[float] = None,
                 warmup_epochs: int = 5, prune_patience: int = 5,
                 max_prune_epochs: int = 50, finetune_epochs: int = 30,
                 finetune_patience: int = 10, regularizer: str = "size",
                 channel_lam: float = 0.0,
                 grad_clip: Optional[float] = None, verbose: bool = False,
                 compile_step: Optional[bool] = None,
                 graph_opt: Optional[str] = None,
                 graph_exec: Optional[str] = None,
                 loop_capture: Optional[bool] = None,
                 compile_config: Optional[CompileConfig] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_tags: Optional[Sequence[str]] = None,
                 checkpoint_resume: bool = True):
        if regularizer not in ("size", "flops"):
            raise ValueError("regularizer must be 'size' or 'flops'")
        if len(lams) < 1:
            raise ValueError("lams must name at least one grid point")
        if channel_lam:
            raise StackingUnsupported(
                "channel-mask search (channel_lam != 0) has no stacked path")
        self.model = model
        self.loss_fn = loss_fn
        self.lams = [float(lam) for lam in lams]
        self.m = len(self.lams)
        self.lr = lr
        self.gamma_lr = gamma_lr if gamma_lr is not None else lr
        self.warmup_epochs = warmup_epochs
        self.prune_patience = prune_patience
        self.max_prune_epochs = max_prune_epochs
        self.finetune_epochs = finetune_epochs
        self.finetune_patience = finetune_patience
        self.regularizer = regularizer
        self.grad_clip = grad_clip
        self.verbose = verbose
        cfg = CompileConfig.resolve(compile_config, compile_step=compile_step,
                                    graph_opt=graph_opt,
                                    graph_exec=graph_exec,
                                    loop_capture=loop_capture)
        # Resolve once at construction so a later env flip cannot split the
        # three phases across different executors.
        self.compile_config = CompileConfig(
            compile_step=cfg.want_compile(), graph_opt=cfg.resolved_opt(),
            graph_exec=cfg.resolved_exec(), loop_capture=cfg.want_loop())
        self.compile_step = self.compile_config.compile_step
        self.graph_opt = self.compile_config.graph_opt
        self.graph_exec = self.compile_config.graph_exec
        self.loop_capture = self.compile_config.loop_capture

        # Per-slice checkpoint files: each slice writes a self-contained,
        # template-shaped snapshot, so a stack's resume composes with
        # slicing (and a sequential trainer can adopt a slice's file).
        self._checkpoints: Optional[List[TrainerCheckpoint]] = None
        if checkpoint_dir:
            tags = (list(checkpoint_tags) if checkpoint_tags
                    else [f"stack{i}" for i in range(self.m)])
            if len(tags) != self.m:
                raise ValueError(
                    f"checkpoint_tags names {len(tags)} slices, "
                    f"trainer has {self.m}")
            self._checkpoints = [
                TrainerCheckpoint.create(checkpoint_dir, tag,
                                         every=checkpoint_every,
                                         resume=checkpoint_resume)
                for tag in tags]

        self.stacked = StackedModel(model, self.m)  # may raise StackingUnsupported
        self._pit_layers = [layer for layer in self.stacked.net.modules()
                            if isinstance(layer, StackedPITConv1d)]
        if not self._pit_layers:
            raise ValueError("model contains no searchable (PITConv1d) layers")
        # The non-searchable remainder of the effective-parameter count
        # (everything except PIT-layer params) is mask-independent and
        # identical across slices: count it once from the template.
        searchable_param_ids = set()
        for module in model.modules():
            if isinstance(module, PITConv1d):
                for _, p in module.named_parameters():
                    searchable_param_ids.add(id(p))
        self._fixed_param_count = sum(
            p.data.size for _, p in model.named_parameters()
            if id(p) not in searchable_param_ids)
        dtype = get_default_dtype()
        # Both live arrays are shared storage with their tensors: the λ
        # vector is a per-stack constant, the active mask is flipped by the
        # early-stopping bookkeeping and read by every (re)played step.
        self._lam_t = Tensor(np.asarray(self.lams, dtype=dtype))
        self._active_t = Tensor(self.stacked.active)

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[StackedPIT] {message}")

    def _split_params(self):
        gamma_params, weight_params = [], []
        for name, p in self.stacked.net.named_parameters():
            (gamma_params if name.endswith("gamma_hat")
             else weight_params).append(p)
        return weight_params, gamma_params

    def _make_step(self, with_reg: bool):
        stacked = self.stacked
        lam_t = self._lam_t
        active_t = self._active_t
        loss_fn = self.loss_fn
        regularizer = self.regularizer

        def step_fn(x: Tensor, y: Tensor):
            pred = stacked(x)
            task_vec = per_model_loss(loss_fn, pred, y)        # (M,)
            per_total = task_vec
            if with_reg:
                reg = stacked_regularizer_vector(stacked, regularizer)
                per_total = task_vec + lam_t * reg
            # Masked (early-stopped) models contribute zero gradient; their
            # parameters only drift through optimizer momentum, which the
            # phase-boundary snapshot restore discards.
            loss = (per_total * active_t).sum()
            return loss, task_vec

        if self.compile_step:
            return CompiledStep(step_fn, optimize=self.graph_opt,
                                graph_exec=self.graph_exec)
        return EagerStep(step_fn)

    def _make_epoch(self, step, optimizer) -> Optional[CompiledEpoch]:
        """The phase's whole-loop runner, or None when capture is off.

        The per-model ``task_vec`` output (``acc_index=1``) accumulates as
        a length-M vector, and clipping uses the stacked per-model norm —
        otherwise identical to the sequential trainer's epoch loop.
        """
        if not self.loop_capture:
            return None
        return CompiledEpoch(step, optimizer, grad_clip=self.grad_clip,
                             clip_fn=clip_grad_norm_stacked,
                             clip_kernel=clip_grads_stacked,
                             vector_m=self.m, acc_index=1)

    # ------------------------------------------------------------------
    def _epoch_index(self, cursors: List[int], i: int, active: List[bool]) -> int:
        # Masked models re-read their last epoch (results discarded) so the
        # zip over per-model iterators stays rectangular without advancing
        # their stream position.
        return cursors[i] if active[i] else max(cursors[i] - 1, 0)

    def _run_train_epoch(self, step, optimizer, train_view: EpochReplayLoader,
                         cursors: List[int], active: List[bool],
                         epoch: Optional[CompiledEpoch] = None) -> np.ndarray:
        iters = [train_view.epoch(self._epoch_index(cursors, i, active))
                 for i in range(self.m)]
        if epoch is not None:
            # Whole-loop capture path: stack the per-model streams into the
            # epoch's batch list and replay it as one loop program (the
            # ``active`` mask is a loop-carried leaf, re-read per epoch).
            batches = [(np.stack([part[0] for part in parts]),
                        np.stack([part[1] for part in parts]))
                       for parts in zip(*iters)]
            totals = np.asarray(epoch.run_batches(batches))
        else:
            totals = np.zeros(self.m)
            batches = 0
            for parts in zip(*iters):
                x = np.stack([part[0] for part in parts])
                y = np.stack([part[1] for part in parts])
                optimizer.zero_grad()
                _, task_vec = step(x, y)
                if self.grad_clip is not None:
                    clip_grad_norm_stacked(optimizer.params, self.grad_clip)
                optimizer.step()
                totals += np.asarray(task_vec)
                batches += 1
            if batches == 0:
                raise ValueError("training loader produced no batches")
            totals = totals / batches
        for i in range(self.m):
            if active[i]:
                cursors[i] += 1
        return totals

    def _run_validation(self, val_view: EpochReplayLoader,
                        cursors: List[int], active: List[bool]) -> np.ndarray:
        stacked = self.stacked
        was_training = stacked.net.training
        stacked.eval()
        iters = [val_view.epoch(self._epoch_index(cursors, i, active))
                 for i in range(self.m)]
        totals = np.zeros(self.m)
        batches = 0
        with no_grad():
            for parts in zip(*iters):
                x = np.stack([part[0] for part in parts])
                y = np.stack([part[1] for part in parts])
                vec = per_model_loss(self.loss_fn, stacked(Tensor(x)),
                                     Tensor(y))
                totals += np.asarray(vec.data, dtype=np.float64)
                batches += 1
        if was_training:
            stacked.train()
        if batches == 0:
            raise ValueError("evaluation loader produced no batches")
        for i in range(self.m):
            if active[i]:
                cursors[i] += 1
        vals = totals / batches
        if faults.fire("nan_loss") is not None:
            # One diverged slice genuinely poisons the whole stack: the
            # models share one summed loss, so NaN gradients reach every
            # slice.  The injector reproduces exactly that blast radius.
            vals = np.full_like(vals, np.nan)
        bad = [i for i in range(self.m)
               if active[i] and not np.isfinite(vals[i])]
        if bad:
            raise DivergedError(
                "stacked validation loss is non-finite for model(s) "
                + ", ".join(f"{i} (lam={self.lams[i]:g})" for i in bad)
                + "; a diverged slice poisons the shared stacked loss — "
                  "retrain the group sequentially to isolate it")
        return vals

    def _effective_params(self, index: int) -> int:
        """Per-slice equivalent of :func:`repro.core.effective_parameters`.

        Counted from the stacked masks directly — per epoch per model this
        runs on the hot path, and a full ``sync_template`` copy just to
        count parameters would cost M state copies per pruning epoch.
        PIT-layer counts depend only on the masks; everything else is the
        constant non-searchable remainder, computed once.
        """
        return self._fixed_param_count + sum(
            layer.effective_params(index) for layer in self._pit_layers)

    def model_for(self, index: int) -> Module:
        """The template materialized as trained model ``index``.

        One shared template instance serves all slices — use the returned
        model (export, deploy, evaluate) before asking for the next index.
        """
        return self.stacked.sync_template(index)

    # ------------------------------------------------------------------
    def _load_resume(self):
        """All M slice checkpoints, or None (absent / torn / mismatched).

        Every slice must exist and agree on (phase, global epoch): a crash
        *between* per-slice writes leaves a torn set, which degrades to a
        fresh start rather than resuming slices at different epochs.
        """
        if self._checkpoints is None:
            return None
        states = []
        for i, ckpt in enumerate(self._checkpoints):
            state = ckpt.load()
            if state is None:
                return None
            meta = state.meta
            if meta.get("trainer") != "pit" or not meta.get("stack"):
                return None
            info = meta["stack"]
            if int(info.get("m", -1)) != self.m or int(info.get("index", -1)) != i:
                return None
            states.append(state)
        if len({(s.meta.get("phase"), int(s.meta.get("global_epoch", -1)))
                for s in states}) != 1:
            warnings.warn(
                "stacked checkpoint set is torn (slices disagree on "
                "phase/epoch); starting fresh")
            return None
        return states

    def _save_boundary(self, phase: str, optimizer, stoppers, histories, *,
                       warmup_ran: int, prune_ran: List[int],
                       finetune_ran: List[int], stack_prune_epoch: int,
                       stack_finetune_epoch: int, seconds: Dict,
                       active: List[bool], train_cur: List[int],
                       val_cur: List[int], train_view, val_view,
                       snapshots: Optional[List[Optional[Dict]]] = None
                       ) -> None:
        """One shared epoch boundary: write every slice's snapshot (when
        due), then hit the ``crash@epoch=K`` fault site."""
        self._global_epoch += 1
        ge = self._global_epoch
        ckpts = self._checkpoints
        if ckpts is not None and ckpts[0].due(ge):
            orders = {"train": len(train_view._orders),
                      "val": len(val_view._orders)}
            for i, ckpt in enumerate(ckpts):
                arrays = {f"model/{name}": arr for name, arr
                          in self.stacked.slice_state(i).items()}
                arrays.update(optimizer_arrays(optimizer, slice_index=i))
                if stoppers is not None:
                    arrays.update(stopper_arrays(stoppers[i]))
                if snapshots is not None and snapshots[i] is not None:
                    arrays.update({f"snap/{name}": arr
                                   for name, arr in snapshots[i].items()})
                ckpt.save(arrays, {
                    "trainer": "pit", "phase": phase, "global_epoch": ge,
                    "counters": {
                        "warmup_ran": warmup_ran,
                        "prune_ran": int(prune_ran[i]),
                        "finetune_ran": int(finetune_ran[i]),
                        "stack_prune_epoch": stack_prune_epoch,
                        "stack_finetune_epoch": stack_finetune_epoch,
                    },
                    "history": histories[i],
                    "seconds": seconds,
                    "rngs": capture_rngs(
                        module_rng_map(self.stacked.net, slice_index=i)),
                    "loader_epochs": {"train": int(train_cur[i]),
                                      "val": int(val_cur[i])},
                    "stack": {
                        "m": self.m, "index": i,
                        "active": bool(active[i]),
                        "train_cur": int(train_cur[i]),
                        "val_cur": int(val_cur[i]),
                        "orders": orders,
                        "has_snapshot": bool(
                            snapshots is not None
                            and snapshots[i] is not None),
                    },
                })
        faults.crash_at_epoch(ge)

    def fit(self, train_loader, val_loader) -> List[PITResult]:
        """Run warmup → pruning → fine-tuning for all M grid points.

        With checkpointing configured (``checkpoint_dir=``), every shared
        epoch boundary writes one template-shaped snapshot per slice and a
        complete, consistent set is resumed bit-identically to the
        uninterrupted stacked run.  Slice files use the same format the
        sequential trainer writes, so the same grid point resumes across
        both execution strategies (within the established stacked-vs-
        sequential floating-point tolerance).
        """
        try:
            train_view = EpochReplayLoader(train_loader)
            val_view = EpochReplayLoader(val_loader)
        except TypeError as exc:
            raise StackingUnsupported(str(exc)) from exc

        m = self.m
        stacked = self.stacked
        states = self._load_resume()
        meta0 = states[0].meta if states else {}
        phases = ("warmup", "prune", "finetune")
        phase_at = (phases.index(meta0["phase"])
                    if meta0.get("phase") in phases else -1)
        shared = meta0.get("counters", {})
        seconds = {k: float(v) for k, v in meta0.get("seconds", {}).items()}
        self._global_epoch = int(meta0.get("global_epoch", 0))
        resumed_epochs = self._global_epoch
        if states:
            histories = [dict(s.meta["history"]) for s in states]
            train_cur = [int(s.meta["stack"]["train_cur"]) for s in states]
            val_cur = [int(s.meta["stack"]["val_cur"]) for s in states]
            # Regenerate the views' memoized epoch orders: the loaders
            # passed in are pristine, so replaying the shuffle stream
            # reproduces exactly the orders the interrupted run drew.
            orders = meta0["stack"].get("orders", {})
            if int(orders.get("train", 0)) > 0:
                train_view._order(int(orders["train"]) - 1)
            if int(orders.get("val", 0)) > 0:
                val_view._order(int(orders["val"]) - 1)
            self._log(f"resumed {m} slices at phase {meta0.get('phase')!r}, "
                      f"global epoch {self._global_epoch}")
        else:
            histories = [
                {"warmup_val": [], "prune_val": [], "finetune_val": [],
                 "prune_params": []}
                for _ in range(m)]
            train_cur = [0] * m
            val_cur = [0] * m
        weight_params, gamma_params = self._split_params()

        def restore_slices(optimizer, stoppers=None):
            for i, state in enumerate(states):
                stacked.load_slice_state(i, state.group("model/"))
                restore_optimizer(optimizer, state.arrays, slice_index=i)
                if stoppers is not None:
                    restore_stopper(stoppers[i], state.arrays)
                restore_rngs(module_rng_map(stacked.net, slice_index=i),
                             state.meta.get("rngs", {}))

        # ---------------- Phase 1: warmup (weights only) ----------------
        start = time.perf_counter()
        warmup_base = seconds.get("warmup", 0.0)
        warmup_ran = int(shared.get("warmup_ran", 0))
        warmup_seconds = warmup_base
        if self.warmup_epochs > 0 and phase_at <= 0:
            optimizer = Adam(weight_params, lr=self.lr)
            if states and phase_at == 0:
                restore_slices(optimizer)
            step = self._make_step(with_reg=False)
            epoch = self._make_epoch(step, optimizer)
            active = [True] * m
            val = None
            for _ in range(warmup_ran, self.warmup_epochs):
                self._run_train_epoch(step, optimizer, train_view,
                                      train_cur, active, epoch=epoch)
                val = self._run_validation(val_view, val_cur, active)
                for i in range(m):
                    histories[i]["warmup_val"].append(float(val[i]))
                warmup_ran += 1
                self._save_boundary(
                    "warmup", optimizer, None, histories,
                    warmup_ran=warmup_ran, prune_ran=[0] * m,
                    finetune_ran=[0] * m, stack_prune_epoch=0,
                    stack_finetune_epoch=0,
                    seconds={**seconds, "warmup": warmup_base
                             + (time.perf_counter() - start)},
                    active=active, train_cur=train_cur, val_cur=val_cur,
                    train_view=train_view, val_view=val_view)
            if val is not None:
                self._log(f"warmup done, val={val}")
            warmup_seconds = warmup_base + (time.perf_counter() - start)
        seconds["warmup"] = warmup_seconds

        # ---------------- Phase 2: pruning (weights + γ) ----------------
        start = time.perf_counter()
        prune_base = seconds.get("prune", 0.0)
        prune_ran = ([int(s.meta["counters"].get("prune_ran", 0))
                      for s in states] if states else [0] * m)
        prune_epoch = int(shared.get("stack_prune_epoch", 0))
        snapshots: List[Optional[Dict]] = [None] * m
        prune_seconds = prune_base
        if phase_at <= 1:
            groups = [{"params": weight_params, "lr": self.lr}]
            if gamma_params:
                groups.append({"params": gamma_params, "lr": self.gamma_lr,
                               "weight_decay": 0.0})
            optimizer = Adam(groups, lr=self.lr)
            stoppers = [EarlyStopping(patience=self.prune_patience,
                                      mode="min") for _ in range(m)]
            active = [True] * m
            stacked.set_all_active()
            if states and phase_at == 1:
                restore_slices(optimizer, stoppers)
                for i, state in enumerate(states):
                    info = state.meta["stack"]
                    active[i] = bool(info.get("active", True))
                    stacked.set_active(i, active[i])
                    if info.get("has_snapshot"):
                        snapshots[i] = {name: np.array(arr, copy=True)
                                        for name, arr
                                        in state.group("snap/").items()}
            step = self._make_step(with_reg=True)
            epoch = self._make_epoch(step, optimizer)
            for _ in range(prune_epoch, self.max_prune_epochs):
                if not any(active):
                    break
                self._run_train_epoch(step, optimizer, train_view,
                                      train_cur, active, epoch=epoch)
                val = self._run_validation(val_view, val_cur, active)
                for i in range(m):
                    if not active[i]:
                        continue
                    histories[i]["prune_val"].append(float(val[i]))
                    histories[i]["prune_params"].append(
                        float(self._effective_params(i)))
                    prune_ran[i] += 1
                    stoppers[i].update(float(val[i]))
                    if stoppers[i].should_stop:
                        # Freeze this grid point where its sequential run
                        # would have stopped; the stack keeps going for
                        # the others.
                        active[i] = False
                        stacked.set_active(i, False)
                        snapshots[i] = stacked.slice_state(i)
                prune_epoch += 1
                self._save_boundary(
                    "prune", optimizer, stoppers, histories,
                    warmup_ran=warmup_ran, prune_ran=prune_ran,
                    finetune_ran=[0] * m, stack_prune_epoch=prune_epoch,
                    stack_finetune_epoch=0,
                    seconds={**seconds, "prune": prune_base
                             + (time.perf_counter() - start)},
                    active=active, train_cur=train_cur, val_cur=val_cur,
                    train_view=train_view, val_view=val_view,
                    snapshots=snapshots)
            for i in range(m):
                if snapshots[i] is None:          # ran to the epoch cap
                    snapshots[i] = stacked.slice_state(i)
            for i in range(m):
                stacked.load_slice_state(i, snapshots[i])
            prune_seconds = prune_base + (time.perf_counter() - start)
        seconds["prune"] = prune_seconds
        self._log(f"pruning converged after {prune_ran} epochs")

        # ---------------- Phase 3: freeze + fine-tune --------------------
        start = time.perf_counter()
        finetune_base = seconds.get("finetune", 0.0)
        finetune_ran = ([int(s.meta["counters"].get("finetune_ran", 0))
                         for s in states] if states else [0] * m)
        finetune_epoch = int(shared.get("stack_finetune_epoch", 0))
        stacked.set_all_active()
        for layer in self._pit_layers:
            layer.freeze()
        optimizer = Adam(weight_params, lr=self.lr)
        stoppers = [EarlyStopping(patience=self.finetune_patience, mode="min")
                    for _ in range(m)]
        active = [True] * m
        if states and phase_at == 2:
            # freeze() first (it shapes the stacked frozen-mask buffers),
            # restore second: the snapshots carry the exact masks of the
            # original pruning outcome for every slice.
            restore_slices(optimizer, stoppers)
            for i, state in enumerate(states):
                active[i] = bool(state.meta["stack"].get("active", True))
                stacked.set_active(i, active[i])
        # Fresh step: freezing changed the graph (per-model masks became
        # constants the optimizer passes fold away).
        step = self._make_step(with_reg=False)
        epoch = self._make_epoch(step, optimizer)
        for _ in range(finetune_epoch, self.finetune_epochs):
            if not any(active):
                break
            self._run_train_epoch(step, optimizer, train_view,
                                  train_cur, active, epoch=epoch)
            val = self._run_validation(val_view, val_cur, active)
            for i in range(m):
                if not active[i]:
                    continue
                histories[i]["finetune_val"].append(float(val[i]))
                finetune_ran[i] += 1
                stoppers[i].update(float(val[i]),
                                   state=stacked.slice_state(i))
                if stoppers[i].should_stop:
                    active[i] = False
                    stacked.set_active(i, False)
            finetune_epoch += 1
            self._save_boundary(
                "finetune", optimizer, stoppers, histories,
                warmup_ran=warmup_ran, prune_ran=prune_ran,
                finetune_ran=finetune_ran, stack_prune_epoch=prune_epoch,
                stack_finetune_epoch=finetune_epoch,
                seconds={**seconds, "finetune": finetune_base
                         + (time.perf_counter() - start)},
                active=active, train_cur=train_cur, val_cur=val_cur,
                train_view=train_view, val_view=val_view)
        for i in range(m):
            if stoppers[i].best_state is not None:
                stacked.load_slice_state(i, stoppers[i].best_state)
        stacked.set_all_active()
        finetune_seconds = finetune_base + (time.perf_counter() - start)

        best_vals = [None if stoppers[i].best is None else float(stoppers[i].best)
                     for i in range(m)]
        if any(v is None for v in best_vals):
            # No fine-tune epoch ran (finetune_epochs=0): evaluate once,
            # per model, like the sequential fallback path does.
            needs = [best_vals[i] is None for i in range(m)]
            val = self._run_validation(val_view, val_cur, needs)
            for i in range(m):
                if best_vals[i] is None:
                    best_vals[i] = float(val[i])
        self._log(f"fine-tuning done, best val={best_vals}")

        results = []
        for i in range(m):
            template = self.stacked.sync_template(i)
            results.append(PITResult(
                dilations=network_dilations(template),
                best_val=best_vals[i],
                effective_params=effective_parameters(template),
                warmup_seconds=warmup_seconds,
                prune_seconds=prune_seconds,
                finetune_seconds=finetune_seconds,
                warmup_epochs=warmup_ran,
                prune_epochs=prune_ran[i],
                finetune_epochs=finetune_ran[i],
                history=histories[i],
                resumed_epochs=resumed_epochs,
            ))
        return results
