"""Search-space accounting and enumeration.

Paper Sec. IV-B quantifies the explored space: "PIT operates in a search
space of ~10^5 different solutions for the ResTCN ... for TEMPONet, the
search includes ~10^4 alternatives".  Each PIT layer with ``L`` γ values
offers ``L`` power-of-two dilations (``2^0 .. 2^{L-1}``); the space is the
cartesian product over layers.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from ..nn.module import Module
from .masks import num_gamma
from .pit_conv import PITConv1d
from .regularizer import pit_layers

__all__ = [
    "layer_choices",
    "search_space_size",
    "enumerate_configurations",
    "parameter_range",
]


def layer_choices(layer: PITConv1d) -> List[int]:
    """Dilations reachable by one PIT layer: ``1, 2, ..., 2^{L-1}``."""
    length = num_gamma(layer.rf_max)
    return [2 ** i for i in range(length)]


def search_space_size(model: Module) -> int:
    """Number of distinct dilation assignments of the whole network."""
    size = 1
    for layer in pit_layers(model):
        size *= len(layer_choices(layer))
    return size


def enumerate_configurations(model: Module) -> Iterator[Tuple[int, ...]]:
    """Yield every dilation assignment (use only for small spaces/tests)."""
    choices = [layer_choices(layer) for layer in pit_layers(model)]
    return itertools.product(*choices)


def parameter_range(model: Module) -> Dict[str, int]:
    """Smallest and largest exported parameter counts over the space.

    The extremes are attained at the max-dilation and min-dilation corner
    configurations respectively, because each layer's size is monotone in
    its own kept-tap count (paper: ResTCN spans 0.4M–3M params, TEMPONet
    0.4M–0.9M).
    """
    layers = pit_layers(model)
    saved = [layer.mask.gamma_hat.data.copy() for layer in layers]
    try:
        for layer in layers:
            layer.set_dilation(max(layer_choices(layer)))
        smallest = _effective(model)
        for layer in layers:
            layer.set_dilation(1)
        largest = _effective(model)
    finally:
        for layer, gamma in zip(layers, saved):
            layer.mask.gamma_hat.data[...] = gamma
    return {"min_params": smallest, "max_params": largest}


def _effective(model: Module) -> int:
    from .export import effective_parameters
    return effective_parameters(model)
