"""``PITConv1d`` — the masked temporal convolution of paper Eq. 5.

A PIT layer is a causal convolution with *maximally-sized* kernel
(``rf_max`` taps, dilation 1) whose kernel time-slices are multiplied by
the differentiable mask ``M`` produced by :class:`repro.core.masks.TimeMask`::

    y[m, t] = Σ_{i=0..rf_max-1} Σ_l  x[l, t - i] * (M_i ⊙ W[l, m, i])

During the search the mask changes with γ; after export the layer collapses
into a plain :class:`repro.nn.CausalConv1d` with the learned power-of-two
dilation and a ``(rf_max-1)/d + 1``-tap kernel (see
:mod:`repro.core.export`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, conv1d_causal
from ..nn import init
from ..nn.module import Module, Parameter
from .masks import TimeMask, kept_lags

__all__ = ["PITConv1d"]


class PITConv1d(Module):
    """Searchable causal convolution with learnable time-dilation.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    rf_max:
        Maximum receptive field (number of kernel taps of the seed layer).
        The search explores dilations ``1, 2, 4, ..., 2^(L-1)`` with
        ``L = floor(log2(rf_max-1)) + 1``.
    stride:
        Temporal stride (kept fixed by the search).
    threshold:
        Binarization threshold δ of Eq. 2 (paper uses 0.5).
    backend:
        Conv-backend name (see :mod:`repro.autograd.backends`); None uses
        the process-wide default.
    """

    def __init__(self, in_channels: int, out_channels: int, rf_max: int,
                 stride: int = 1, bias: bool = True, threshold: float = 0.5,
                 rng: Optional[np.random.Generator] = None,
                 backend: Optional[str] = None):
        super().__init__()
        if rf_max < 2:
            raise ValueError("rf_max must be >= 2 for a searchable layer")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.rf_max = rf_max
        self.stride = stride
        self.backend = backend
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, rf_max), rng),
            name="pitconv.weight")
        self.bias = Parameter(init.uniform_fan_in((out_channels,), rng),
                              name="pitconv.bias") if bias else None
        self.mask = TimeMask(rf_max, threshold=threshold)
        # Kernel index i corresponds to lag rf_max-1-i; the mask is produced
        # in lag order, so it is flipped before being applied to the kernel.
        self._flip_index = np.arange(rf_max)[::-1].copy()
        self._last_t_out: Optional[int] = None

    def forward(self, x: Tensor) -> Tensor:
        mask_lags = self.mask()                       # (rf_max,) in lag order
        mask_kernel = mask_lags[self._flip_index]     # kernel order
        masked_weight = self.weight * mask_kernel     # broadcast over taps
        out = conv1d_causal(x, masked_weight, self.bias, dilation=1,
                            stride=self.stride, backend=self.backend)
        self._last_t_out = out.shape[-1]
        return out

    # ------------------------------------------------------------------
    # Search bookkeeping
    # ------------------------------------------------------------------
    def current_dilation(self) -> int:
        """Dilation currently encoded by this layer's γ parameters."""
        return self.mask.current_dilation()

    def kept_taps(self) -> int:
        """Number of alive kernel time-slices under the current mask."""
        return int(self.mask.current_mask().sum())

    def effective_kernel_size(self) -> int:
        """Kernel size of the exported layer (== number of kept taps)."""
        return len(kept_lags(self.rf_max, self.current_dilation()))

    def effective_params(self) -> int:
        """Parameter count after export (masked slices removed)."""
        count = self.kept_taps() * self.in_channels * self.out_channels
        if self.bias is not None:
            count += self.out_channels
        return count

    def effective_macs(self, t_out: Optional[int] = None) -> int:
        """Multiply-accumulate count per forward pass after export."""
        t_out = t_out if t_out is not None else (self._last_t_out or 1)
        return self.kept_taps() * self.in_channels * self.out_channels * t_out

    def freeze(self) -> None:
        """Freeze the mask for the fine-tuning phase (Algorithm 1, line 7)."""
        self.mask.freeze()

    def unfreeze(self) -> None:
        self.mask.unfreeze()

    def set_dilation(self, dilation: int) -> None:
        """Force a dilation (used to replay hand-tuned configurations)."""
        self.mask.set_dilation(dilation)

    def __repr__(self) -> str:
        return (f"PITConv1d({self.in_channels}, {self.out_channels}, "
                f"rf_max={self.rf_max}, d={self.current_dilation()}, "
                f"s={self.stride})")
