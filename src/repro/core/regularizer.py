"""Dilation regularizers (paper Sec. III-B, Eq. 6).

The pruning phase augments the task loss with a Lasso term on the float
γ̂ parameters, weighted so that each γ̂ pays proportionally to the model
size it keeps alive::

    L_R(γ) = λ Σ_l C_in^l · C_out^l · Σ_{i=1..L-1} round((rf_max-1)/2^{L-i}) |γ̂_i^l|

The coefficient ``round((rf_max-1)/2^{L-i})`` is the number of kernel
time-slices whose aliveness is (marginally) attributed to γ_i — e.g. for
``rf_max = 9`` (L = 4) the coefficients are (1, 2, 4) for (γ1, γ2, γ3),
and together with the always-alive slices they account for all 9 taps.

A FLOPs-weighted variant (paper: "easily extendable to other types of
optimizations, e.g. FLOPs reduction") multiplies each layer's term by its
output sequence length.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..autograd import Tensor, concatenate
from ..nn.module import Module
from .masks import num_gamma
from .pit_conv import PITConv1d

__all__ = [
    "gamma_size_coefficients",
    "size_regularizer",
    "flops_regularizer",
    "pit_layers",
]


def gamma_size_coefficients(rf_max: int) -> np.ndarray:
    """Eq. 6 coefficients for γ_1 .. γ_{L-1} (index 0 ↔ γ_1).

    ``coeff[i-1] = round((rf_max - 1) / 2^{L-i})``.
    """
    length = num_gamma(rf_max)
    return np.array([round((rf_max - 1) / 2 ** (length - i)) for i in range(1, length)],
                    dtype=np.float64)


def pit_layers(model: Module) -> List[PITConv1d]:
    """All PIT convolutions of a model, in traversal order."""
    return [m for m in model.modules() if isinstance(m, PITConv1d)]


def _time_masked_layers(model: Module):
    """Yield ``(time_mask, in_ch, out_ch, rf_max, layer)`` for every layer
    carrying a searchable time mask — plain :class:`PITConv1d` and the
    combined :class:`repro.core.channel_mask.PITChannelConv1d`."""
    from .channel_mask import PITChannelConv1d
    for module in model.modules():
        if isinstance(module, PITConv1d):
            yield module.mask, module.in_channels, module.out_channels, \
                module.rf_max, module
        elif isinstance(module, PITChannelConv1d):
            yield module.time_mask, module.in_channels, module.out_channels, \
                module.rf_max, module


def size_regularizer(model: Module, lam: float) -> Tensor:
    """Model-size Lasso regularizer (Eq. 6), differentiable w.r.t. γ̂.

    Returns a scalar :class:`Tensor`; layers whose mask is frozen (or that
    have no trainable γ) contribute nothing.
    """
    terms = []
    for mask, in_ch, out_ch, rf_max, _ in _time_masked_layers(model):
        if mask.frozen or mask.length <= 1:
            continue
        coeffs = Tensor(gamma_size_coefficients(rf_max))
        contribution = (coeffs * mask.gamma_hat.abs()).sum()
        terms.append(contribution * float(in_ch * out_ch))
    if not terms:
        return Tensor(np.zeros(()))
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total * lam


def flops_regularizer(model: Module, lam: float, default_t_out: int = 1) -> Tensor:
    """FLOPs-weighted variant: each layer's Eq. 6 term × output length.

    Uses the output length recorded during the last forward pass (the
    trainer runs a forward before computing the loss, so it is available);
    ``default_t_out`` is used for layers that have not yet run.
    """
    terms = []
    for mask, in_ch, out_ch, rf_max, layer in _time_masked_layers(model):
        if mask.frozen or mask.length <= 1:
            continue
        t_out = getattr(layer, "_last_t_out", None) or default_t_out
        coeffs = Tensor(gamma_size_coefficients(rf_max))
        contribution = (coeffs * mask.gamma_hat.abs()).sum()
        terms.append(contribution * float(in_ch * out_ch * t_out))
    if not terms:
        return Tensor(np.zeros(()))
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total * lam
