"""Architecture export: collapse a searched PIT network into a plain TCN.

After the pruning phase every :class:`PITConv1d` encodes a single
power-of-two dilation.  Export replaces each of them with an equivalent
:class:`repro.nn.CausalConv1d` whose kernel keeps only the alive time
slices — the network a user would actually deploy (and the one the GAP8
flow in :mod:`repro.hw` consumes).

The exported layer is *numerically identical* to the masked supernet layer
(same floats on the same inputs): the masked convolution computes

    y[t] = Σ_{lag alive} W[·,·,lag] x[t - lag],   alive = {0, d, 2d, ...}

and the compact convolution with kernel size ``k = len(alive)`` and
dilation ``d`` computes exactly the same sum with the kept taps re-indexed.
This invariant is property-tested in ``tests/test_core_export.py``.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Tuple

import numpy as np

from ..nn.layers import CausalConv1d
from ..nn.module import Module
from .masks import kept_lags
from .pit_conv import PITConv1d

__all__ = ["export_conv", "export_network", "deployable_network",
           "network_dilations", "network_receptive_field",
           "network_total_stride", "network_summary"]


def export_conv(layer: PITConv1d) -> CausalConv1d:
    """Convert one searched PIT layer into a compact dilated convolution."""
    dilation = layer.current_dilation()
    lags = kept_lags(layer.rf_max, dilation)
    kernel_size = len(lags)
    conv = CausalConv1d(layer.in_channels, layer.out_channels, kernel_size,
                        dilation=dilation, stride=layer.stride,
                        bias=layer.bias is not None, backend=layer.backend)
    # Kernel index i of the full layer corresponds to lag rf_max-1-i; the
    # compact kernel index j corresponds to lag (kernel_size-1-j)*dilation.
    for j in range(kernel_size):
        lag = (kernel_size - 1 - j) * dilation
        source_index = layer.rf_max - 1 - lag
        conv.weight.data[:, :, j] = layer.weight.data[:, :, source_index]
    if layer.bias is not None:
        conv.bias.data[...] = layer.bias.data
    return conv


def export_network(model: Module) -> Module:
    """Deep-copy ``model`` with every ``PITConv1d`` replaced by its export.

    The copy leaves the original searchable model untouched, so the same
    seed can keep exploring other λ values (how Fig. 4's fronts are built).
    """
    exported = copy.deepcopy(model)
    for module in exported.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, PITConv1d):
                setattr(module, name, export_conv(child))
    return exported


def deployable_network(model: Module) -> Module:
    """The fixed-dilation network a deployment flow should consume.

    Searchable models (any :class:`PITConv1d` left) are exported into a
    compact copy; already-fixed networks pass through untouched — the one
    dispatch point the GAP8 flow and the DSE hardware evaluators share, so
    both accept either kind of model.
    """
    from .regularizer import pit_layers
    return export_network(model) if pit_layers(model) else model


def network_dilations(model: Module) -> Tuple[int, ...]:
    """Per-layer dilations of a searched or exported network (Table I rows).

    Only *temporal* convolutions are reported: 1-tap convolutions
    (pointwise heads, residual downsamples) have no dilation to speak of
    and are skipped, matching the layer lists of paper Table I.  Note the
    per-layer dilations do not compose into a network receptive field on
    their own once any layer has ``stride > 1`` — use
    :func:`network_receptive_field` for that.
    """
    from .channel_mask import PITChannelConv1d

    dilations: List[int] = []
    for module in model.modules():
        if isinstance(module, (PITConv1d, PITChannelConv1d)):
            dilations.append(module.current_dilation())
        elif isinstance(module, CausalConv1d) and module.kernel_size > 1:
            dilations.append(module.dilation)
    return tuple(dilations)


def _temporal_layers(model: Module):
    """Yield ``(span, stride)`` for every temporal layer, declaration order.

    ``span`` is the layer-local input extent one output sample reads
    (``(K-1)*d + 1`` for convolutions, ``rf_max`` for still-searchable PIT
    layers, the window size for pools); ``stride`` is its temporal output
    stride.
    """
    from ..nn.layers import AvgPool1d, MaxPool1d
    from .channel_mask import PITChannelConv1d

    for module in model.modules():
        if isinstance(module, (PITConv1d, PITChannelConv1d)):
            yield module.rf_max, module.stride
        elif isinstance(module, CausalConv1d):
            yield module.receptive_field, module.stride
        elif isinstance(module, (AvgPool1d, MaxPool1d)):
            yield module.kernel_size, module.stride


def network_receptive_field(model: Module) -> int:
    """Composed temporal receptive field of one output sample.

    Composes the per-layer spans with the classic jump recursion

        rf   <- rf + (span_l - 1) * jump
        jump <- jump * stride_l

    so a strided layer correctly *multiplies* the reach of everything
    after it instead of merely adding its own span — the quantity the
    streaming executor sizes warm-up with (``CausalConv1d
    .receptive_field`` alone is layer-local and stride-blind).  Layers are
    composed in declaration order, which matches execution order for the
    sequential seed architectures; parallel branches (e.g. a 1-tap
    residual downsample) contribute 0 to ``rf`` and 1 to ``jump``, so
    they are harmless.  Window layers whose extent depends on the input
    length (``Flatten``/``GlobalAvgPool1d``) are not counted — the
    streaming executor measures those by probing.
    """
    rf, jump = 1, 1
    for span, stride in _temporal_layers(model):
        rf += (span - 1) * jump
        jump *= stride
    return rf


def network_total_stride(model: Module) -> int:
    """Product of all temporal strides: input samples per output sample."""
    total = 1
    for _, stride in _temporal_layers(model):
        total *= stride
    return total


def network_summary(model: Module) -> Dict[str, object]:
    """Size/dilation summary used by the benchmark tables."""
    return {
        "dilations": network_dilations(model),
        "params": model.count_parameters(),
        "pit_params_effective": effective_parameters(model),
    }


def effective_parameters(model: Module) -> int:
    """Parameter count of the network *after* export.

    For a searchable model this counts only alive kernel slices of PIT
    layers (plus everything else); for an already-exported model it equals
    ``count_parameters()``.
    """
    from .channel_mask import PITChannelConv1d

    total = 0
    counted = set()
    for module in model.modules():
        if isinstance(module, (PITConv1d, PITChannelConv1d)):
            total += module.effective_params()
            for _, p in module.named_parameters():
                counted.add(id(p))
            # γ̂ are search-time parameters, never deployed.
    for _, p in model.named_parameters():
        if id(p) not in counted:
            total += p.data.size
    return total
