"""PIT's differentiable time-masking machinery (paper Sec. III-A).

The key idea of the paper: a causal convolution with maximal receptive
field ``rf_max`` and dilation 1 can be turned into *any* power-of-two
dilated convolution by zeroing regularly-spaced time slices of its kernel.
The choice of which slices stay alive is controlled by ``L`` binary
parameters γ, where::

    L = floor(log2(rf_max - 1)) + 1,      γ0 ≡ 1 (constant)

combined into cumulative products (Eq. 3)::

    Γ_i = Π_{k=0..L-1-i} γ_k        (so Γ_{L-1} = γ0 = 1 always)

Γ is monotone non-decreasing in ``i``; the effective dilation is
``d = 2^{min{i : Γ_i = 1}}``.  Each *lag* ``j`` (time distance from the
current sample) is alive iff ``d`` divides ``j``; lag 0 is always alive.
The mask element for lag ``j`` is therefore ``Γ_{g(j)}`` with::

    g(0) = L - 1                      (always-on)
    g(j) = min(v2(j), L - 1)          (v2 = number of trailing zero bits)

because ``Γ_{v2(j)} = 1``  ⇔  ``d ≤ 2^{v2(j)}``  ⇔  ``d | j``.

Two equivalent constructions are provided:

* :func:`mask_from_binary_gamma` — the constructive description of Fig. 2,
  pure numpy, used for analysis/tests.
* :class:`TimeMask` — the differentiable module used during training, with
  BinaryConnect-style binarization (Eq. 2, straight-through estimator).
* :func:`mask_eq4` — the tensor-algebra form of paper Eq. 4 built from the
  constant ``T`` and ``K`` matrices, kept as an executable specification and
  cross-checked against the constructive form in the test suite.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, binarize_ste, concatenate, no_grad, ones
from ..nn.module import Module, Parameter

__all__ = [
    "num_gamma",
    "gamma_index_for_lag",
    "lag_gamma_indices",
    "mask_from_binary_gamma",
    "mask_from_dilation",
    "gamma_from_dilation",
    "effective_dilation",
    "kept_lags",
    "build_t_matrix",
    "build_k_matrix",
    "mask_eq4",
    "TimeMask",
]


def num_gamma(rf_max: int) -> int:
    """Number of γ parameters ``L`` for a layer with max receptive field.

    Paper: ``L = floor(log2(rf_max - 1)) + 1``.  Requires ``rf_max >= 2``
    (a 1-tap convolution has no dilation to optimize).
    """
    if rf_max < 2:
        raise ValueError(f"rf_max must be >= 2, got {rf_max}")
    return int(math.floor(math.log2(rf_max - 1))) + 1


def _v2(j: int) -> int:
    """Number of trailing zero bits of ``j > 0`` (2-adic valuation)."""
    return (j & -j).bit_length() - 1


def gamma_index_for_lag(lag: int, length: int) -> int:
    """Index of the Γ element gating time-lag ``lag`` (0 = current sample)."""
    if lag == 0:
        return length - 1
    return min(_v2(lag), length - 1)


def lag_gamma_indices(rf_max: int) -> np.ndarray:
    """Vector of Γ indices for every lag ``0 .. rf_max-1``."""
    length = num_gamma(rf_max)
    return np.array([gamma_index_for_lag(j, length) for j in range(rf_max)], dtype=np.int64)


def mask_from_binary_gamma(gamma: np.ndarray, rf_max: int) -> np.ndarray:
    """Constructive mask of Fig. 2 from a *binary* γ vector of length ``L``.

    ``gamma[0]`` must be 1 (the constant γ0).  Returns a 0/1 vector over
    lags ``0 .. rf_max - 1`` (lag order, *not* kernel order).
    """
    length = num_gamma(rf_max)
    gamma = np.asarray(gamma, dtype=np.float64)
    if gamma.shape != (length,):
        raise ValueError(f"gamma must have shape ({length},), got {gamma.shape}")
    if gamma[0] != 1:
        raise ValueError("gamma[0] is the constant γ0 and must be 1")
    # Γ_i = Π_{k=0..L-1-i} γ_k  — a reversed cumulative product.
    cumulative = np.cumprod(gamma)               # c_j = γ0..γj
    big_gamma = cumulative[::-1].copy()          # Γ_i = c_{L-1-i}
    return big_gamma[lag_gamma_indices(rf_max)]


def effective_dilation(gamma: np.ndarray, rf_max: int) -> int:
    """Power-of-two dilation encoded by a binary γ vector.

    ``d = 2^{min{i : Γ_i = 1}}`` — since Γ_{L-1} = γ0 = 1, the minimum
    always exists and ``d <= 2^{L-1}``.
    """
    length = num_gamma(rf_max)
    gamma = np.asarray(gamma, dtype=np.float64)
    cumulative = np.cumprod(gamma)
    big_gamma = cumulative[::-1]
    alive = np.nonzero(big_gamma >= 0.5)[0]
    return int(2 ** alive[0])


def kept_lags(rf_max: int, dilation: int) -> List[int]:
    """Lags kept alive by a regular dilation pattern: multiples of ``d``."""
    if dilation < 1:
        raise ValueError("dilation must be >= 1")
    return list(range(0, rf_max, dilation))


def mask_from_dilation(rf_max: int, dilation: int) -> np.ndarray:
    """Binary lag mask of a regular power-of-two dilation."""
    mask = np.zeros(rf_max)
    mask[kept_lags(rf_max, dilation)] = 1.0
    return mask


def gamma_from_dilation(rf_max: int, dilation: int) -> np.ndarray:
    """Binary γ vector (length L) whose mask realizes ``dilation``.

    Inverse of :func:`effective_dilation`: prune the top ``log2(d)`` γ's.
    ``γ_i = 0`` for ``i > L - 1 - log2(d)`` ... concretely, dilation doubles
    each time the highest still-alive γ is zeroed (Fig. 2).
    """
    length = num_gamma(rf_max)
    exponent = int(math.log2(dilation))
    if 2 ** exponent != dilation:
        raise ValueError(f"dilation must be a power of two, got {dilation}")
    if exponent > length - 1:
        raise ValueError(f"dilation {dilation} exceeds the max 2^{length - 1} "
                         f"supported by rf_max={rf_max}")
    gamma = np.ones(length)
    # Zeroing γ_{L-1} gives d=2, additionally γ_{L-2} gives d=4, etc.
    for step in range(exponent):
        gamma[length - 1 - step] = 0.0
    return gamma


# ----------------------------------------------------------------------
# Paper Eq. 4: tensor-algebra mask construction
# ----------------------------------------------------------------------

def build_t_matrix(length: int) -> np.ndarray:
    """The constant ``T`` of Eq. 4: upper-triangular with inverted columns.

    ``T[k, c] = 1``  iff  γ_k participates in the product Γ_c, i.e.
    ``k <= L - 1 - c``.
    """
    t = np.zeros((length, length))
    for c in range(length):
        t[: length - c, c] = 1.0
    return t


def build_k_matrix(rf_max: int) -> np.ndarray:
    """The constant ``K`` of Eq. 4: one-hot column selector, ``(L, rf_max)``.

    Column ``j`` of ``K`` selects the Γ column gating lag ``j``; the paper
    notes K "can be generated procedurally for any rf_max by repeating a
    pattern of 0s and 1s" — that pattern is exactly the 2-adic valuation of
    the lag index.
    """
    length = num_gamma(rf_max)
    k = np.zeros((length, rf_max))
    for j, idx in enumerate(lag_gamma_indices(rf_max)):
        k[idx, j] = 1.0
    return k


def mask_eq4(gamma: Tensor, rf_max: int) -> Tensor:
    """Differentiable mask via the tensor transformation of paper Eq. 4::

        M = Π_columns { [(γ · 1_{1xL}) ⊙ T + (1_{LxL} - T)] · K }

    ``gamma`` is the full binarized γ vector of length ``L`` (γ0 included).
    Returns the mask over lags, shape ``(rf_max,)``.  This form is the
    executable specification; :class:`TimeMask` uses the equivalent (and
    cheaper) constructive form, and the test suite asserts equality.
    """
    length = num_gamma(rf_max)
    if gamma.shape != (length,):
        raise ValueError(f"gamma must have shape ({length},), got {gamma.shape}")
    t_mat = Tensor(build_t_matrix(length))
    k_mat = Tensor(build_k_matrix(rf_max))
    ones_row = Tensor(np.ones((1, length)))
    # (γ · 1_{1xL}): broadcast γ down the columns -> entry (k, c) = γ_k.
    outer = gamma.reshape(length, 1) @ ones_row
    inner = outer * t_mat + (Tensor(np.ones((length, length))) - t_mat)
    selected = inner @ k_mat  # (L, rf_max); column j = Γ-column for lag j
    columns = [selected[:, j].prod().reshape(1) for j in range(rf_max)]
    return concatenate(columns, axis=0)


# ----------------------------------------------------------------------
# Differentiable mask module
# ----------------------------------------------------------------------

class TimeMask(Module):
    """Trainable γ vector of one PIT layer, producing the lag mask ``M``.

    Holds the float "shadow" parameters ``γ̂_1 .. γ̂_{L-1}`` (γ0 is the
    constant 1).  The forward pass binarizes them with a Heaviside at
    ``threshold`` (straight-through gradient, Eq. 2), forms the Γ products
    (Eq. 3) and scatters them into the lag mask (Fig. 2 / Eq. 4).

    After the pruning phase the trainer calls :meth:`freeze`; the mask then
    becomes a constant and γ̂ no longer receives gradients (Algorithm 1,
    fine-tuning loop).
    """

    def __init__(self, rf_max: int, threshold: float = 0.5, init_value: float = 1.0):
        super().__init__()
        self.rf_max = rf_max
        self.length = num_gamma(rf_max)
        self.threshold = threshold
        self.gamma_hat = Parameter(np.full(max(self.length - 1, 0), init_value),
                                   name="pit.gamma_hat")
        self.register_buffer("frozen_mask", np.zeros(0))
        self._lag_indices = lag_gamma_indices(rf_max)
        self.frozen = False

    # -- training-time mask -------------------------------------------------
    def forward(self) -> Tensor:
        """Return the differentiable lag mask ``M`` of shape ``(rf_max,)``."""
        if self.frozen:
            return Tensor(self.frozen_mask)
        if self.length == 1:
            # rf_max == 2: no trainable γ, mask is all-ones.
            return Tensor(np.ones(self.rf_max))
        gamma_bin = binarize_ste(self.gamma_hat, self.threshold)   # γ_1..γ_{L-1}
        full_gamma = concatenate([Tensor(np.ones(1)), gamma_bin])  # prepend γ0
        # Reversed cumulative products: Γ_i = Π_{k<=L-1-i} γ_k.
        cumulative = [full_gamma[0:1]]
        for k in range(1, self.length):
            cumulative.append(cumulative[-1] * full_gamma[k:k + 1])
        big_gamma = concatenate(list(reversed(cumulative)), axis=0)  # (L,)
        return big_gamma[self._lag_indices]

    # -- bookkeeping ----------------------------------------------------------
    def binary_gamma(self) -> np.ndarray:
        """Current binary γ (length ``L``, γ0 included), detached."""
        if self.length == 1:
            return np.ones(1)
        bits = (self.gamma_hat.data >= self.threshold).astype(np.float64)
        return np.concatenate([[1.0], bits])

    def current_dilation(self) -> int:
        """Dilation encoded by the current (or frozen) γ values."""
        if self.frozen and self.frozen_mask.size:
            alive = np.nonzero(self.frozen_mask >= 0.5)[0]
            gaps = np.diff(alive)
            return int(gaps[0]) if gaps.size else self.rf_max
        return effective_dilation(self.binary_gamma(), self.rf_max)

    def current_mask(self) -> np.ndarray:
        """Binary lag mask implied by the current γ values, detached."""
        if self.frozen and self.frozen_mask.size:
            return self.frozen_mask.copy()
        return mask_from_binary_gamma(self.binary_gamma(), self.rf_max)

    def freeze(self) -> None:
        """Fix the mask at its current binary value (start of fine-tuning)."""
        self.update_buffer("frozen_mask", self.current_mask())
        self.frozen = True

    def unfreeze(self) -> None:
        self.frozen = False

    def set_dilation(self, dilation: int) -> None:
        """Force γ̂ to encode a given power-of-two dilation (for baselines)."""
        gamma = gamma_from_dilation(self.rf_max, dilation)
        if self.length > 1:
            self.gamma_hat.data[...] = gamma[1:]

    def __repr__(self) -> str:
        return (f"TimeMask(rf_max={self.rf_max}, L={self.length}, "
                f"d={self.current_dilation()}, frozen={self.frozen})")
