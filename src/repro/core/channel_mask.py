"""Channel masking: the MorphNet-style extension of paper Sec. III-C.

The paper notes PIT "can be easily integrated with other DMaskingNAS
techniques that affect different hyper-parameters, e.g. [10] to tune the
number of channels in each layer, simply by adding further regularization
terms and masking parameters, to perform a wider exploration."

This module implements that integration:

* :class:`ChannelMask` — a vector of trainable parameters γ̂ᶜ (one per
  output channel), binarized with the same BinaryConnect/STE scheme as the
  time masks (Eq. 2), multiplying the layer's output channels;
* :class:`PITChannelConv1d` — a causal convolution searchable in *both*
  dimensions: a :class:`TimeMask` over kernel time slices and a
  :class:`ChannelMask` over output channels;
* :func:`channel_regularizer` — the MorphNet-style Lasso on γ̂ᶜ, weighted
  by each channel's parameter cost (C_in × kept_taps);
* export support — :func:`export_channel_conv` zeroes-and-slices dead
  output channels; whole-network export is provided for purely sequential
  feature extractors (channel changes must propagate to the consumer
  layer's input, which is well-defined only for linear chains).

A minimum number of alive channels is enforced (default 1) so the network
can never prune itself to a disconnected graph.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor, binarize_ste, conv1d_causal, mark_capture_unsafe
from ..nn import init
from ..nn.module import Module, Parameter
from .masks import TimeMask, kept_lags

__all__ = [
    "ChannelMask",
    "PITChannelConv1d",
    "channel_regularizer",
    "channel_layers",
    "export_channel_conv",
]


class ChannelMask(Module):
    """Trainable on/off gate per output channel (MorphNet-style γ).

    Forward returns a ``(channels,)`` 0/1 tensor with straight-through
    gradients into the float shadow parameters γ̂ᶜ.  If binarization would
    kill every channel, the ``min_channels`` highest-γ̂ channels are kept
    alive — a projection that keeps the network connected.
    """

    def __init__(self, channels: int, threshold: float = 0.5,
                 init_value: float = 1.0, min_channels: int = 1):
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if not 1 <= min_channels <= channels:
            raise ValueError("min_channels must be in [1, channels]")
        self.channels = channels
        self.threshold = threshold
        self.min_channels = min_channels
        self.gamma_hat = Parameter(np.full(channels, init_value),
                                   name="pit.channel_gamma_hat")
        self.register_buffer("frozen_mask", np.zeros(0))
        self.frozen = False

    def forward(self) -> Tensor:
        # The min-channels rescue below branches on the current γ̂ values,
        # which a replayed static graph would freeze at their trace-time
        # state — so channel-masked steps always train eagerly.
        mark_capture_unsafe("ChannelMask's min-channels rescue is value-dependent")
        if self.frozen:
            return Tensor(self.frozen_mask)
        mask = binarize_ste(self.gamma_hat, self.threshold)
        if mask.data.sum() < self.min_channels:
            # Keep the top-γ̂ channels alive; the STE path is preserved for
            # the surviving entries through an additive constant rescue.
            rescue = np.zeros(self.channels)
            top = np.argsort(self.gamma_hat.data)[-self.min_channels:]
            rescue[top] = 1.0
            mask = mask + Tensor(np.maximum(rescue - mask.data, 0.0))
        return mask

    def current_mask(self) -> np.ndarray:
        if self.frozen and self.frozen_mask.size:
            return self.frozen_mask.copy()
        mask = (self.gamma_hat.data >= self.threshold).astype(np.float64)
        if mask.sum() < self.min_channels:
            top = np.argsort(self.gamma_hat.data)[-self.min_channels:]
            mask[top] = 1.0
        return mask

    def alive_channels(self) -> int:
        return int(self.current_mask().sum())

    def freeze(self) -> None:
        self.update_buffer("frozen_mask", self.current_mask())
        self.frozen = True

    def unfreeze(self) -> None:
        self.frozen = False

    def set_alive(self, alive: np.ndarray) -> None:
        """Force a binary channel pattern (testing/baselines)."""
        alive = np.asarray(alive, dtype=np.float64)
        if alive.shape != (self.channels,):
            raise ValueError(f"expected shape ({self.channels},), got {alive.shape}")
        self.gamma_hat.data[...] = np.where(alive >= 0.5, 1.0, 0.0)

    def __repr__(self) -> str:
        return (f"ChannelMask({self.alive_channels()}/{self.channels} alive, "
                f"frozen={self.frozen})")


class PITChannelConv1d(Module):
    """Causal convolution searchable in time (dilation) and width (channels).

    Combines a :class:`TimeMask` (paper Eq. 2-5) with a :class:`ChannelMask`
    (Sec. III-C extension).  The masked forward is::

        y[m, t] = ch_mask[m] * Σ_i Σ_l x[l, t-i] * (M_i ⊙ W[l, m, i])
    """

    def __init__(self, in_channels: int, out_channels: int, rf_max: int,
                 stride: int = 1, bias: bool = True, threshold: float = 0.5,
                 min_channels: int = 1,
                 rng: Optional[np.random.Generator] = None,
                 backend: Optional[str] = None):
        super().__init__()
        if rf_max < 2:
            raise ValueError("rf_max must be >= 2")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.rf_max = rf_max
        self.stride = stride
        self.backend = backend
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, rf_max), rng),
            name="pitchconv.weight")
        self.bias = Parameter(init.uniform_fan_in((out_channels,), rng),
                              name="pitchconv.bias") if bias else None
        self.time_mask = TimeMask(rf_max, threshold=threshold)
        self.channel_mask = ChannelMask(out_channels, threshold=threshold,
                                        min_channels=min_channels)
        self._flip_index = np.arange(rf_max)[::-1].copy()

    def forward(self, x: Tensor) -> Tensor:
        time = self.time_mask()[self._flip_index]
        masked_weight = self.weight * time
        out = conv1d_causal(x, masked_weight, self.bias,
                            dilation=1, stride=self.stride,
                            backend=self.backend)
        channels = self.channel_mask()
        return out * channels.reshape(1, self.out_channels, 1)

    # -- accounting -----------------------------------------------------
    def current_dilation(self) -> int:
        return self.time_mask.current_dilation()

    def alive_channels(self) -> int:
        return self.channel_mask.alive_channels()

    def kept_taps(self) -> int:
        return int(self.time_mask.current_mask().sum())

    def effective_params(self) -> int:
        alive = self.alive_channels()
        count = self.kept_taps() * self.in_channels * alive
        if self.bias is not None:
            count += alive
        return count

    def freeze(self) -> None:
        self.time_mask.freeze()
        self.channel_mask.freeze()

    def __repr__(self) -> str:
        return (f"PITChannelConv1d({self.in_channels}, {self.out_channels}, "
                f"rf_max={self.rf_max}, d={self.current_dilation()}, "
                f"alive={self.alive_channels()}/{self.out_channels})")


def channel_layers(model: Module) -> List[PITChannelConv1d]:
    """All combined-search convolutions of a model, in traversal order."""
    return [m for m in model.modules() if isinstance(m, PITChannelConv1d)]


def channel_regularizer(model: Module, lam: float) -> Tensor:
    """MorphNet-style Lasso on the channel γ̂ᶜ of every combined layer.

    Each channel's coefficient is its parameter cost ``C_in * kept_taps``
    (analogous to Eq. 6's size weighting, but along the width axis).
    """
    terms = []
    for layer in channel_layers(model):
        mask = layer.channel_mask
        if mask.frozen:
            continue
        cost = float(layer.in_channels * layer.kept_taps())
        terms.append(mask.gamma_hat.abs().sum() * cost)
    if not terms:
        return Tensor(np.zeros(()))
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total * lam


def export_channel_conv(layer: PITChannelConv1d):
    """Collapse a combined layer: dilated kernel + alive channels only.

    Returns ``(conv, alive_index)``: the compact :class:`CausalConv1d` and
    the indices of the surviving output channels, which the *consumer*
    layer must use to slice its input weights (only well-defined in a
    linear chain — the caller owns that propagation).
    """
    from ..nn.layers import CausalConv1d

    dilation = layer.current_dilation()
    lags = kept_lags(layer.rf_max, dilation)
    kernel_size = len(lags)
    alive_index = np.nonzero(layer.channel_mask.current_mask() >= 0.5)[0]
    conv = CausalConv1d(layer.in_channels, len(alive_index), kernel_size,
                        dilation=dilation, stride=layer.stride,
                        bias=layer.bias is not None)
    for j in range(kernel_size):
        lag = (kernel_size - 1 - j) * dilation
        source = layer.rf_max - 1 - lag
        conv.weight.data[:, :, j] = layer.weight.data[alive_index, :, source]
    if layer.bias is not None:
        conv.bias.data[...] = layer.bias.data[alive_index]
    return conv, alive_index
