"""Bit-exact mid-run training checkpoints.

The DSE sweeps are the expensive part of the reproduction — each grid
point is a full 3-phase PIT training run — so a crashed, preempted or
timed-out run must not cost the whole point.  :class:`TrainerCheckpoint`
snapshots the *complete* training state at epoch boundaries:

* model parameters and buffers (via ``Module.state_dict``),
* optimizer state per ``(group, param, slot)`` — Adam moments and the 0-d
  step counters, written back **in place** on restore so PR 8's
  flat-packed loop buffers (``FlatParam`` views) keep aliasing the same
  storage,
* every RNG stream that advances during training (dropout modules, the
  shuffling loaders), serialized through ``bit_generator.state``,
* early-stop state (best metric, stale counter, ``best_state`` snapshot),
* the current phase, epoch-in-phase and global epoch.

A run killed at any epoch boundary and resumed from its checkpoint is
**bit-identical** — losses, params, full Adam state — to the uninterrupted
run, across eager/compiled-step/whole-loop execution, both graph
executors, every conv backend and the stacked trainer (which writes one
template-shaped checkpoint per slice, so a stacked run's resume composes
with slicing and a sequential trainer can adopt a stacked slice's file).

Persistence goes through :func:`repro.nn.serialization.save_state`
(tempfile + ``os.replace``, so a crash mid-write can't tear the archive)
and every archive carries a CRC32 over its arrays and metadata; a torn,
truncated or checksum-failing file is quarantined to ``<path>.corrupt``
with a warning — like ``DSECache`` — and the run restarts from scratch
(or from an older checkpoint if the caller keeps several tags).

Nothing here imports the trainers: this module only knows how to turn
live training objects (optimizer, stopper, RNG maps) into flat array
dicts and back, which keeps it reusable for both the sequential and the
stacked trainer and for future schedules.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

from ..nn.serialization import CheckpointError, load_state, save_state
from ..testing import faults

__all__ = [
    "ENV_CKPT_DIR", "ENV_CKPT_EVERY", "FORMAT_VERSION",
    "CheckpointError", "CheckpointState", "TrainerCheckpoint",
    "checkpoint_dir_default", "checkpoint_every_default",
    "checkpoint_file", "key_tag",
    "encode_rng", "decode_rng", "restore_rng",
    "module_rng_map", "loader_rng_map", "capture_rngs", "restore_rngs",
    "fast_forward_loader",
    "optimizer_arrays", "restore_optimizer",
    "stopper_arrays", "restore_stopper",
    "split_group",
]

#: default checkpoint directory (sweep-wide / CLI-wide)
ENV_CKPT_DIR = "REPRO_CKPT_DIR"
#: default checkpoint cadence in epochs
ENV_CKPT_EVERY = "REPRO_CKPT_EVERY"

#: bump when the archive layout changes; older formats are quarantined,
#: not migrated — a checkpoint is a cache of epochs, never the only copy
FORMAT_VERSION = 1


def checkpoint_dir_default() -> Optional[str]:
    """``REPRO_CKPT_DIR`` or None (checkpointing off)."""
    value = os.environ.get(ENV_CKPT_DIR, "").strip()
    return value or None


def checkpoint_every_default() -> int:
    """``REPRO_CKPT_EVERY`` (min 1) or 1: checkpoint every epoch."""
    value = os.environ.get(ENV_CKPT_EVERY, "").strip()
    if not value:
        return 1
    try:
        return max(1, int(value))
    except ValueError:
        return 1


def key_tag(key: str) -> str:
    """Filesystem-safe tag for a checkpoint derived from a cache key.

    The DSE engine names each point's checkpoint after its ``DSECache``
    key, so every execution path that trains the same configuration —
    sequential, stacked, a retry after a worker crash, a resubmit after a
    pool death — resolves to the *same* file and resumes each other's
    progress.
    """
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


def checkpoint_file(directory: Union[str, Path], tag: str) -> Path:
    """Canonical checkpoint path for ``tag`` under ``directory``."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in tag)
    return Path(directory) / f"{safe}.ckpt.npz"


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------

def _encode_jsonable(obj):
    if isinstance(obj, np.ndarray):
        return {"__nd__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {k: _encode_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode_jsonable(v) for v in obj]
    return obj


def _decode_jsonable(obj):
    if isinstance(obj, dict):
        if "__nd__" in obj and "dtype" in obj and len(obj) == 2:
            return np.array(obj["__nd__"], dtype=obj["dtype"])
        return {k: _decode_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode_jsonable(v) for v in obj]
    return obj


def encode_rng(gen: np.random.Generator) -> dict:
    """JSON-serializable snapshot of a generator's bit-stream position."""
    return _encode_jsonable(gen.bit_generator.state)


def decode_rng(encoded: dict) -> dict:
    """Inverse of :func:`encode_rng` (a ``bit_generator.state`` dict)."""
    return _decode_jsonable(encoded)


def restore_rng(gen: np.random.Generator, encoded: dict) -> None:
    """Rewind ``gen`` to an encoded position; draws are bit-identical after."""
    gen.bit_generator.state = decode_rng(encoded)


def module_rng_map(model, slice_index: Optional[int] = None
                   ) -> Dict[str, np.random.Generator]:
    """Every RNG a model's modules advance during training, by module path.

    Sequential models expose a ``rng`` Generator per stochastic module
    (``Dropout``); stacked models expose per-slice clone lists (``rngs``,
    :class:`repro.nn.stacked.StackedDropout`), selected by ``slice_index``.
    Stacked module paths mirror the template's, so the keys agree across
    both trainers — which is what lets a sequential run resume a stacked
    slice's checkpoint and vice versa.
    """
    out: Dict[str, np.random.Generator] = {}
    for name, mod in model.named_modules():
        if slice_index is None:
            rng = getattr(mod, "rng", None)
            if isinstance(rng, np.random.Generator):
                out[f"mod/{name}"] = rng
        else:
            rngs = getattr(mod, "rngs", None)
            if (isinstance(rngs, (list, tuple)) and len(rngs) > slice_index
                    and isinstance(rngs[slice_index], np.random.Generator)):
                out[f"mod/{name}"] = rngs[slice_index]
    return out


def loader_rng_map(**loaders) -> Dict[str, np.random.Generator]:
    """The shuffle RNGs of the trainer's loaders, keyed ``loader/<role>``.

    Only shuffling loaders advance their generator, so non-shuffling ones
    (typical validation loaders) are omitted — their iteration order is a
    pure function of the dataset.
    """
    out: Dict[str, np.random.Generator] = {}
    for role, loader in loaders.items():
        if loader is None or not getattr(loader, "shuffle", False):
            continue
        rng = getattr(loader, "rng", None)
        if isinstance(rng, np.random.Generator):
            out[f"loader/{role}"] = rng
    return out


def capture_rngs(rng_map: Mapping[str, np.random.Generator]) -> Dict[str, dict]:
    return {name: encode_rng(gen) for name, gen in rng_map.items()}


def restore_rngs(rng_map: Mapping[str, np.random.Generator],
                 encoded: Mapping[str, dict]) -> None:
    """Rewind every generator that has a saved position; skip the rest.

    Keys present on only one side are ignored: a sequential trainer
    resuming a stacked slice's file has loader streams the stack (which
    trains from :class:`EpochReplayLoader` views) never saved — those are
    fast-forwarded positionally instead (:func:`fast_forward_loader`).
    """
    for name, gen in rng_map.items():
        state = encoded.get(name)
        if state is not None:
            restore_rng(gen, state)


def fast_forward_loader(loader, epochs: int) -> None:
    """Advance a stream loader's shuffle RNG past ``epochs`` epochs.

    Replays exactly the per-epoch draw ``DataLoader.__iter__`` makes (one
    ``shuffle`` of the full index range), so the loader lands on the same
    stream position an uninterrupted run would occupy — used when a
    checkpoint records the position only as an epoch count.
    """
    if not getattr(loader, "shuffle", False):
        return
    for _ in range(int(epochs)):
        indices = np.arange(len(loader.dataset))
        loader.rng.shuffle(indices)


# ----------------------------------------------------------------------
# Optimizer / early-stop state
# ----------------------------------------------------------------------

def optimizer_arrays(optimizer, slice_index: Optional[int] = None
                     ) -> Dict[str, np.ndarray]:
    """Copy every optimizer state array, keyed ``opt/g{gi}p{pi}s{si}``.

    State is allocated eagerly via ``ensure_state`` so the snapshot is
    complete even before the first ``step()``; ``None`` slots (momentum
    off) are skipped.  With ``slice_index`` the leading stack axis is
    sliced off non-scalar arrays, producing template-shaped state — the
    stacked trainer's params are the template's stacked along axis 0, and
    its group/param ordering mirrors the sequential trainer's, so the
    keys line up across both.
    """
    out: Dict[str, np.ndarray] = {}
    for gi, group in enumerate(optimizer.param_groups):
        for pi, p in enumerate(group["params"]):
            for si, arr in enumerate(optimizer.ensure_state(p, group)):
                if arr is None:
                    continue
                if slice_index is not None and arr.ndim > 0:
                    arr = arr[slice_index]
                out[f"opt/g{gi}p{pi}s{si}"] = np.array(arr, copy=True)
    return out


def restore_optimizer(optimizer, arrays: Mapping[str, np.ndarray],
                      slice_index: Optional[int] = None) -> None:
    """Write saved state back **in place** into the optimizer's arrays.

    In-place (``arr[...] = saved``) is load-bearing: whole-loop capture
    rebinds Adam's ``_m``/``_v`` to views of flat-packed buffers, and the
    early-stop arrays are loop-carried — replacing the objects would
    strand the captured program on stale storage.  Missing keys raise
    :class:`CheckpointError` (the checkpoint belongs to a different
    optimizer layout).
    """
    for gi, group in enumerate(optimizer.param_groups):
        for pi, p in enumerate(group["params"]):
            for si, arr in enumerate(optimizer.ensure_state(p, group)):
                if arr is None:
                    continue
                key = f"opt/g{gi}p{pi}s{si}"
                saved = arrays.get(key)
                if saved is None:
                    raise CheckpointError(
                        f"checkpoint is missing optimizer state {key!r} "
                        "(different optimizer layout?)")
                target = arr[slice_index] if (slice_index is not None
                                              and arr.ndim > 0) else arr
                target[...] = saved


def stopper_arrays(stopper) -> Dict[str, np.ndarray]:
    """Early-stop state as arrays: ``stop/*`` counters + ``best/*`` snapshot."""
    best, stale, stop, seen = stopper.carried_state()
    out = {
        "stop/best": np.array(best, copy=True),
        "stop/stale": np.array(stale, copy=True),
        "stop/stop": np.array(stop, copy=True),
        "stop/seen": np.array(seen, copy=True),
    }
    if stopper.best_state is not None:
        for name, arr in stopper.best_state.items():
            out[f"best/{name}"] = arr
    return out


def restore_stopper(stopper, arrays: Mapping[str, np.ndarray]) -> None:
    """In-place restore of the convergence counters and best snapshot."""
    best, stale, stop, seen = stopper.carried_state()
    try:
        best[...] = arrays["stop/best"]
        stale[...] = arrays["stop/stale"]
        stop[...] = arrays["stop/stop"]
        seen[...] = arrays["stop/seen"]
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint is missing early-stop state {exc}") from exc
    best_state = split_group(arrays, "best/")
    stopper.best_state = ({name: np.array(arr, copy=True)
                           for name, arr in best_state.items()}
                          if best_state else None)


def split_group(arrays: Mapping[str, np.ndarray], prefix: str
                ) -> Dict[str, np.ndarray]:
    """The sub-dict under a key prefix, with the prefix stripped."""
    return {key[len(prefix):]: arr for key, arr in arrays.items()
            if key.startswith(prefix)}


# ----------------------------------------------------------------------
# The checkpoint itself
# ----------------------------------------------------------------------

@dataclass
class CheckpointState:
    """One loaded checkpoint: flat arrays + JSON metadata."""
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict = field(default_factory=dict)

    def group(self, prefix: str) -> Dict[str, np.ndarray]:
        return split_group(self.arrays, prefix)


def _checksum(arrays: Mapping[str, np.ndarray], meta: Mapping) -> int:
    """CRC32 over every array (key, dtype, shape, bytes) and the metadata.

    The zip container has per-entry CRCs already; this one additionally
    binds the entries *together* (a truncated archive that still parses,
    or entries spliced from two checkpoints, fails here).
    """
    crc = zlib.crc32(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.dtype).encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.shape).encode("utf-8"), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc


class TrainerCheckpoint:
    """Rolling epoch-boundary checkpoint at a fixed path.

    Parameters
    ----------
    path:
        Archive location; each save atomically replaces the previous one
        (a checkpoint is a cursor, not a history).
    every:
        Save cadence in epochs: ``due(e)`` is True when ``e % every == 0``.
    resume:
        When False, :meth:`load` pretends no checkpoint exists (fresh
        start); saves still happen, overwriting the old file as training
        progresses.
    """

    def __init__(self, path: Union[str, Path], every: int = 1,
                 resume: bool = True):
        self.path = Path(path)
        self.every = max(1, int(every))
        self.resume = bool(resume)

    @classmethod
    def create(cls, directory: Optional[Union[str, Path]], tag: str,
               every: Optional[int] = None, resume: bool = True
               ) -> Optional["TrainerCheckpoint"]:
        """Build a checkpoint under ``directory``, or None when disabled."""
        if not directory:
            return None
        return cls(checkpoint_file(directory, tag),
                   every=checkpoint_every_default() if every is None
                   else every, resume=resume)

    def due(self, global_epoch: int) -> bool:
        return int(global_epoch) % self.every == 0

    def save(self, arrays: Mapping[str, np.ndarray], meta: Mapping) -> None:
        """Atomically persist one epoch-boundary snapshot.

        ``meta`` must be JSON-serializable; it is normalized through a
        JSON round-trip before checksumming so the digest computed here
        matches the one recomputed over the parsed metadata at load time.
        """
        meta = json.loads(json.dumps(meta))
        meta["format"] = FORMAT_VERSION
        meta["checksum"] = _checksum(arrays, meta)
        save_state(dict(arrays), self.path, metadata=meta)
        faults.corrupt_checkpoint_file(str(self.path))

    def load(self) -> Optional[CheckpointState]:
        """The latest valid snapshot, or None (no file / resume off /
        quarantined-corrupt — training then restarts from scratch)."""
        if not self.resume:
            return None
        try:
            arrays, meta = load_state(self.path, quarantine=True)
        except FileNotFoundError:
            return None
        except CheckpointError:
            # Torn or garbage archive: load_state already quarantined it
            # and warned; resume degrades to a fresh start.
            return None
        if not isinstance(meta, dict):
            self._quarantine("no metadata")
            return None
        if meta.get("format") != FORMAT_VERSION:
            self._quarantine(f"unsupported format {meta.get('format')!r}")
            return None
        expected = dict(meta)
        claimed = expected.pop("checksum", None)
        if claimed != _checksum(arrays, expected):
            self._quarantine("checksum mismatch")
            return None
        return CheckpointState(arrays=arrays, meta=meta)

    def _quarantine(self, reason: str) -> None:
        target = str(self.path) + ".corrupt"
        try:
            os.replace(self.path, target)
        except OSError:
            target = "<unmovable>"
        warnings.warn(
            f"checkpoint {str(self.path)!r} rejected ({reason}); "
            f"quarantined to {target!r}", stacklevel=3)
