"""PIT — the paper's primary contribution.

Public surface:

* :class:`PITConv1d` — searchable causal convolution (Eq. 5).
* :class:`TimeMask` and the mask algebra (Eq. 2-4, Fig. 2).
* :func:`size_regularizer` / :func:`flops_regularizer` (Eq. 6).
* :class:`PITTrainer` — the 3-phase search (Algorithm 1).
* :func:`export_network` — collapse the searched net into a plain TCN.
* Search-space accounting (Sec. IV-B).
"""

from .masks import (
    TimeMask,
    num_gamma,
    gamma_index_for_lag,
    lag_gamma_indices,
    mask_from_binary_gamma,
    mask_from_dilation,
    gamma_from_dilation,
    effective_dilation,
    kept_lags,
    build_t_matrix,
    build_k_matrix,
    mask_eq4,
)
from .pit_conv import PITConv1d
from .regularizer import (
    gamma_size_coefficients,
    size_regularizer,
    flops_regularizer,
    pit_layers,
)
from .export import (
    export_conv,
    export_network,
    deployable_network,
    network_dilations,
    network_summary,
    effective_parameters,
)
from .search_space import (
    layer_choices,
    search_space_size,
    enumerate_configurations,
    parameter_range,
)
from .checkpoint import (
    CheckpointError,
    CheckpointState,
    TrainerCheckpoint,
    checkpoint_file,
    key_tag,
)
from .trainer import (
    PITTrainer,
    PITResult,
    train_plain,
    evaluate,
    TrainResult,
    DivergedError,
    make_training_step,
)
from .stacked import (
    StackedPITConv1d,
    StackedPITTrainer,
    StackedTimeMask,
    clip_grad_norm_stacked,
    per_model_loss,
    register_stacked_loss,
    stacked_regularizer_vector,
)
from .channel_mask import (
    ChannelMask,
    PITChannelConv1d,
    channel_regularizer,
    channel_layers,
    export_channel_conv,
)

__all__ = [
    "TimeMask",
    "num_gamma",
    "gamma_index_for_lag",
    "lag_gamma_indices",
    "mask_from_binary_gamma",
    "mask_from_dilation",
    "gamma_from_dilation",
    "effective_dilation",
    "kept_lags",
    "build_t_matrix",
    "build_k_matrix",
    "mask_eq4",
    "PITConv1d",
    "gamma_size_coefficients",
    "size_regularizer",
    "flops_regularizer",
    "pit_layers",
    "export_conv",
    "export_network",
    "deployable_network",
    "network_dilations",
    "network_summary",
    "effective_parameters",
    "layer_choices",
    "search_space_size",
    "enumerate_configurations",
    "parameter_range",
    "CheckpointError",
    "CheckpointState",
    "TrainerCheckpoint",
    "checkpoint_file",
    "key_tag",
    "PITTrainer",
    "PITResult",
    "train_plain",
    "evaluate",
    "TrainResult",
    "DivergedError",
    "make_training_step",
    "StackedPITConv1d",
    "StackedPITTrainer",
    "StackedTimeMask",
    "clip_grad_norm_stacked",
    "per_model_loss",
    "register_stacked_loss",
    "stacked_regularizer_vector",
    "ChannelMask",
    "PITChannelConv1d",
    "channel_regularizer",
    "channel_layers",
    "export_channel_conv",
]
