"""PIT's three-phase training procedure (paper Algorithm 1).

Phase 1 — *warmup*: γ̂ initialized to 1 (all masks fully on); only the
weights train, on the plain task loss, for ``warmup_epochs``.

Phase 2 — *pruning*: weights and γ̂ train concurrently on
``L_PIT = L_perf(W) + L_R(γ)`` (Eq. 7); the loop runs until the validation
task loss stops improving (patience-based convergence) or a hard epoch cap.

Phase 3 — *fine-tuning*: γ are frozen at their latest binarized values and
the resulting dilated network fine-tunes on the task loss alone; the best
validation state is restored at the end.

The paper notes both warmup and fine-tuning "significantly improve the
final accuracy" — the ablation bench exercises exactly that claim.

The module also provides :func:`train_plain` / :func:`evaluate`, the
vanilla loops used by the No-NAS reference of Fig. 5 and by the
ProxylessNAS baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor
from ..autograd.graph import (
    CompileConfig,
    CompiledEpoch,
    CompiledStep,
    EagerStep,
    compile_step_default,
)
from ..nn.eval_utils import mean_loss_over_loader
from ..nn.module import Module
from ..optim import Adam, EarlyStopping, clip_grad_norm
from ..optim.kernels import clip_grads
from ..testing import faults
from .checkpoint import (
    TrainerCheckpoint,
    capture_rngs,
    fast_forward_loader,
    loader_rng_map,
    module_rng_map,
    optimizer_arrays,
    restore_optimizer,
    restore_rngs,
    restore_stopper,
    stopper_arrays,
)
from .export import effective_parameters, network_dilations
from .regularizer import flops_regularizer, pit_layers, size_regularizer

__all__ = ["PITResult", "PITTrainer", "train_plain", "evaluate",
           "TrainResult", "DivergedError",
           "make_training_step", "make_epoch_runner"]

LossFn = Callable[[Tensor, Tensor], Tensor]


class DivergedError(RuntimeError):
    """Training produced a non-finite loss (NaN/Inf) — the run is lost.

    Raised by the epoch/validation guards in this module and in
    :mod:`repro.core.stacked`.  Typed so callers with a recovery story
    (the DSE engine's per-point isolation turns it into a failed
    ``DSEPoint``) can tell divergence — permanent, never worth a retry —
    from transient infrastructure failures, which are.
    """


def _guard_finite(value: float, what: str) -> float:
    """Raise :class:`DivergedError` when a loss went NaN/Inf.

    A non-finite loss silently poisons everything downstream — early
    stopping treats NaN as "no improvement" and keeps training, gradients
    are already garbage — so the loop that produced it must stop *now*
    with a diagnosis instead of burning the remaining epochs.
    """
    if not np.isfinite(value):
        raise DivergedError(
            f"{what} is non-finite ({value!r}); training diverged")
    return value


def evaluate(model: Module, loss_fn: LossFn, loader) -> float:
    """Mean task loss over a data loader, in evaluation mode, no gradients."""
    return mean_loss_over_loader(
        model, loader, loss_fn,
        empty_message="evaluation loader produced no batches")


def _step_function(model: Module, loss_fn: LossFn,
                   extra_loss: Optional[Callable[[], Tensor]] = None):
    """The canonical training-step graph: loss first, task loss second."""
    def step_fn(x: Tensor, y: Tensor):
        pred = model(x)
        task_loss = loss_fn(pred, y)
        loss = task_loss if extra_loss is None else task_loss + extra_loss()
        return loss, task_loss
    return step_fn


def make_training_step(model: Module, loss_fn: LossFn,
                       extra_loss: Optional[Callable[[], Tensor]] = None,
                       compile_step: Optional[bool] = None,
                       graph_opt: Optional[str] = None,
                       graph_exec: Optional[str] = None,
                       compile_config: Optional[CompileConfig] = None):
    """Build the per-batch step runner: ``step(x, y) -> (loss, task_loss)``.

    The runner computes the (optionally regularized) loss, backpropagates
    it into the parameters' ``.grad``, and returns both loss values as
    floats.  ``compile_config`` carries the compilation knobs
    (:class:`repro.autograd.graph.CompileConfig`): with compilation on the
    step is traced on first use and replayed through the
    :mod:`repro.autograd.graph` executor — bit-identical results, no
    per-batch graph construction; unset fields defer to the ``REPRO_*``
    environment defaults.  The loose ``compile_step`` / ``graph_opt`` /
    ``graph_exec`` kwargs survive as a deprecated shim.  All combinations
    are bit-identical, so these knobs only affect speed.
    """
    cfg = CompileConfig.resolve(compile_config, compile_step=compile_step,
                                graph_opt=graph_opt, graph_exec=graph_exec)
    step_fn = _step_function(model, loss_fn, extra_loss)
    if cfg.want_compile():
        return CompiledStep(step_fn, optimize=cfg.graph_opt,
                            graph_exec=cfg.graph_exec)
    return EagerStep(step_fn)


def make_epoch_runner(step, optimizer, grad_clip: Optional[float] = None,
                      compile_config: Optional[CompileConfig] = None
                      ) -> Optional[CompiledEpoch]:
    """The phase's whole-loop driver when loop capture is enabled, else None.

    The returned :class:`~repro.autograd.graph.CompiledEpoch` replays each
    epoch as one loop program (clip + optimizer updates captured as
    kernels); loop-level failures degrade to driving the compiled step per
    batch — never to eager, which stays reserved for capture failures
    inside the step itself.
    """
    cfg = CompileConfig.resolve(compile_config)
    if not cfg.want_loop():
        return None
    return CompiledEpoch(step, optimizer, grad_clip=grad_clip,
                         clip_fn=clip_grad_norm, clip_kernel=clip_grads)


def _resolve_compile(compile_step: Optional[bool]) -> bool:
    """None means "whatever REPRO_COMPILE_STEP says"; booleans win."""
    return compile_step_default() if compile_step is None else bool(compile_step)


def _train_epoch(model: Module, loss_fn: LossFn, optimizer, loader,
                 extra_loss: Optional[Callable[[], Tensor]] = None,
                 grad_clip: Optional[float] = None, step=None,
                 epoch=None) -> float:
    """One optimization epoch; returns the mean (task-only) training loss.

    ``step`` is a runner from :func:`make_training_step`; passing one in
    lets a compiled step persist across the epochs of a training phase.
    When None, a fresh *eager* runner is built from the other arguments —
    a per-epoch temporary would re-trace every call, so compilation is
    only worthwhile through an explicit ``step``.  ``epoch`` is a
    :func:`make_epoch_runner` driver; when given it owns the whole batch
    loop (replaying it as one program once traced) and the remaining
    arguments only describe the fallback it replicates.
    """
    model.train()
    if epoch is not None:
        mean = epoch.run_epoch(loader)
    else:
        if step is None:
            step = make_training_step(model, loss_fn, extra_loss,
                                      compile_config=CompileConfig(
                                          compile_step=False))
        total, batches = 0.0, 0
        for x, y in loader:
            optimizer.zero_grad()
            _, task_value = step(x, y)
            if grad_clip is not None:
                clip_grad_norm(optimizer.params, grad_clip)
            optimizer.step()
            total += task_value
            batches += 1
        if batches == 0:
            raise ValueError("training loader produced no batches")
        mean = total / batches
    # A NaN/Inf in any batch propagates into the epoch mean, so one guard
    # here covers every execution tier (eager, compiled, loop capture).
    return _guard_finite(faults.poison_loss(mean), "epoch training loss")


@dataclass
class TrainResult:
    """Outcome of a plain (no-NAS) training run.

    ``compile_stats`` holds :meth:`CompiledStep.diagnostics` for the run's
    step when the step was compiled (None for eager runs) — a plain dict so
    results stay picklable across DSE worker processes.
    ``resumed_epochs`` counts the epochs this run *skipped* by resuming a
    mid-run checkpoint (0 for an uninterrupted run).
    """
    best_val: float
    epochs: int
    seconds: float
    history: List[Tuple[float, float]] = field(default_factory=list)
    compile_stats: Optional[Dict] = None
    resumed_epochs: int = 0


def train_plain(model: Module, loss_fn: LossFn, train_loader, val_loader,
                epochs: int = 50, lr: float = 1e-3, patience: int = 10,
                grad_clip: Optional[float] = None,
                weight_decay: float = 0.0,
                compile_step: Optional[bool] = None,
                graph_opt: Optional[str] = None,
                graph_exec: Optional[str] = None,
                loop_capture: Optional[bool] = None,
                compile_config: Optional[CompileConfig] = None,
                checkpoint_dir: Optional[str] = None,
                checkpoint_every: Optional[int] = None,
                checkpoint_tag: str = "train",
                checkpoint_resume: bool = True) -> TrainResult:
    """Standard training with early stopping and best-state restore.

    ``compile_config`` carries the compilation knobs
    (:class:`repro.autograd.graph.CompileConfig`): step compilation traces
    the training step once and replays it via the graph executor
    (bit-identical, faster); whole-loop capture additionally replays each
    *epoch* as one loop program.  Unset fields defer to the ``REPRO_*``
    environment defaults; the loose kwargs survive as a deprecated shim.

    With ``checkpoint_dir`` set, the complete training state (model,
    Adam moments/counters, RNG streams, early-stop state) is snapshotted
    every ``checkpoint_every`` epochs under ``<dir>/<tag>.ckpt.npz``; a
    run killed at an epoch boundary and restarted resumes from there
    bit-identically (see :mod:`repro.core.checkpoint`).
    """
    cfg = CompileConfig.resolve(compile_config, compile_step=compile_step,
                                graph_opt=graph_opt, graph_exec=graph_exec,
                                loop_capture=loop_capture)
    ckpt = TrainerCheckpoint.create(checkpoint_dir, checkpoint_tag,
                                    every=checkpoint_every,
                                    resume=checkpoint_resume)
    resume = ckpt.load() if ckpt is not None else None
    meta = resume.meta if resume is not None else {}
    if resume is not None and meta.get("trainer") != "plain":
        resume, meta = None, {}
    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    stopper = EarlyStopping(patience=patience, mode="min")
    start = time.perf_counter()
    base_seconds = float(meta.get("seconds", {}).get("train", 0.0))
    history: List[Tuple[float, float]] = [
        (float(t), float(v)) for t, v in meta.get("history", [])]
    ran = int(meta.get("counters", {}).get("ran", 0))
    resumed = ran
    rng_map = {**module_rng_map(model),
               **loader_rng_map(train=train_loader, val=val_loader)}
    if resume is not None:
        model.load_state_dict(resume.group("model/"))
        restore_optimizer(optimizer, resume.arrays)
        restore_stopper(stopper, resume.arrays)
        restore_rngs(rng_map, meta.get("rngs", {}))
    step = make_training_step(model, loss_fn, compile_config=cfg)
    epoch = make_epoch_runner(step, optimizer, grad_clip, cfg)
    for _ in range(ran, epochs):
        if stopper.should_stop:
            break  # checkpoint was taken on the converged epoch
        train_loss = _train_epoch(model, loss_fn, optimizer, train_loader,
                                  grad_clip=grad_clip, step=step, epoch=epoch)
        val_loss = _guard_finite(evaluate(model, loss_fn, val_loader),
                                 "validation loss")
        history.append((train_loss, val_loss))
        ran += 1
        stopper.update(val_loss, state=model.state_dict())
        if ckpt is not None and ckpt.due(ran):
            arrays = {f"model/{k}": v for k, v in model.state_dict().items()}
            arrays.update(optimizer_arrays(optimizer))
            arrays.update(stopper_arrays(stopper))
            ckpt.save(arrays, {
                "trainer": "plain", "phase": "train", "global_epoch": ran,
                "counters": {"ran": ran}, "history": history,
                "seconds": {"train": base_seconds
                            + (time.perf_counter() - start)},
                "rngs": capture_rngs(rng_map),
                "loader_epochs": {"train": ran, "val": ran},
            })
        faults.crash_at_epoch(ran)
        if stopper.should_stop:
            break
    if stopper.best_state is not None:
        model.load_state_dict(stopper.best_state)
    best = (float(stopper.best) if stopper.best is not None
            else evaluate(model, loss_fn, val_loader))
    return TrainResult(best_val=best, epochs=ran,
                       seconds=base_seconds + (time.perf_counter() - start),
                       history=history,
                       compile_stats=_compile_stats(step, epoch),
                       resumed_epochs=resumed)


def _compile_stats(step, epoch=None) -> Optional[Dict]:
    """Diagnostics dict for a compiled step, None otherwise (picklable).

    With whole-loop capture active, the epoch driver's own report (epochs
    replayed vs driven, loop executors, fallback ladder position) rides
    along under the ``"loop"`` key.
    """
    if not isinstance(step, CompiledStep):
        return None
    stats = step.diagnostics()
    if epoch is not None:
        stats["loop"] = epoch.diagnostics()
    return stats


@dataclass
class PITResult:
    """Everything the benchmarks need from one PIT run.

    ``resumed_epochs`` counts the (global) epochs this run skipped by
    resuming a mid-run checkpoint — 0 for an uninterrupted run; the DSE
    engine sums it into ``last_run_stats["resumed_epochs"]``.
    """
    dilations: Tuple[int, ...]
    best_val: float
    effective_params: int
    warmup_seconds: float
    prune_seconds: float
    finetune_seconds: float
    warmup_epochs: int
    prune_epochs: int
    finetune_epochs: int
    history: Dict[str, List[float]] = field(default_factory=dict)
    compile_stats: Dict[str, Dict] = field(default_factory=dict)
    resumed_epochs: int = 0

    @property
    def total_seconds(self) -> float:
        return self.warmup_seconds + self.prune_seconds + self.finetune_seconds


class PITTrainer:
    """Runs Algorithm 1 on a model containing :class:`PITConv1d` layers.

    Parameters
    ----------
    model:
        Seed network with PIT layers (γ̂ initialized to 1, i.e. d=1).
    loss_fn:
        Task loss ``L_perf`` (e.g. :func:`repro.nn.polyphonic_nll`).
    lam:
        Regularization strength λ of Eq. 6.  The λ sweep is what produces
        the Pareto front of Fig. 4.
    warmup_epochs:
        Length of phase 1 ("Steps_wu"; shorter warmup biases the search
        toward simpler models, paper Sec. III-C).
    prune_patience / max_prune_epochs:
        Convergence criterion of the pruning loop.
    finetune_epochs / finetune_patience:
        Length / early stop of phase 3.
    regularizer:
        ``"size"`` (Eq. 6, the paper's choice) or ``"flops"``.
    compile_step:
        True traces each phase's training step once and replays it through
        the graph executor (:mod:`repro.autograd.graph`) — bit-identical
        losses/gradients/masks, no per-batch graph construction.  Each
        phase compiles its own step (the pruning phase adds the
        regularizer; fine-tuning freezes the masks).  None defers to the
        ``REPRO_COMPILE_STEP`` environment default.
    graph_opt:
        Optimization level for compiled steps: ``"default"`` runs the pass
        pipeline (constant folding — which collapses the frozen-mask
        subgraphs of the fine-tuning phase — dead-node elimination, op
        fusion, buffer-arena planning) on every traced program; ``"none"``
        replays the trace verbatim.  None defers to ``REPRO_GRAPH_OPT``.
        Results are bit-identical either way.
    graph_exec:
        Replay executor for compiled steps: ``"interp"`` walks the
        precomputed plan, ``"source"`` runs specialized generated code
        (:mod:`repro.autograd.graph.codegen`) with an automatic interp
        fallback on lowering failure.  None defers to
        ``REPRO_GRAPH_EXEC``.  Bit-identical either way.
    loop_capture:
        True replays each phase's epochs as one loop program
        (:class:`repro.autograd.graph.CompiledEpoch`): the compiled batch
        body, gradient clipping and the Adam update kernels close into a
        single :class:`~repro.autograd.graph.LoopNode` with no trainer
        Python between batches.  Implies step compilation.  None defers to
        ``REPRO_LOOP_CAPTURE``.  Bit-identical either way.
    compile_config:
        All four knobs as one :class:`repro.autograd.graph.CompileConfig`;
        the loose kwargs above survive as a deprecated shim and lose to
        explicit config fields.
    checkpoint_dir / checkpoint_every / checkpoint_tag / checkpoint_resume:
        With ``checkpoint_dir`` set, :meth:`fit` snapshots the complete
        training state every ``checkpoint_every`` epochs (counting
        globally across all three phases) to
        ``<dir>/<tag>.ckpt.npz`` and — unless ``checkpoint_resume`` is
        False — resumes from that file when it exists, bit-identically
        to the uninterrupted run (see :mod:`repro.core.checkpoint`).
    """

    def __init__(self, model: Module, loss_fn: LossFn, lam: float,
                 lr: float = 1e-3, gamma_lr: Optional[float] = None,
                 warmup_epochs: int = 5, prune_patience: int = 5,
                 max_prune_epochs: int = 50, finetune_epochs: int = 30,
                 finetune_patience: int = 10, regularizer: str = "size",
                 channel_lam: float = 0.0,
                 grad_clip: Optional[float] = None, verbose: bool = False,
                 compile_step: Optional[bool] = None,
                 graph_opt: Optional[str] = None,
                 graph_exec: Optional[str] = None,
                 loop_capture: Optional[bool] = None,
                 compile_config: Optional[CompileConfig] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_tag: str = "pit",
                 checkpoint_resume: bool = True):
        if regularizer not in ("size", "flops"):
            raise ValueError("regularizer must be 'size' or 'flops'")
        self.model = model
        self.loss_fn = loss_fn
        self.lam = lam
        self.lr = lr
        self.gamma_lr = gamma_lr if gamma_lr is not None else lr
        self.warmup_epochs = warmup_epochs
        self.prune_patience = prune_patience
        self.max_prune_epochs = max_prune_epochs
        self.finetune_epochs = finetune_epochs
        self.finetune_patience = finetune_patience
        self.regularizer = regularizer
        self.channel_lam = channel_lam
        self.grad_clip = grad_clip
        self.verbose = verbose
        cfg = CompileConfig.resolve(compile_config, compile_step=compile_step,
                                    graph_opt=graph_opt,
                                    graph_exec=graph_exec,
                                    loop_capture=loop_capture)
        # Environment-deferred fields resolve at construction (as the loose
        # knobs always did), so fit() ignores later env flips.
        self.compile_config = CompileConfig(
            compile_step=cfg.want_compile(), graph_opt=cfg.resolved_opt(),
            graph_exec=cfg.resolved_exec(), loop_capture=cfg.want_loop())
        self.compile_step = self.compile_config.compile_step
        self.graph_opt = self.compile_config.graph_opt
        self.graph_exec = self.compile_config.graph_exec
        self.loop_capture = self.compile_config.loop_capture
        self._checkpoint = TrainerCheckpoint.create(
            checkpoint_dir, checkpoint_tag, every=checkpoint_every,
            resume=checkpoint_resume)
        if not self._searchable_layers():
            raise ValueError("model contains no searchable (PITConv1d / "
                             "PITChannelConv1d) layers")

    def _searchable_layers(self):
        from .channel_mask import channel_layers
        return pit_layers(self.model) + channel_layers(self.model)

    # ------------------------------------------------------------------
    def _split_params(self):
        gamma_params, weight_params = [], []
        for name, p in self.model.named_parameters():
            (gamma_params if name.endswith("gamma_hat") else weight_params).append(p)
        return weight_params, gamma_params

    def _regularizer_term(self) -> Tensor:
        if self.regularizer == "size":
            term = size_regularizer(self.model, self.lam)
        else:
            term = flops_regularizer(self.model, self.lam)
        if self.channel_lam:
            from .channel_mask import channel_regularizer
            term = term + channel_regularizer(self.model, self.channel_lam)
        return term

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[PIT] {message}")

    # ------------------------------------------------------------------
    _PHASES = ("warmup", "prune", "finetune")

    def _restore_into(self, resume, optimizer, stopper) -> None:
        """In-place restore of model / optimizer / stopper state.

        Parameters and the optimizer's moment arrays are written in place
        (``arr[...] =``), so anything aliasing them — flat-packed loop
        buffers, captured programs — keeps seeing the carried storage.
        """
        self.model.load_state_dict(resume.group("model/"))
        restore_optimizer(optimizer, resume.arrays)
        if stopper is not None:
            restore_stopper(stopper, resume.arrays)

    def _save_boundary(self, phase: str, optimizer, stopper,
                       history: Dict, counters: Dict, seconds: Dict,
                       rng_map: Dict) -> None:
        """One global-epoch boundary: persist the snapshot (when due),
        then hit the ``crash@epoch=K`` fault site — after the save, so an
        injected kill simulates preemption with durable state on disk."""
        self._global_epoch += 1
        ge = self._global_epoch
        ckpt = self._checkpoint
        if ckpt is not None and ckpt.due(ge):
            arrays = {f"model/{name}": arr
                      for name, arr in self.model.state_dict().items()}
            arrays.update(optimizer_arrays(optimizer))
            if stopper is not None:
                arrays.update(stopper_arrays(stopper))
            ckpt.save(arrays, {
                "trainer": "pit", "phase": phase, "global_epoch": ge,
                "counters": {k: int(v) for k, v in counters.items()},
                "history": history, "seconds": seconds,
                "rngs": capture_rngs(rng_map),
                "loader_epochs": {"train": ge, "val": ge},
            })
        faults.crash_at_epoch(ge)

    def fit(self, train_loader, val_loader) -> PITResult:
        """Run warmup → pruning → fine-tuning; return the search outcome.

        With checkpointing configured (``checkpoint_dir=``), the complete
        training state is snapshotted at (global) epoch boundaries and an
        existing snapshot is resumed: the remaining epochs replay
        bit-identically — losses, params, full Adam state — to the run
        that was never interrupted.  Resume assumes the same trainer
        configuration and data as the run that wrote the snapshot.
        """
        ckpt = self._checkpoint
        resume = ckpt.load() if ckpt is not None else None
        meta = resume.meta if resume is not None else {}
        if resume is not None and meta.get("trainer") != "pit":
            resume, meta = None, {}
        phase_at = (self._PHASES.index(meta["phase"])
                    if meta.get("phase") in self._PHASES else -1)
        counters: Dict[str, int] = {
            k: int(v) for k, v in meta.get("counters", {}).items()}
        seconds: Dict[str, float] = {
            k: float(v) for k, v in meta.get("seconds", {}).items()}
        history: Dict[str, List[float]] = meta.get("history") or {
            "warmup_val": [], "prune_val": [], "finetune_val": [],
            "prune_params": [],
        }
        self._global_epoch = int(meta.get("global_epoch", 0))
        resumed_epochs = self._global_epoch
        compile_stats: Dict[str, Dict] = {}
        weight_params, gamma_params = self._split_params()
        rng_map = {**module_rng_map(self.model),
                   **loader_rng_map(train=train_loader, val=val_loader)}
        if resume is not None:
            saved_rngs = meta.get("rngs", {})
            restore_rngs(rng_map, saved_rngs)
            # Shuffling streams the snapshot has no RNG state for (a
            # stacked slice's file: the stack trains from replay views,
            # not these streams) advance positionally instead.
            loader_epochs = meta.get("loader_epochs", {})
            for role, loader in (("train", train_loader),
                                 ("val", val_loader)):
                if (getattr(loader, "shuffle", False)
                        and f"loader/{role}" not in saved_rngs):
                    fast_forward_loader(
                        loader, int(loader_epochs.get(role, 0)))
            self._log(f"resumed from {ckpt.path} at phase "
                      f"{meta.get('phase')!r}, global epoch "
                      f"{self._global_epoch}")

        # ---------------- Phase 1: warmup (weights only) ----------------
        start = time.perf_counter()
        warmup_base = seconds.get("warmup", 0.0)
        warmup_ran = counters.get("warmup_ran", 0)
        warmup_seconds = warmup_base
        if self.warmup_epochs > 0 and phase_at <= 0:
            optimizer = Adam(weight_params, lr=self.lr)
            if resume is not None and phase_at == 0:
                self._restore_into(resume, optimizer, None)
            step = make_training_step(self.model, self.loss_fn,
                                      compile_config=self.compile_config)
            epoch = make_epoch_runner(step, optimizer, self.grad_clip,
                                      self.compile_config)
            for _ in range(warmup_ran, self.warmup_epochs):
                _train_epoch(self.model, self.loss_fn, optimizer, train_loader,
                             grad_clip=self.grad_clip, step=step, epoch=epoch)
                history["warmup_val"].append(_guard_finite(
                    evaluate(self.model, self.loss_fn, val_loader),
                    "warmup validation loss"))
                warmup_ran += 1
                counters["warmup_ran"] = warmup_ran
                self._save_boundary(
                    "warmup", optimizer, None, history, counters,
                    {**seconds, "warmup": warmup_base
                     + (time.perf_counter() - start)}, rng_map)
            stats = _compile_stats(step, epoch)
            if stats is not None:
                compile_stats["warmup"] = stats
            self._log(f"warmup done, val={history['warmup_val'][-1]:.4f}")
            warmup_seconds = warmup_base + (time.perf_counter() - start)
        seconds["warmup"] = warmup_seconds

        # ---------------- Phase 2: pruning (weights + γ) ----------------
        start = time.perf_counter()
        prune_base = seconds.get("prune", 0.0)
        prune_ran = counters.get("prune_ran", 0)
        prune_seconds = prune_base
        if phase_at <= 1:
            groups = [{"params": weight_params, "lr": self.lr}]
            if gamma_params:
                groups.append({"params": gamma_params, "lr": self.gamma_lr,
                               "weight_decay": 0.0})
            optimizer = Adam(groups, lr=self.lr)
            stopper = EarlyStopping(patience=self.prune_patience, mode="min")
            if resume is not None and phase_at == 1:
                self._restore_into(resume, optimizer, stopper)
            step = make_training_step(self.model, self.loss_fn,
                                      extra_loss=self._regularizer_term,
                                      compile_config=self.compile_config)
            epoch = make_epoch_runner(step, optimizer, self.grad_clip,
                                      self.compile_config)
            for _ in range(prune_ran, self.max_prune_epochs):
                if stopper.should_stop:
                    break  # resumed from the converged epoch's snapshot
                _train_epoch(self.model, self.loss_fn, optimizer, train_loader,
                             extra_loss=self._regularizer_term,
                             grad_clip=self.grad_clip, step=step, epoch=epoch)
                val_loss = _guard_finite(
                    evaluate(self.model, self.loss_fn, val_loader),
                    "pruning validation loss")
                history["prune_val"].append(val_loss)
                history["prune_params"].append(
                    float(effective_parameters(self.model)))
                prune_ran += 1
                counters["prune_ran"] = prune_ran
                stopper.update(val_loss)
                self._save_boundary(
                    "prune", optimizer, stopper, history, counters,
                    {**seconds, "prune": prune_base
                     + (time.perf_counter() - start)}, rng_map)
                if stopper.should_stop:
                    break
            stats = _compile_stats(step, epoch)
            if stats is not None:
                compile_stats["prune"] = stats
            prune_seconds = prune_base + (time.perf_counter() - start)
        seconds["prune"] = prune_seconds
        self._log(f"pruning converged after {prune_ran} epochs, "
                  f"dilations={network_dilations(self.model)}")

        # ---------------- Phase 3: freeze + fine-tune --------------------
        start = time.perf_counter()
        finetune_base = seconds.get("finetune", 0.0)
        finetune_ran = counters.get("finetune_ran", 0)
        for layer in self._searchable_layers():
            layer.freeze()
        optimizer = Adam(weight_params, lr=self.lr)
        stopper = EarlyStopping(patience=self.finetune_patience, mode="min")
        if resume is not None and phase_at == 2:
            # freeze() first (it sets the frozen *flags*), restore second:
            # the snapshot's buffers carry the exact masks of the original
            # pruning outcome, overwriting what freeze() just computed
            # from this process's never-pruned γ̂.
            self._restore_into(resume, optimizer, stopper)
        # Fresh step: freezing changed the graph (masks became constants,
        # which the graph optimizer folds away entirely).
        step = make_training_step(self.model, self.loss_fn,
                                  compile_config=self.compile_config)
        epoch = make_epoch_runner(step, optimizer, self.grad_clip,
                                  self.compile_config)
        for _ in range(finetune_ran, self.finetune_epochs):
            if stopper.should_stop:
                break  # resumed from the converged epoch's snapshot
            _train_epoch(self.model, self.loss_fn, optimizer, train_loader,
                         grad_clip=self.grad_clip, step=step, epoch=epoch)
            val_loss = _guard_finite(
                evaluate(self.model, self.loss_fn, val_loader),
                "fine-tuning validation loss")
            history["finetune_val"].append(val_loss)
            finetune_ran += 1
            counters["finetune_ran"] = finetune_ran
            stopper.update(val_loss, state=self.model.state_dict())
            self._save_boundary(
                "finetune", optimizer, stopper, history, counters,
                {**seconds, "finetune": finetune_base
                 + (time.perf_counter() - start)}, rng_map)
            if stopper.should_stop:
                break
        stats = _compile_stats(step, epoch)
        if stats is not None:
            compile_stats["finetune"] = stats
        if stopper.best_state is not None:
            self.model.load_state_dict(stopper.best_state)
        finetune_seconds = finetune_base + (time.perf_counter() - start)

        best_val = (float(stopper.best) if stopper.best is not None
                    else evaluate(self.model, self.loss_fn, val_loader))
        self._log(f"fine-tuning done, best val={best_val:.4f}")

        return PITResult(
            dilations=network_dilations(self.model),
            best_val=best_val,
            effective_params=effective_parameters(self.model),
            warmup_seconds=warmup_seconds,
            prune_seconds=prune_seconds,
            finetune_seconds=finetune_seconds,
            warmup_epochs=warmup_ran,
            prune_epochs=prune_ran,
            finetune_epochs=finetune_ran,
            history=history,
            compile_stats=compile_stats,
            resumed_epochs=resumed_epochs,
        )
