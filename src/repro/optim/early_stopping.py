"""Early stopping on a validation metric.

The paper uses validation-loss convergence to end PIT's pruning phase
(Algorithm 1, "while not converged") and an early-stop patience of 50
epochs in the ProxylessNAS comparison (Sec. IV-C).  This helper implements
the standard patience-based criterion with best-state checkpointing.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

import numpy as np

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Track a metric and signal convergence after ``patience`` stale epochs.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving observations tolerated before
        :attr:`should_stop` flips to True.
    min_delta:
        Minimum improvement (in ``mode`` direction) to reset the counter.
    mode:
        ``"min"`` for losses, ``"max"`` for accuracies.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0, mode: str = "min"):
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best: Optional[float] = None
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.stale = 0
        self.should_stop = False

    def update(self, metric: float, state: Optional[Dict[str, np.ndarray]] = None) -> bool:
        """Record one observation; return True when it improved the best."""
        improved = self.best is None or (
            metric < self.best - self.min_delta if self.mode == "min"
            else metric > self.best + self.min_delta)
        if improved:
            self.best = metric
            self.stale = 0
            if state is not None:
                self.best_state = copy.deepcopy(state)
        else:
            self.stale += 1
            if self.stale >= self.patience:
                self.should_stop = True
        return improved

    def reset(self) -> None:
        self.best = None
        self.best_state = None
        self.stale = 0
        self.should_stop = False
