"""Early stopping on a validation metric.

The paper uses validation-loss convergence to end PIT's pruning phase
(Algorithm 1, "while not converged") and an early-stop patience of 50
epochs in the ProxylessNAS comparison (Sec. IV-C).  This helper implements
the standard patience-based criterion with best-state checkpointing.

The numeric bookkeeping (best / stale counter / stop flag) lives in 0-d
numpy arrays updated by :func:`repro.optim.kernels.early_stop_update`, so
a captured training schedule can carry the convergence state as data; the
Python-level attributes are read-only views over those arrays.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Tuple

import numpy as np

from .kernels import early_stop_update

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Track a metric and signal convergence after ``patience`` stale epochs.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving observations tolerated before
        :attr:`should_stop` flips to True.
    min_delta:
        Minimum improvement (in ``mode`` direction) to reset the counter.
    mode:
        ``"min"`` for losses, ``"max"`` for accuracies.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0, mode: str = "min"):
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self._sign = 1.0 if mode == "min" else -1.0
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self._best = np.zeros((), dtype=np.float64)
        self._stale = np.zeros((), dtype=np.int64)
        self._stop = np.zeros((), dtype=bool)
        self._seen = np.zeros((), dtype=bool)

    @property
    def best(self) -> Optional[float]:
        return float(self._best) if bool(self._seen) else None

    @property
    def stale(self) -> int:
        return int(self._stale)

    @property
    def should_stop(self) -> bool:
        return bool(self._stop)

    def carried_state(self) -> Tuple[np.ndarray, ...]:
        """The loop-carried convergence arrays ``(best, stale, stop, seen)``."""
        return (self._best, self._stale, self._stop, self._seen)

    def update(self, metric: float, state: Optional[Dict[str, np.ndarray]] = None) -> bool:
        """Record one observation; return True when it improved the best."""
        improved = early_stop_update(
            self._best, self._stale, self._stop, self._seen,
            metric, self.min_delta, self.patience, self._sign)
        if improved and state is not None:
            self.best_state = copy.deepcopy(state)
        return improved

    def reset(self) -> None:
        self.best_state = None
        self._best[...] = 0.0
        self._stale[...] = 0
        self._stop[...] = False
        self._seen[...] = False
