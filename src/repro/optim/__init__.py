"""Optimizers, LR schedulers, gradient clipping and early stopping."""

from .kernels import (UpdateKernelSpec, adam_update, sgd_update, clip_grads,
                      clip_grads_stacked, early_stop_update)
from .optimizers import Optimizer, SGD, Adam
from .schedulers import StepLR, CosineAnnealingLR, ReduceLROnPlateau, clip_grad_norm
from .early_stopping import EarlyStopping

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "clip_grad_norm",
    "EarlyStopping",
    "UpdateKernelSpec",
    "adam_update",
    "sgd_update",
    "clip_grads",
    "clip_grads_stacked",
    "early_stop_update",
]
