"""Optimizers, LR schedulers, gradient clipping and early stopping."""

from .optimizers import Optimizer, SGD, Adam
from .schedulers import StepLR, CosineAnnealingLR, ReduceLROnPlateau, clip_grad_norm
from .early_stopping import EarlyStopping

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "clip_grad_norm",
    "EarlyStopping",
]
