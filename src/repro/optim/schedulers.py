"""Learning-rate schedulers and gradient clipping."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..nn.module import Parameter
from .kernels import clip_grads
from .optimizers import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR", "ReduceLROnPlateau", "clip_grad_norm"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.get_lr()
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        factor = self.gamma ** (self.epoch // self.step_size)
        self.optimizer.set_lr(self.base_lr * factor)


class CosineAnnealingLR:
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.get_lr()
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.t_max)
        cos = (1 + math.cos(math.pi * self.epoch / self.t_max)) / 2
        self.optimizer.set_lr(self.eta_min + (self.base_lr - self.eta_min) * cos)


class ReduceLROnPlateau:
    """Reduce the LR by ``factor`` after ``patience`` non-improving epochs."""

    def __init__(self, optimizer: Optimizer, factor: float = 0.5,
                 patience: int = 5, min_lr: float = 1e-6, mode: str = "min"):
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.mode = mode
        self.best: Optional[float] = None
        self.stale = 0

    def step(self, metric: float) -> None:
        improved = (self.best is None
                    or (self.mode == "min" and metric < self.best)
                    or (self.mode == "max" and metric > self.best))
        if improved:
            self.best = metric
            self.stale = 0
            return
        self.stale += 1
        if self.stale > self.patience:
            new_lr = max(self.optimizer.get_lr() * self.factor, self.min_lr)
            self.optimizer.set_lr(new_lr)
            self.stale = 0


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training health).
    """
    return clip_grads([p.grad for p in params if p.grad is not None], max_norm)
