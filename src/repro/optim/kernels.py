"""Pure update kernels: optimizer steps and training bookkeeping as data.

The eager :class:`~repro.optim.optimizers.Adam` / ``SGD`` loops and the
early-stopping counter are side-effecting Python methods over object
attributes — invisible to the graph executor.  This module re-expresses
each of them as a *pure kernel*: a module-level function whose entire
state is the numpy arrays passed in (parameter storage, moment buffers,
0-d step counters).  The eager optimizers delegate to these kernels, so
eager numerics are unchanged bit for bit — and the whole-loop capture
path (:mod:`repro.autograd.graph.loop`) can record the very same kernel
calls as :class:`UpdateKernelSpec` entries inside a
:class:`~repro.autograd.graph.ir.LoopNode`, where they run once per batch
with zero per-batch trainer Python.  State lives in data, exactly like
the stacked trainer's ``active`` mask.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "UpdateKernelSpec",
    "FlatParam",
    "StepCounters",
    "FLAT_PACK_MAX_ELEMENTS",
    "adam_update",
    "sgd_update",
    "clip_grads",
    "clip_grads_stacked",
    "early_stop_update",
]

# Parameters larger than this stay unpacked: the per-batch gradient gather
# costs one memory pass over the parameter, which beats the per-call numpy
# dispatch it saves only while the array is small (the dispatch-bound
# regime whole-loop capture targets).
FLAT_PACK_MAX_ELEMENTS = 16384


class UpdateKernelSpec:
    """One captured post-batch parameter update inside a loop body.

    ``kernel(param.data, param.grad, *state, *hyper(group))`` must perform
    the exact in-place update the owning optimizer's eager ``step()`` would
    for this parameter.  ``state`` holds the loop-carried arrays (Adam
    moments, the 0-d step counter, SGD velocity); ``hyper`` reads the
    scalar hyperparameters out of the (mutable) param-group dict — re-read
    once per epoch replay, so between-epoch ``set_lr`` calls stay visible.
    """

    __slots__ = ("param", "kernel", "state", "hyper", "group", "label")

    def __init__(self, param, kernel: Callable, state: Tuple,
                 hyper: Callable[[dict], Tuple], group: dict, label: str):
        self.param = param
        self.kernel = kernel
        self.state = state
        self.hyper = hyper
        self.group = group
        self.label = label

    def __repr__(self) -> str:
        return f"UpdateKernelSpec({self.label}, state={len(self.state)})"


class FlatParam:
    """Contiguous stand-in for a pack of same-group parameters.

    A loop-carried epoch knows its update set is fixed, so same-group
    parameters can share one flat storage buffer: each member's ``.data``
    is rebound to a view of ``self.data``, and the pack then satisfies the
    ``UpdateKernelSpec`` contract — ``.data`` is the flat array, ``.grad``
    gathers the members' gradients (read fresh: replay may adopt a new
    gradient array per batch) into one scratch buffer.  The update kernels
    are elementwise over ``(data, grad, state)``, so one kernel call over
    the pack is bit-identical to one call per member.
    """

    __slots__ = ("data", "_scratch_grad", "_members", "_views", "_spans")

    def __init__(self, members: Sequence):
        sizes = [int(p.data.size) for p in members]
        total = sum(sizes)
        dtype = members[0].data.dtype
        flat = np.empty(total, dtype=dtype)
        self._scratch_grad = np.empty(total, dtype=dtype)
        self._members = list(members)
        self._views = []
        self._spans = []
        offset = 0
        for p, n in zip(members, sizes):
            flat[offset:offset + n] = p.data.ravel()
            view = flat[offset:offset + n].reshape(p.data.shape)
            p.data = view
            self._views.append(view)
            self._spans.append((offset, offset + n))
            offset += n
        self.data = flat

    @property
    def grad(self) -> np.ndarray:
        buf = self._scratch_grad
        for p, (start, end) in zip(self._members, self._spans):
            buf[start:end] = p.grad.ravel()
        return buf

    def resync(self) -> None:
        """Re-adopt members whose ``.data`` was rebound since packing.

        In-place mutation (eager steps, ``load_state_dict``) flows through
        the views automatically; only a rebind of a member's ``.data`` to a
        fresh array desyncs the pack.  Called once per epoch replay.
        """
        flat = self.data
        for p, view, (start, end) in zip(self._members, self._views,
                                         self._spans):
            if p.data is not view:
                flat[start:end] = np.asarray(p.data).ravel()
                p.data = view

    def __repr__(self) -> str:
        return f"FlatParam({len(self._members)} params, {self.data.size} elems)"


class StepCounters:
    """Duck-typed ``t`` for a flat pack: every member's 0-d counter in lockstep.

    :func:`adam_update` only does ``t += 1`` and ``int(t)``; this advances
    each member's per-parameter counter (so eager ``step()`` interop stays
    exact) while reading the shared step count from the first.  Packing
    requires the members' counts to be equal, and replay keeps them so.
    """

    __slots__ = ("arrays",)

    def __init__(self, arrays: Sequence[np.ndarray]):
        self.arrays = list(arrays)

    def __iadd__(self, other: int) -> "StepCounters":
        for a in self.arrays:
            a += other
        return self

    def __int__(self) -> int:
        return int(self.arrays[0])

    def __repr__(self) -> str:
        return f"StepCounters({len(self.arrays)} at t={int(self)})"


def adam_update(data: np.ndarray, grad: np.ndarray,
                m: np.ndarray, v: np.ndarray, t: np.ndarray,
                lr: float, beta1: float, beta2: float, eps: float,
                weight_decay: float, decoupled: bool) -> None:
    """One Adam step on one parameter, all state passed in.

    ``t`` is the 0-d int64 step counter, incremented in place; the bias
    corrections use it as a Python int so ``beta ** t`` stays a float and
    never promotes float32 parameters (NEP 50).  The op order replicates
    the historical eager loop exactly — bit-identical trajectories.
    """
    if weight_decay and not decoupled:
        grad = grad + weight_decay * data
    t += 1
    step = int(t)
    m *= beta1
    m += (1 - beta1) * grad
    v *= beta2
    v += (1 - beta2) * grad * grad
    m_hat = m / (1 - beta1 ** step)
    v_hat = v / (1 - beta2 ** step)
    update = m_hat / (np.sqrt(v_hat) + eps)
    if weight_decay and decoupled:
        update = update + weight_decay * data
    data -= lr * update


def sgd_update(data: np.ndarray, grad: np.ndarray,
               velocity: Optional[np.ndarray],
               lr: float, momentum: float, weight_decay: float,
               nesterov: bool) -> None:
    """One SGD step on one parameter (``velocity`` is None when momentum=0)."""
    if weight_decay:
        grad = grad + weight_decay * data
    if momentum:
        velocity *= momentum
        velocity += grad
        grad = grad + momentum * velocity if nesterov else velocity
    data -= lr * grad


def clip_grads(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Global-L2 gradient clipping over bare arrays (in place).

    The array-level core of :func:`repro.optim.clip_grad_norm`: same
    accumulation order, same scale condition, so clipping inside a
    replayed loop body is bit-identical to the eager per-batch call.
    """
    total = 0.0
    for g in grads:
        total += float(np.sum(g * g))
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


def clip_grads_stacked(grads: Sequence[np.ndarray], max_norm: float
                       ) -> np.ndarray:
    """Per-model gradient clipping over stacked ``(M, ...)`` arrays.

    Array-level core of :func:`repro.core.clip_grad_norm_stacked`: each
    model slice is clipped on its own global norm, matching M independent
    :func:`clip_grads` calls.
    """
    if not grads:
        return np.zeros(0)
    m = grads[0].shape[0]
    total = np.zeros(m)
    for g in grads:
        total += (g * g).reshape(m, -1).sum(axis=1)
    norms = np.sqrt(total)
    scales = np.where(norms > max_norm, max_norm / np.maximum(norms, 1e-300),
                      1.0)
    if np.any(scales < 1.0):
        for g in grads:
            g *= scales.reshape((m,) + (1,) * (g.ndim - 1))
    return norms


def early_stop_update(best: np.ndarray, stale: np.ndarray, stop: np.ndarray,
                      seen: np.ndarray, metric: float, min_delta: float,
                      patience: int, sign: float) -> bool:
    """Patience-based convergence bookkeeping on 0-d state arrays.

    ``sign`` is ``+1.0`` for ``mode="min"`` and ``-1.0`` for ``"max"``;
    multiplying by it folds both modes into one exact comparison
    (negation is lossless).  Returns True when ``metric`` improved the
    best.  All counters are loop-carried data: ``best`` (float64),
    ``stale`` (int64), ``stop`` / ``seen`` (bool) — the state a captured
    training schedule carries across epochs.
    """
    improved = (not bool(seen)
                or sign * metric < sign * float(best) - min_delta)
    if improved:
        best[...] = metric
        stale[...] = 0
        seen[...] = True
    else:
        stale += 1
        if int(stale) >= patience:
            stop[...] = True
    return improved
