"""Gradient-descent optimizers: SGD (momentum/Nesterov) and Adam.

The paper trains both the network weights ``W`` and the architecture
parameters ``γ`` with standard first-order optimizers (Algorithm 1 lines
2/5/8).  Parameter groups let the PIT trainer give ``γ`` its own learning
rate and exclude it from weight decay, as is standard for DMaskingNAS.

The numeric core of each ``step()`` lives in :mod:`repro.optim.kernels`
as pure functions over the arrays they touch; the classes here only
manage lazy state allocation and group bookkeeping.  That split is what
lets whole-loop capture replay an optimizer step inside a compiled epoch
(:meth:`Optimizer.capture_updates`) with bit-identical results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..nn.module import Parameter
from .kernels import (FLAT_PACK_MAX_ELEMENTS, FlatParam, StepCounters,
                      UpdateKernelSpec, adam_update, sgd_update)

__all__ = ["Optimizer", "SGD", "Adam"]

ParamsLike = Union[Sequence[Parameter], Sequence[Dict]]


class Optimizer:
    """Base optimizer with parameter groups and per-group hyperparameters."""

    def __init__(self, params: ParamsLike, defaults: Dict):
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            for group in params:
                self.add_param_group(group)
        else:
            self.add_param_group({"params": params})
        self._flat_packs: Dict[Tuple, List[UpdateKernelSpec]] = {}

    def add_param_group(self, group: Dict) -> None:
        group = dict(group)
        group["params"] = list(group["params"])
        for key, value in self.defaults.items():
            group.setdefault(key, value)
        self.param_groups.append(group)

    @property
    def params(self) -> List[Parameter]:
        return [p for group in self.param_groups for p in group["params"]]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Set the learning rate of every group (used by schedulers)."""
        for group in self.param_groups:
            group["lr"] = lr

    def get_lr(self) -> float:
        return self.param_groups[0]["lr"]

    # -- whole-loop capture support ------------------------------------

    def ensure_state(self, p: Parameter, group: Dict) -> Tuple:
        """Allocate (if needed) and return this parameter's state arrays."""
        raise NotImplementedError

    def _hyper(self, group: Dict) -> Tuple:
        """Read the kernel hyperparameters out of a (mutable) group dict."""
        raise NotImplementedError

    def _kernel(self):
        raise NotImplementedError

    def capture_updates(self, wanted: Set[int]) -> List[UpdateKernelSpec]:
        """Describe one ``step()`` as per-parameter kernel specs.

        ``wanted`` is the set of ``id(param)`` that will carry gradients in
        the captured loop body (the program's grad leaves); parameters
        outside it are skipped exactly as ``step()`` skips ``grad is None``.
        State is allocated eagerly here so the loop carries the same arrays
        the eager path would lazily create — state as data.
        """
        specs: List[UpdateKernelSpec] = []
        kernel = self._kernel()
        for gi, group in enumerate(self.param_groups):
            for p in group["params"]:
                if id(p) not in wanted:
                    continue
                state = self.ensure_state(p, group)
                specs.append(UpdateKernelSpec(
                    param=p, kernel=kernel, state=state, hyper=self._hyper,
                    group=group,
                    label=f"{type(self).__name__.lower()}[g{gi}]"))
        return specs

    def _pack_state(self, specs: List[UpdateKernelSpec]) -> Optional[Tuple]:
        """Flat state tuple for a pack of same-group specs, or None to refuse.

        A subclass that opts in rebinds its per-parameter state arrays to
        views of freshly packed flat buffers (so later eager ``step()``
        calls keep writing the carried storage) and returns the pack's
        kernel state.  Must not mutate anything when returning None.
        """
        return None

    def flatten_updates(self, specs: List[UpdateKernelSpec]
                        ) -> List[UpdateKernelSpec]:
        """Coalesce same-group specs into flat-packed specs.

        The loop-carried epoch is the one caller that knows its update set
        is fixed for a whole phase, so it can afford to repack parameter
        storage: small same-group parameters share one contiguous
        data/state buffer (:class:`~repro.optim.kernels.FlatParam`) and
        the whole group updates in **one** kernel call per batch instead
        of one per parameter.  The kernels are elementwise, so the packed
        trajectory is bit-identical; parameters above
        ``FLAT_PACK_MAX_ELEMENTS`` stay unpacked (the per-batch gradient
        gather would cost more than the dispatch it saves).  Idempotent
        per update set: repacking already-packed storage would strand the
        previous pack's specs, so results are cached.
        """
        key = tuple((id(s.param), id(s.group)) for s in specs)
        cached = self._flat_packs.get(key)
        if cached is not None:
            return cached
        buckets: Dict[Tuple, List[UpdateKernelSpec]] = {}
        rest: List[UpdateKernelSpec] = []
        for s in specs:
            if s.param.data.size <= FLAT_PACK_MAX_ELEMENTS:
                buckets.setdefault((id(s.group), s.param.data.dtype),
                                   []).append(s)
            else:
                rest.append(s)
        out: List[UpdateKernelSpec] = []
        for bucket in buckets.values():
            state = self._pack_state(bucket) if len(bucket) > 1 else None
            if state is None:
                rest.extend(bucket)
                continue
            flat = FlatParam([s.param for s in bucket])
            out.append(UpdateKernelSpec(
                param=flat, kernel=bucket[0].kernel, state=state,
                hyper=self._hyper, group=bucket[0].group,
                label=f"{bucket[0].label}xflat{len(bucket)}"))
        out.extend(rest)
        self._flat_packs[key] = out
        return out


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, Nesterov and weight decay."""

    def __init__(self, params: ParamsLike, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        if nesterov and momentum <= 0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        super().__init__(params, dict(lr=lr, momentum=momentum,
                                      weight_decay=weight_decay, nesterov=nesterov))
        self._velocity: Dict[int, np.ndarray] = {}

    def ensure_state(self, p: Parameter, group: Dict) -> Tuple:
        if not group["momentum"]:
            return (None,)
        buf = self._velocity.get(id(p))
        if buf is None:
            buf = np.zeros_like(p.data)
            self._velocity[id(p)] = buf
        return (buf,)

    def _hyper(self, group: Dict) -> Tuple:
        return (group["lr"], group["momentum"], group["weight_decay"],
                group["nesterov"])

    def _kernel(self):
        return sgd_update

    def _pack_state(self, specs: List[UpdateKernelSpec]) -> Optional[Tuple]:
        group = specs[0].group
        if not group["momentum"]:
            return (None,)
        members = [s.param for s in specs]
        total = sum(int(p.data.size) for p in members)
        flat_vel = np.empty(total, dtype=members[0].data.dtype)
        offset = 0
        for p in members:
            key, n = id(p), int(p.data.size)
            flat_vel[offset:offset + n] = self._velocity[key].ravel()
            self._velocity[key] = \
                flat_vel[offset:offset + n].reshape(p.data.shape)
            offset += n
        return (flat_vel,)

    def step(self) -> None:
        for group in self.param_groups:
            hyper = self._hyper(group)
            for p in group["params"]:
                if p.grad is None:
                    continue
                sgd_update(p.data, p.grad, *self.ensure_state(p, group), *hyper)


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW-style)."""

    def __init__(self, params: ParamsLike, lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False):
        super().__init__(params, dict(lr=lr, betas=betas, eps=eps,
                                      weight_decay=weight_decay, decoupled=decoupled))
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        # 0-d int64 arrays (not Python ints) so the step count is
        # loop-carried data a replayed epoch can increment in place.
        self._t: Dict[int, np.ndarray] = {}

    def ensure_state(self, p: Parameter, group: Dict) -> Tuple:
        key = id(p)
        if key not in self._m:
            self._m[key] = np.zeros_like(p.data)
            self._v[key] = np.zeros_like(p.data)
            self._t[key] = np.zeros((), dtype=np.int64)
        return (self._m[key], self._v[key], self._t[key])

    def _hyper(self, group: Dict) -> Tuple:
        beta1, beta2 = group["betas"]
        return (group["lr"], beta1, beta2, group["eps"],
                group["weight_decay"], group["decoupled"])

    def _kernel(self):
        return adam_update

    def _pack_state(self, specs: List[UpdateKernelSpec]) -> Optional[Tuple]:
        members = [s.param for s in specs]
        counters = [self._t[id(p)] for p in members]
        if any(int(t) != int(counters[0]) for t in counters[1:]):
            # Unequal step counts (some member was stepped without the
            # others): one shared bias correction would be wrong.
            return None
        total = sum(int(p.data.size) for p in members)
        dtype = members[0].data.dtype
        flat_m = np.empty(total, dtype=dtype)
        flat_v = np.empty(total, dtype=dtype)
        offset = 0
        for p in members:
            key, n = id(p), int(p.data.size)
            flat_m[offset:offset + n] = self._m[key].ravel()
            flat_v[offset:offset + n] = self._v[key].ravel()
            self._m[key] = flat_m[offset:offset + n].reshape(p.data.shape)
            self._v[key] = flat_v[offset:offset + n].reshape(p.data.shape)
            offset += n
        return (flat_m, flat_v, StepCounters(counters))

    def step(self) -> None:
        for group in self.param_groups:
            hyper = self._hyper(group)
            for p in group["params"]:
                if p.grad is None:
                    continue
                adam_update(p.data, p.grad, *self.ensure_state(p, group), *hyper)
