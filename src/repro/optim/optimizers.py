"""Gradient-descent optimizers: SGD (momentum/Nesterov) and Adam.

The paper trains both the network weights ``W`` and the architecture
parameters ``γ`` with standard first-order optimizers (Algorithm 1 lines
2/5/8).  Parameter groups let the PIT trainer give ``γ`` its own learning
rate and exclude it from weight decay, as is standard for DMaskingNAS.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]

ParamsLike = Union[Sequence[Parameter], Sequence[Dict]]


class Optimizer:
    """Base optimizer with parameter groups and per-group hyperparameters."""

    def __init__(self, params: ParamsLike, defaults: Dict):
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            for group in params:
                self.add_param_group(group)
        else:
            self.add_param_group({"params": params})

    def add_param_group(self, group: Dict) -> None:
        group = dict(group)
        group["params"] = list(group["params"])
        for key, value in self.defaults.items():
            group.setdefault(key, value)
        self.param_groups.append(group)

    @property
    def params(self) -> List[Parameter]:
        return [p for group in self.param_groups for p in group["params"]]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Set the learning rate of every group (used by schedulers)."""
        for group in self.param_groups:
            group["lr"] = lr

    def get_lr(self) -> float:
        return self.param_groups[0]["lr"]


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, Nesterov and weight decay."""

    def __init__(self, params: ParamsLike, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        if nesterov and momentum <= 0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        super().__init__(params, dict(lr=lr, momentum=momentum,
                                      weight_decay=weight_decay, nesterov=nesterov))
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                if weight_decay:
                    grad = grad + weight_decay * p.data
                if momentum:
                    buf = self._velocity.get(id(p))
                    if buf is None:
                        buf = np.zeros_like(p.data)
                        self._velocity[id(p)] = buf
                    buf *= momentum
                    buf += grad
                    grad = grad + momentum * buf if nesterov else buf
                p.data -= lr * grad


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW-style)."""

    def __init__(self, params: ParamsLike, lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False):
        super().__init__(params, dict(lr=lr, betas=betas, eps=eps,
                                      weight_decay=weight_decay, decoupled=decoupled))
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            decoupled = group["decoupled"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                if weight_decay and not decoupled:
                    grad = grad + weight_decay * p.data
                key = id(p)
                if key not in self._m:
                    self._m[key] = np.zeros_like(p.data)
                    self._v[key] = np.zeros_like(p.data)
                    self._t[key] = 0
                self._t[key] += 1
                t = self._t[key]
                m, v = self._m[key], self._v[key]
                m *= beta1
                m += (1 - beta1) * grad
                v *= beta2
                v += (1 - beta2) * grad * grad
                m_hat = m / (1 - beta1 ** t)
                v_hat = v / (1 - beta2 ** t)
                update = m_hat / (np.sqrt(v_hat) + eps)
                if weight_decay and decoupled:
                    update = update + weight_decay * p.data
                p.data -= lr * update
