"""Deterministic fault injection for the reliability test suite.

Production code calls tiny hook functions at well-defined *fault sites*
(grid-point training start, trainer epoch loss, cache flush, server tick).
Each hook consults the ``REPRO_FAULTS`` environment variable and fires at
most a bounded number of times, so a test can script an exact failure —
"kill the worker training grid point 3", "make point 5's loss go NaN
twice" — and replay it bit-identically on every run.  With the variable
unset every hook is a cheap no-op, so the sites cost nothing in
production sweeps.

Spec grammar (comma-separated fault tokens)::

    REPRO_FAULTS="worker_crash@point=3,nan_loss@point=5&times=2,cache_corrupt"

    token  := kind [ "@" param "=" value ( "&" param "=" value )* ]
    kind   := worker_crash | nan_loss | cache_corrupt | conn_drop
            | hang | interrupt | transient | crash | ckpt_corrupt

Common params: ``point=N`` restricts a fault to the grid point(s) named by
the enclosing :func:`point_scope`; ``times=N`` fires the fault N times
(default 1) before it goes quiet; ``seconds=X`` is the sleep length of
``hang``; ``tick=N`` matches the serving tick counter for ``conn_drop``;
``epoch=K`` matches the trainer's global epoch counter for ``crash``.

Firing is *once-per-slot*: each fault token owns ``times`` slots, and a
hook claims the next free slot atomically before acting.  In-process the
counter is a lock-guarded dict; across processes (process-pool sweeps,
where ``fork`` duplicates in-memory counters into every worker) set
``REPRO_FAULTS_STATE`` to a shared directory and slots become
``O_CREAT|O_EXCL`` claim files — exactly one process wins each slot, so
"crash the worker once" means once per sweep, not once per worker.

Fault kinds and their sites:

* ``worker_crash`` — at grid-point training start: in a pool worker
  process the process dies abruptly (``os._exit``), producing the real
  ``BrokenProcessPool`` cascade; in-process (thread pools, sequential)
  it raises :class:`InjectedWorkerCrash`, a retryable
  :class:`TransientFault`.
* ``nan_loss`` — poisons the trainer's epoch loss to NaN so the real
  non-finite guard raises :class:`repro.core.DivergedError`.
* ``cache_corrupt`` — truncates the DSE cache file right after a flush,
  exercising the corrupt-cache quarantine path on the next load.
* ``conn_drop`` — aborts a live serving connection at tick ``tick``.
* ``hang`` — sleeps ``seconds`` (default 30) at grid-point training
  start, for per-point timeout tests.
* ``interrupt`` — raises ``KeyboardInterrupt`` at grid-point training
  start, for interrupted-sweep resume tests.
* ``transient`` — raises a plain :class:`TransientFault` at grid-point
  training start, for retry/backoff tests.
* ``crash`` — at a trainer epoch boundary, *after* the checkpoint for
  that epoch is written: ``crash@epoch=K`` kills the run right after
  global epoch ``K`` completes (abrupt ``os._exit`` in pool workers,
  retryable :class:`InjectedWorkerCrash` in-process), so resume-from-
  checkpoint tests can kill training at any exact epoch.
* ``ckpt_corrupt`` — truncates a trainer checkpoint file right after it
  is written, exercising the checkpoint checksum/quarantine path on the
  next resume.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ENV_FAULTS", "ENV_STATE", "KNOWN_KINDS",
    "Fault", "FaultError", "TransientFault", "InjectedWorkerCrash",
    "parse_faults", "active_faults", "fire", "reset",
    "point_scope", "current_points",
    "inject_point_faults", "poison_loss", "corrupt_cache_file",
    "drop_connection", "crash_at_epoch", "corrupt_checkpoint_file",
]

#: fault spec environment variable
ENV_FAULTS = "REPRO_FAULTS"
#: shared state directory for cross-process once-only firing
ENV_STATE = "REPRO_FAULTS_STATE"

KNOWN_KINDS = frozenset({
    "worker_crash", "nan_loss", "cache_corrupt", "conn_drop",
    "hang", "interrupt", "transient", "crash", "ckpt_corrupt",
})

#: exit code of an injected worker death (visible in pool diagnostics)
CRASH_EXIT_CODE = 87


class FaultError(RuntimeError):
    """Base class of every injected failure."""


class TransientFault(FaultError):
    """An injected failure the engine is allowed to retry."""


class InjectedWorkerCrash(TransientFault):
    """In-process stand-in for a worker death (thread pools cannot die)."""


@dataclass(frozen=True)
class Fault:
    """One parsed fault token."""
    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    times: int = 1
    token: str = ""

    def param(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default


def _coerce(raw: str):
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def parse_faults(spec: str) -> List[Fault]:
    """Parse a ``REPRO_FAULTS`` spec string; raises on unknown kinds so a
    typo fails the test loudly instead of silently injecting nothing."""
    faults: List[Fault] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, rest = token.partition("@")
        kind = kind.strip()
        if kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {ENV_FAULTS} "
                f"(known: {', '.join(sorted(KNOWN_KINDS))})")
        params: List[Tuple[str, object]] = []
        times = 1
        if rest:
            for pair in rest.split("&"):
                name, sep, raw = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed fault param {pair!r} in token {token!r} "
                        "(expected name=value)")
                value = _coerce(raw.strip())
                if name.strip() == "times":
                    times = int(value)
                else:
                    params.append((name.strip(), value))
        faults.append(Fault(kind=kind, params=tuple(params), times=times,
                            token=token))
    return faults


# one parse per distinct spec string; specs are tiny and stable per test
_PARSE_CACHE: Dict[str, List[Fault]] = {}


def active_faults() -> List[Fault]:
    spec = os.environ.get(ENV_FAULTS, "").strip()
    if not spec:
        return []
    cached = _PARSE_CACHE.get(spec)
    if cached is None:
        cached = _PARSE_CACHE[spec] = parse_faults(spec)
    return cached


# ----------------------------------------------------------------------
# Once-per-slot firing counters
# ----------------------------------------------------------------------

_counter_lock = threading.Lock()
_counters: Dict[str, int] = {}


def reset() -> None:
    """Forget in-process firing history (tests call this between runs).

    Cross-process history lives in the ``REPRO_FAULTS_STATE`` directory;
    tests own that directory (tmp_path) and recreate it per scenario.
    """
    with _counter_lock:
        _counters.clear()


def _claim(fault: Fault) -> bool:
    """Atomically claim the next free firing slot; False when exhausted."""
    state_dir = os.environ.get(ENV_STATE, "").strip()
    if state_dir:
        stem = re.sub(r"[^A-Za-z0-9_.=-]", "_", fault.token)
        for slot in range(fault.times):
            try:
                fd = os.open(os.path.join(state_dir, f"{stem}.{slot}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # state dir vanished: stop firing, not the run
            os.close(fd)
            return True
        return False
    with _counter_lock:
        used = _counters.get(fault.token, 0)
        if used >= fault.times:
            return False
        _counters[fault.token] = used + 1
        return True


# ----------------------------------------------------------------------
# Point scope + matching
# ----------------------------------------------------------------------

_SCOPE = threading.local()


@contextlib.contextmanager
def point_scope(indices: Iterable[int]):
    """Name the grid point(s) the current thread is training, so
    ``@point=N`` faults know whether they apply."""
    previous = getattr(_SCOPE, "points", None)
    _SCOPE.points = tuple(int(i) for i in indices)
    try:
        yield
    finally:
        _SCOPE.points = previous


def current_points() -> Optional[Tuple[int, ...]]:
    return getattr(_SCOPE, "points", None)


def _matches(fault: Fault, ctx: Dict[str, object]) -> bool:
    for name, wanted in fault.params:
        if name == "seconds":
            continue  # behavior param, not a match condition
        if name == "point":
            points = ctx.get("point")
            if points is None:
                points = current_points()
            elif not isinstance(points, (tuple, list, set, frozenset)):
                points = (points,)
            if points is None or wanted not in tuple(points):
                return False
        else:
            if name not in ctx or ctx[name] != wanted:
                return False
    return True


def fire(kind: str, **ctx) -> Optional[Fault]:
    """Claim-and-return a matching armed fault, or None.

    The fast path — no ``REPRO_FAULTS`` in the environment — is one dict
    lookup, so fault sites are safe on hot paths (per-epoch, per-tick).
    """
    if not os.environ.get(ENV_FAULTS, "").strip():
        return None
    for fault in active_faults():
        if fault.kind != kind:
            continue
        if not _matches(fault, ctx):
            continue
        if _claim(fault):
            return fault
    return None


# ----------------------------------------------------------------------
# Site helpers (called from production code)
# ----------------------------------------------------------------------

def inject_point_faults() -> None:
    """Grid-point training start: hang / interrupt / crash / transient."""
    fault = fire("hang")
    if fault is not None:
        time.sleep(float(fault.param("seconds", 30.0)))
    if fire("interrupt") is not None:
        raise KeyboardInterrupt("injected fault: interrupt")
    if fire("worker_crash") is not None:
        if multiprocessing.parent_process() is not None:
            # A real abrupt worker death: no cleanup, no exception — the
            # parent sees the BrokenProcessPool cascade, like an OOM kill.
            os._exit(CRASH_EXIT_CODE)
        raise InjectedWorkerCrash(
            "injected fault: worker_crash (in-process)")
    if fire("transient") is not None:
        raise TransientFault("injected fault: transient")


def poison_loss(value: float) -> float:
    """Trainer epoch-loss site: NaN when a ``nan_loss`` fault is armed."""
    if fire("nan_loss") is not None:
        return float("nan")
    return value


def corrupt_cache_file(path: str) -> bool:
    """Cache-flush site: truncate the just-written file mid-JSON."""
    if fire("cache_corrupt") is None:
        return False
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:
        pass
    return True


def drop_connection(tick: int) -> bool:
    """Serving tick site: abort one live client connection at ``tick``."""
    return fire("conn_drop", tick=int(tick)) is not None


def crash_at_epoch(epoch: int) -> None:
    """Trainer epoch-boundary site: die right after global epoch ``epoch``.

    Called *after* the epoch's checkpoint (if any) is written, so a
    ``crash@epoch=K`` fault simulates preemption at the worst moment that
    still has durable state: the checkpoint exists, the process is gone.
    Pool workers die abruptly (no cleanup — the parent sees the real
    ``BrokenProcessPool`` cascade); in-process the retryable
    :class:`InjectedWorkerCrash` is raised instead.
    """
    if fire("crash", epoch=int(epoch)) is None:
        return
    if multiprocessing.parent_process() is not None:
        os._exit(CRASH_EXIT_CODE)
    raise InjectedWorkerCrash(f"injected fault: crash at epoch {epoch}")


def corrupt_checkpoint_file(path) -> bool:
    """Checkpoint-save site: truncate the just-written archive mid-zip."""
    if fire("ckpt_corrupt") is None:
        return False
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:
        pass
    return True
