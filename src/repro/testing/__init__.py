"""Test-support machinery that ships with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness:
env-driven injectors (``REPRO_FAULTS``) that kill pool workers, poison
trainer losses, corrupt cache bytes and drop serving connections at
reproducible trigger points, so the engine's recovery paths are exercised
by tier-1 tests rather than believed.
"""

from . import faults
from .faults import (
    ENV_FAULTS,
    ENV_STATE,
    Fault,
    FaultError,
    InjectedWorkerCrash,
    TransientFault,
    parse_faults,
)

__all__ = [
    "faults",
    "ENV_FAULTS",
    "ENV_STATE",
    "Fault",
    "FaultError",
    "InjectedWorkerCrash",
    "TransientFault",
    "parse_faults",
]
