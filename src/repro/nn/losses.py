"""Loss functions used in the paper's two benchmarks.

* Nottingham (polyphonic music): per-frame multi-label negative
  log-likelihood over the 88 piano keys, i.e. a sum of Bernoulli NLLs —
  the "NLL" metric of paper Fig. 4 / Table III (following Bai et al. [6]).
* PPG-Dalia (heart-rate regression): MAE in beats-per-minute, with an MSE /
  Huber option for smoother training (the paper reports MAE).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, log_softmax, mark_capture_unsafe
from .module import Module

__all__ = [
    "bce_with_logits",
    "polyphonic_nll",
    "mae_loss",
    "mse_loss",
    "huber_loss",
    "cross_entropy",
    "BCEWithLogits",
    "PolyphonicNLL",
    "MAELoss",
    "MSELoss",
    "HuberLoss",
    "CrossEntropy",
]


def bce_with_logits(logits: Tensor, targets: Tensor) -> Tensor:
    """Numerically-stable binary cross entropy from logits (mean over all).

    Uses the log-sum-exp form ``max(x,0) - x*y + log(1 + exp(-|x|))`` so the
    loss never overflows for large logits.
    """
    x = logits
    y = targets if isinstance(targets, Tensor) else Tensor(targets)
    relu_x = x.relu()
    abs_x = x.abs()
    softplus = ((-abs_x).exp() + 1.0).log()
    return (relu_x - x * y + softplus).mean()


def polyphonic_nll(logits: Tensor, targets: Tensor) -> Tensor:
    """Frame-level NLL for 88-key piano rolls (paper's Nottingham metric).

    ``logits`` and ``targets`` have shape ``(N, 88, T)``.  The NLL of a frame
    is the sum over the 88 independent Bernoulli keys; the reported loss is
    the mean over frames (batch x time), matching Bai et al.'s evaluation.
    """
    if logits.shape != targets.shape:
        raise ValueError(f"shape mismatch {logits.shape} vs {targets.shape}")
    x = logits
    y = targets if isinstance(targets, Tensor) else Tensor(targets)
    relu_x = x.relu()
    abs_x = x.abs()
    softplus = ((-abs_x).exp() + 1.0).log()
    per_element = relu_x - x * y + softplus         # (N, 88, T)
    per_frame = per_element.sum(axis=1)             # (N, T): sum over keys
    return per_frame.mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error (paper's PPG-Dalia metric, in BPM)."""
    t = target if isinstance(target, Tensor) else Tensor(target)
    return (pred - t).abs().mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - t
    return (diff * diff).mean()


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Used as a smoother training surrogate for the MAE objective on the
    heart-rate task (evaluation still reports plain MAE).
    """
    t = target if isinstance(target, Tensor) else Tensor(target)
    diff = (pred - t).abs()
    quadratic = 0.5 * diff * diff
    linear = delta * diff - 0.5 * delta * delta
    from ..autograd import where
    # The tensor comparison keeps the branch condition inside the op graph,
    # so a graph-captured step re-evaluates it on every batch.
    return where(diff <= delta, quadratic, linear).mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Multi-class cross entropy from ``(N, C)`` logits and int labels."""
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got {logits.shape}")
    labels = np.asarray(labels)
    # The label-indexed gather below is data-dependent; a static replay
    # would keep selecting the trace batch's labels.
    mark_capture_unsafe("cross_entropy gathers by per-batch labels")
    log_probs = log_softmax(logits, axis=1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


class BCEWithLogits(Module):
    def forward(self, logits: Tensor, targets: Tensor) -> Tensor:
        return bce_with_logits(logits, targets)


class PolyphonicNLL(Module):
    def forward(self, logits: Tensor, targets: Tensor) -> Tensor:
        return polyphonic_nll(logits, targets)


class MAELoss(Module):
    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return mae_loss(pred, target)


class MSELoss(Module):
    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return mse_loss(pred, target)


class HuberLoss(Module):
    def __init__(self, delta: float = 1.0):
        super().__init__()
        self.delta = delta

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return huber_loss(pred, target, delta=self.delta)


class CrossEntropy(Module):
    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return cross_entropy(logits, labels)
