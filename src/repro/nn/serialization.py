"""Model checkpointing: save/load state dicts to ``.npz`` archives.

The library's models are plain numpy underneath, so a compressed npz of
the ``state_dict`` is a complete, dependency-free checkpoint.  Metadata
(arbitrary JSON-serializable dict) travels alongside, which the DSE driver
uses to record the λ / warmup / dilations that produced a model.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model", "save_state", "load_state"]

_META_KEY = "__repro_metadata__"


def save_state(state: Dict[str, np.ndarray], path: Union[str, Path],
               metadata: Optional[dict] = None) -> None:
    """Write a state dict (+ optional metadata) to a compressed npz."""
    path = Path(path)
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"state may not contain the reserved key {_META_KEY!r}")
    if metadata is not None:
        payload[_META_KEY] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)


def load_state(path: Union[str, Path]) -> Tuple[Dict[str, np.ndarray], Optional[dict]]:
    """Read back a state dict and its metadata (None if absent)."""
    with np.load(Path(path)) as archive:
        state = {}
        metadata = None
        for key in archive.files:
            if key == _META_KEY:
                metadata = json.loads(bytes(archive[key]).decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, metadata


def save_model(model: Module, path: Union[str, Path],
               metadata: Optional[dict] = None) -> None:
    """Checkpoint a model's parameters and buffers."""
    save_state(model.state_dict(), path, metadata=metadata)


def load_model(model: Module, path: Union[str, Path]) -> Optional[dict]:
    """Load a checkpoint into an already-constructed model.

    The model must have the same architecture (strict key/shape matching,
    enforced by :meth:`Module.load_state_dict`).  Returns the metadata.
    """
    state, metadata = load_state(path)
    model.load_state_dict(state)
    return metadata
