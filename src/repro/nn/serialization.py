"""Model checkpointing: save/load state dicts to ``.npz`` archives.

The library's models are plain numpy underneath, so a compressed npz of
the ``state_dict`` is a complete, dependency-free checkpoint.  Metadata
(arbitrary JSON-serializable dict) travels alongside, which the DSE driver
uses to record the λ / warmup / dilations that produced a model.

Writes are torn-write-proof: the archive is assembled in a tempfile in the
target directory and moved into place with ``os.replace`` (the same flush
discipline as :class:`repro.evaluation.DSECache`), so a crash mid-write
can never leave a half-written file under the final name.  Reads raise a
typed :class:`CheckpointError` on truncated/corrupt archives instead of a
raw ``zipfile.BadZipFile``; callers with a recovery story (the trainer
checkpoint layer) can additionally ask for the corrupt file to be
quarantined to ``<path>.corrupt`` for post-mortems.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model", "save_state", "load_state",
           "CheckpointError"]

_META_KEY = "__repro_metadata__"


class CheckpointError(RuntimeError):
    """A checkpoint archive could not be read (truncated, corrupt, or
    carrying unreadable metadata).

    Typed so callers can tell a damaged file — recoverable by retraining
    or by falling back to an older checkpoint — from programming errors.
    The original low-level exception (``zipfile.BadZipFile``, ``OSError``,
    ``json.JSONDecodeError``, …) rides along as ``__cause__``.
    """


def save_state(state: Dict[str, np.ndarray], path: Union[str, Path],
               metadata: Optional[dict] = None) -> None:
    """Atomically write a state dict (+ optional metadata) to a compressed npz.

    The payload is staged in a tempfile in the target directory and
    renamed over ``path``, so readers only ever see a complete archive.
    """
    path = Path(path)
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"state may not contain the reserved key {_META_KEY!r}")
    if metadata is not None:
        payload[_META_KEY] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_state(path: Union[str, Path], *, quarantine: bool = False
               ) -> Tuple[Dict[str, np.ndarray], Optional[dict]]:
    """Read back a state dict and its metadata (None if absent).

    A file that cannot be parsed — truncated by a crash mid-write, garbage
    bytes, unreadable embedded metadata — raises :class:`CheckpointError`.
    With ``quarantine=True`` the damaged file is first moved to
    ``<path>.corrupt`` (overwriting any previous quarantine) with a
    warning, so the broken state is preserved for post-mortems but can
    never be re-read as a live checkpoint.  A missing file stays a plain
    ``FileNotFoundError`` — absence is not corruption.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            state = {}
            metadata = None
            for key in archive.files:
                if key == _META_KEY:
                    metadata = json.loads(bytes(archive[key]).decode("utf-8"))
                else:
                    state[key] = archive[key]
        return state, metadata
    except FileNotFoundError:
        raise
    except Exception as exc:
        if quarantine:
            target = str(path) + ".corrupt"
            try:
                os.replace(path, target)
            except OSError:
                target = "<unmovable>"
            warnings.warn(
                f"checkpoint file {str(path)!r} is corrupt ({exc}); "
                f"quarantined to {target!r}", stacklevel=2)
        raise CheckpointError(
            f"cannot read checkpoint {str(path)!r}: {exc}") from exc


def save_model(model: Module, path: Union[str, Path],
               metadata: Optional[dict] = None) -> None:
    """Checkpoint a model's parameters and buffers."""
    save_state(model.state_dict(), path, metadata=metadata)


def load_model(model: Module, path: Union[str, Path]) -> Optional[dict]:
    """Load a checkpoint into an already-constructed model.

    The model must have the same architecture (strict key/shape matching,
    enforced by :meth:`Module.load_state_dict`).  Returns the metadata.
    Raises :class:`CheckpointError` when the archive is damaged.
    """
    state, metadata = load_state(path)
    model.load_state_dict(state)
    return metadata
