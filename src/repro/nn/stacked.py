"""Stacked-model execution: vmap-style batched training of M model clones.

The DSE sweep trains the *same* architecture once per (λ, warmup) grid
point; per-model work is dominated by tiny GEMMs and per-op Python
dispatch.  :class:`StackedModel` removes that overhead M-fold by cloning a
template network M times into parameters with a leading **model axis**
``(M, ...)`` and running all M clones through one op graph:

* activations carry the model axis too — ``(M, N, C, T)`` instead of
  ``(N, C, T)`` — so one dispatch covers the whole stack;
* convolutions run through :func:`repro.autograd.conv1d_causal_stacked`,
  whose backend kernels batch the M contractions into single einsum /
  GEMM / FFT calls;
* elementwise ops, pooling (via an M·N batch merge) and losses are
  shape-generic and need no new kernels;
* model slices never mix: slice ``m`` of every activation, gradient and
  optimizer update depends only on model ``m``'s parameters and data, so
  stacked training is mathematically M independent trainings in lockstep.

The transform walks the template's module tree and replaces each known
leaf layer with its stacked counterpart (registered via
:func:`register_stacked`); container modules keep their own ``forward``
code, which is shape-agnostic.  Unknown parameterized layers raise
:class:`StackingUnsupported` — callers (the DSE engine) then fall back to
sequential per-model training, which is always available.

Per-model bookkeeping (``slice_state`` / ``load_slice_state`` /
``sync_template``) lets a trainer snapshot, restore and export individual
models out of the stack — the machinery behind per-model early stopping
and cache-compatible :class:`repro.evaluation.DSEPoint` results.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Callable, Dict, List, Type

import numpy as np

from ..autograd import (
    Tensor,
    avg_pool1d,
    conv1d_causal_stacked,
    dropout_stacked,
    get_default_dtype,
    max_pool1d,
)
from .layers import (
    AvgPool1d,
    BatchNorm1d,
    CausalConv1d,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    Identity,
    Linear,
    MaxPool1d,
    ReLU,
    Sigmoid,
    Tanh,
)
from .module import Module, Parameter

__all__ = [
    "StackingUnsupported",
    "StackContext",
    "register_stacked",
    "stack_module",
    "stack_parameter",
    "StackedModel",
    "StackedLinear",
    "StackedCausalConv1d",
    "StackedBatchNorm1d",
    "StackedDropout",
]


class StackingUnsupported(RuntimeError):
    """The template contains a layer with no stacked counterpart.

    Raised *before* any training happens, so callers can fall back to the
    sequential per-model path (the DSE engine does exactly that).
    """


def stack_parameter(data: np.ndarray, m: int) -> np.ndarray:
    """Broadcast one model's parameter array to ``(M,) + shape`` (owned).

    Every clone starts from the identical template values — the same init
    each sequential grid point would get from a deterministic seed factory.
    """
    return np.broadcast_to(data, (m,) + data.shape).copy()


class StackContext:
    """Shared state threaded through one :func:`stack_module` walk.

    * ``m`` — stack width;
    * ``active`` — live per-model flags (1.0 = training, 0.0 = masked);
      owned here so every stacked layer and the trainer mutate *one* array;
    * per-RNG clone lists — a template whose layers share one generator
      (the usual seed-model construction) gets M clones of that generator,
      shared by all stacked layers of the same model slice, reproducing
      each sequential model's private stream exactly.
    """

    def __init__(self, m: int):
        if m < 1:
            raise ValueError("stack width must be >= 1")
        self.m = m
        self.active = np.ones(m, dtype=get_default_dtype())
        self._rng_clones: Dict[int, List[np.random.Generator]] = {}
        self._rng_refs: List[np.random.Generator] = []  # keep ids alive

    def clone_rng(self, rng: np.random.Generator) -> List[np.random.Generator]:
        """Per-model clones of ``rng`` (memoized by generator identity)."""
        clones = self._rng_clones.get(id(rng))
        if clones is None:
            clones = [copy.deepcopy(rng) for _ in range(self.m)]
            self._rng_clones[id(rng)] = clones
            self._rng_refs.append(rng)
        return clones


# Registered leaf transforms: exact type -> factory(template, ctx).
_STACK_FACTORIES: Dict[Type[Module], Callable] = {}

# Stateless activations are reused as-is: their ops are elementwise and
# shape-agnostic, so a fresh copy works on (M, N, ...) unchanged.
_PASSTHROUGH: tuple = (ReLU, Sigmoid, Tanh, Identity)


def register_stacked(*types: Type[Module]):
    """Register a stacked factory for one or more template layer types.

    The factory is called as ``factory(template, ctx)`` and must return a
    :class:`Module` whose parameters/buffers carry the template's names
    with a leading ``(M,)`` axis — the name alignment is what makes
    per-model state slicing work.  Matching is by *exact* type: a subclass
    with custom behaviour must register itself explicitly or it (safely)
    falls back to sequential training.
    """
    def decorator(factory):
        for cls in types:
            _STACK_FACTORIES[cls] = factory
        return factory
    return decorator


def stack_module(module: Module, ctx: StackContext) -> Module:
    """Recursively mirror ``module`` with stacked leaves (see module doc)."""
    factory = _STACK_FACTORIES.get(type(module))
    if factory is not None:
        return factory(module, ctx)
    if type(module) in _PASSTHROUGH:
        return type(module)()   # stateless; fresh instance, fresh registries
    # Container: keep its forward code, restack its children.  A container
    # with parameters or buffers of its own is a custom layer in disguise.
    if module._parameters or module._buffers:
        raise StackingUnsupported(
            f"no stacked counterpart registered for {type(module).__name__}")
    clone = copy.copy(module)
    object.__setattr__(clone, "_parameters", OrderedDict())
    object.__setattr__(clone, "_buffers", OrderedDict())
    object.__setattr__(clone, "_modules", OrderedDict())
    for name, child in module._modules.items():
        setattr(clone, name, stack_module(child, ctx))
    return clone


# ----------------------------------------------------------------------
# Stacked leaf layers
# ----------------------------------------------------------------------

class StackedLinear(Module):
    """M affine maps in one batched matmul: ``(M, N, in) -> (M, N, out)``."""

    def __init__(self, template: Linear, ctx: StackContext):
        super().__init__()
        self.in_features = template.in_features
        self.out_features = template.out_features
        self.weight = Parameter(stack_parameter(template.weight.data, ctx.m),
                                name="stacked.linear.weight")
        self.bias = (Parameter(stack_parameter(template.bias.data, ctx.m),
                               name="stacked.linear.bias")
                     if template.bias is not None else None)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose(0, 2, 1)
        if self.bias is not None:
            out = out + self.bias.reshape(self.bias.shape[0], 1,
                                          self.out_features)
        return out

    def __repr__(self) -> str:
        return (f"StackedLinear(M={self.weight.shape[0]}, "
                f"in={self.in_features}, out={self.out_features})")


@register_stacked(Linear)
def _stack_linear(template: Linear, ctx: StackContext) -> StackedLinear:
    return StackedLinear(template, ctx)


class StackedCausalConv1d(Module):
    """M causal convolutions in one stacked dispatch."""

    def __init__(self, template: CausalConv1d, ctx: StackContext):
        super().__init__()
        self.in_channels = template.in_channels
        self.out_channels = template.out_channels
        self.kernel_size = template.kernel_size
        self.dilation = template.dilation
        self.stride = template.stride
        self.backend = template.backend
        self.weight = Parameter(stack_parameter(template.weight.data, ctx.m),
                                name="stacked.conv.weight")
        self.bias = (Parameter(stack_parameter(template.bias.data, ctx.m),
                               name="stacked.conv.bias")
                     if template.bias is not None else None)

    def forward(self, x: Tensor) -> Tensor:
        return conv1d_causal_stacked(x, self.weight, self.bias,
                                     dilation=self.dilation,
                                     stride=self.stride, backend=self.backend)

    def __repr__(self) -> str:
        return (f"StackedCausalConv1d(M={self.weight.shape[0]}, "
                f"{self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, d={self.dilation}, s={self.stride})")


@register_stacked(CausalConv1d)
def _stack_conv(template: CausalConv1d, ctx: StackContext) -> StackedCausalConv1d:
    return StackedCausalConv1d(template, ctx)


class StackedBatchNorm1d(Module):
    """Per-model batch normalization with per-model running statistics.

    Normalizes slice ``m`` over its own batch/time axes, exactly as M
    independent :class:`BatchNorm1d` layers would; ``running_mean`` /
    ``running_var`` carry the model axis ``(M, C)`` so every clone tracks
    its own evaluation statistics.
    """

    def __init__(self, template: BatchNorm1d, ctx: StackContext):
        super().__init__()
        self.num_features = template.num_features
        self.eps = template.eps
        self.momentum = template.momentum
        self.weight = Parameter(stack_parameter(template.weight.data, ctx.m),
                                name="stacked.bn.weight")
        self.bias = Parameter(stack_parameter(template.bias.data, ctx.m),
                              name="stacked.bn.bias")
        self.register_buffer("running_mean",
                             stack_parameter(template.running_mean, ctx.m))
        self.register_buffer("running_var",
                             stack_parameter(template.running_var, ctx.m))

    def forward(self, x: Tensor) -> Tensor:
        from ..autograd import record_side_effect
        m = self.weight.shape[0]
        if x.ndim == 4:            # stacked (M, N, C, T)
            axes, shape = (1, 3), (m, 1, self.num_features, 1)
        elif x.ndim == 3:          # stacked (M, N, C)
            axes, shape = (1,), (m, 1, self.num_features)
        else:
            raise ValueError(
                f"StackedBatchNorm1d expects (M, N, C[, T]) input, got {x.shape}")

        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            record_side_effect((mean, var), self._update_running_stats)
            x_hat = (x - mean) / (var + self.eps).sqrt()
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
            x_hat = (x - mean) / (var + self.eps).sqrt()

        w = self.weight.reshape(shape)
        b = self.bias.reshape(shape)
        return x_hat * w + b

    def _update_running_stats(self, mean: np.ndarray, var: np.ndarray) -> None:
        m = self.weight.shape[0]
        self.update_buffer(
            "running_mean",
            (1 - self.momentum) * self.running_mean
            + self.momentum * mean.reshape(m, self.num_features))
        self.update_buffer(
            "running_var",
            (1 - self.momentum) * self.running_var
            + self.momentum * var.reshape(m, self.num_features))

    def __repr__(self) -> str:
        return (f"StackedBatchNorm1d(M={self.weight.shape[0]}, "
                f"{self.num_features})")


@register_stacked(BatchNorm1d)
def _stack_bn(template: BatchNorm1d, ctx: StackContext) -> StackedBatchNorm1d:
    return StackedBatchNorm1d(template, ctx)


class StackedDropout(Module):
    """Per-model dropout streams (see :func:`repro.autograd.dropout_stacked`).

    Each model slice draws from its own clone of the template's generator,
    so stacked and sequential trainings consume identical mask streams;
    the shared ``active`` array lets early-stopped models skip draws.
    """

    def __init__(self, template: Dropout, ctx: StackContext):
        super().__init__()
        self.p = template.p
        self.rngs = ctx.clone_rng(template.rng)
        self.active = ctx.active

    def forward(self, x: Tensor) -> Tensor:
        return dropout_stacked(x, self.p, self.training, self.rngs,
                               active=self.active)

    def __repr__(self) -> str:
        return f"StackedDropout(M={len(self.rngs)}, p={self.p})"


@register_stacked(Dropout)
def _stack_dropout(template: Dropout, ctx: StackContext) -> StackedDropout:
    return StackedDropout(template, ctx)


class _StackedPool(Module):
    """Pooling over stacked input by merging the (M, N) axes.

    Pooling has no parameters and acts per sample, so running it on the
    merged ``(M·N, C, T)`` batch is elementwise-identical to M separate
    calls — one dispatch instead of M.
    """

    def __init__(self, kind: str, kernel_size: int, stride: int):
        super().__init__()
        self.kind = kind
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        m, n, c, t = x.shape
        pool = avg_pool1d if self.kind == "avg" else max_pool1d
        out = pool(x.reshape(m * n, c, t), self.kernel_size, self.stride)
        return out.reshape(m, n, c, out.shape[-1])

    def __repr__(self) -> str:
        return (f"StackedPool({self.kind}, k={self.kernel_size}, "
                f"s={self.stride})")


@register_stacked(AvgPool1d)
def _stack_avg_pool(template: AvgPool1d, ctx: StackContext) -> _StackedPool:
    return _StackedPool("avg", template.kernel_size, template.stride)


@register_stacked(MaxPool1d)
def _stack_max_pool(template: MaxPool1d, ctx: StackContext) -> _StackedPool:
    return _StackedPool("max", template.kernel_size, template.stride)


class _StackedGlobalAvgPool(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=3)      # (M, N, C, T) -> (M, N, C)

    def __repr__(self) -> str:
        return "StackedGlobalAvgPool1d()"


@register_stacked(GlobalAvgPool1d)
def _stack_gap(template: GlobalAvgPool1d, ctx: StackContext) -> Module:
    return _StackedGlobalAvgPool()


class _StackedFlatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], x.shape[1], -1)

    def __repr__(self) -> str:
        return "StackedFlatten()"


@register_stacked(Flatten)
def _stack_flatten(template: Flatten, ctx: StackContext) -> Module:
    return _StackedFlatten()


# ----------------------------------------------------------------------
# The stacked model wrapper
# ----------------------------------------------------------------------

class StackedModel(Module):
    """M lockstep clones of ``template`` with a leading model axis.

    ``forward`` maps a stacked input ``(M, N, ...)`` — per-model batches —
    to stacked outputs; :meth:`tile_input` lifts a shared batch.  The
    template is kept (unregistered, so its parameters stay out of this
    module's) as the slice target for :meth:`sync_template`.
    """

    def __init__(self, template: Module, m: int):
        super().__init__()
        ctx = StackContext(m)
        self.stack_size = m
        self.net = stack_module(template, ctx)
        self.active = ctx.active
        object.__setattr__(self, "template", template)

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def tile_input(self, x: np.ndarray) -> np.ndarray:
        """Broadcast one shared batch to the stack: ``(N, ...) -> (M, N, ...)``."""
        return np.broadcast_to(x, (self.stack_size,) + x.shape).copy()

    # ------------------------------------------------------------------
    # Per-model masking
    # ------------------------------------------------------------------
    def set_active(self, index: int, flag: bool) -> None:
        """Mark model ``index`` as training (True) or masked (False).

        Masked models ride along in the stack at zero gradient cost: the
        trainer multiplies their loss contribution by this array and
        stacked dropout skips their draws.
        """
        self.active[index] = 1.0 if flag else 0.0

    def set_all_active(self) -> None:
        self.active[...] = 1.0

    # ------------------------------------------------------------------
    # Per-model state slicing
    # ------------------------------------------------------------------
    def slice_state(self, index: int) -> Dict[str, np.ndarray]:
        """Template-shaped state of model ``index`` (array copies)."""
        state = {name: p.data[index].copy()
                 for name, p in self.net.named_parameters()}
        state.update({name: np.array(buf[index], copy=True)
                      for name, buf in self.net.named_buffers()})
        return state

    def load_slice_state(self, index: int, state: Dict[str, np.ndarray]) -> None:
        """Write a :meth:`slice_state` snapshot back into slice ``index``."""
        for name, p in self.net.named_parameters():
            p.data[index] = state[name]
        for name, buf in self.net.named_buffers():
            buf[index] = state[name]

    def sync_template(self, index: int) -> Module:
        """Materialize model ``index`` into the template network.

        Copies the slice's parameters and buffers (and searchable-mask
        freeze flags, via :meth:`repro.core.stacked.StackedTimeMask`'s
        registration hook) into the template, which then behaves exactly
        like the sequentially-trained model — ready for export, deployment
        evaluators or metric sweeps.  Returns the template for chaining.
        """
        template = self.template
        tparams = dict(template.named_parameters())
        for name, p in self.net.named_parameters():
            tparams[name].data[...] = p.data[index]
        tbuffers = dict(template.named_buffers())
        for name, buf in self.net.named_buffers():
            if name not in tbuffers:
                raise KeyError(f"stacked buffer {name!r} missing on template")
            module, leaf = template._resolve_buffer(name)
            module.update_buffer(leaf, np.array(buf[index], copy=True))
        for sync in _SLICE_SYNC_HOOKS:
            sync(self.net, template)
        return template


# Extra per-slice sync steps contributed by stacked layer providers (the
# PIT mask registers one to mirror its frozen flag onto the template).
_SLICE_SYNC_HOOKS: List[Callable[[Module, Module], None]] = []


def register_slice_sync(hook: Callable[[Module, Module], None]) -> None:
    """Add a ``hook(stacked_net, template)`` run by :meth:`sync_template`."""
    _SLICE_SYNC_HOOKS.append(hook)
