"""Core layers: Linear, CausalConv1d, BatchNorm1d, activations, dropout, pooling.

These are the building blocks of the two seed architectures (ResTCN and
TEMPONet).  ``CausalConv1d`` implements paper Eq. 1 exactly — a left-padded
dilated temporal convolution — and is also the export target of PIT: after
the search, each ``PITConv1d`` collapses into a ``CausalConv1d`` with the
learned dilation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import (
    Tensor,
    avg_pool1d,
    conv1d_causal,
    dropout as dropout_op,
    global_avg_pool1d,
    max_pool1d,
    record_side_effect,
)
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "CausalConv1d",
    "BatchNorm1d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "AvgPool1d",
    "MaxPool1d",
    "GlobalAvgPool1d",
    "Flatten",
    "Identity",
    "Sequential",
]


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with weight shape ``(out, in)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng),
                                name="linear.weight")
        self.bias = Parameter(init.uniform_fan_in((out_features,), rng),
                              name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        self.last_input_shape = x.shape
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias is not None})")


class CausalConv1d(Module):
    """Causal dilated temporal convolution (paper Eq. 1).

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts ``C_in`` / ``C_out``.
    kernel_size:
        Number of taps ``K``.
    dilation:
        Step ``d`` between input samples read by consecutive taps.  The
        receptive field is ``(K - 1) * d + 1``.
    stride:
        Temporal output stride.
    backend:
        Conv-backend name (see :mod:`repro.autograd.backends`); None uses
        the process-wide default (``repro.set_backend`` /
        ``REPRO_CONV_BACKEND``).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 dilation: int = 1, stride: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None,
                 backend: Optional[str] = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.stride = stride
        self.backend = backend
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size), rng),
            name="conv.weight")
        self.bias = Parameter(init.uniform_fan_in((out_channels,), rng),
                              name="conv.bias") if bias else None

    @property
    def receptive_field(self) -> int:
        """Layer-local temporal span covered by one output sample,
        ``(K - 1) * d + 1``.

        This is the extent of *this layer's* window on its own input and
        is independent of ``stride`` (stride decides which output
        positions exist, not how far each one looks back).  When layers
        are composed, an earlier stride multiplies the reach of every
        later layer — use :func:`repro.core.export.network_receptive_field`
        for the whole-network figure (what streaming warm-up is sized by).
        """
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        out = conv1d_causal(x, self.weight, self.bias,
                            dilation=self.dilation, stride=self.stride,
                            backend=self.backend)
        # Recorded for the hardware cost model (repro.hw.gap8), which needs
        # per-layer temporal extents to count MACs and activation traffic.
        self.last_t_in = x.shape[-1]
        self.last_t_out = out.shape[-1]
        return out

    def __repr__(self) -> str:
        return (f"CausalConv1d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, d={self.dilation}, s={self.stride})")


class BatchNorm1d(Module):
    """Batch normalization over ``(N, C, T)`` or ``(N, C)`` inputs.

    Normalizes per channel across batch (and time, when present), tracking
    running statistics for evaluation mode — the behaviour the int8
    deployment flow folds into the preceding convolution.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features), name="bn.weight")
        self.bias = Parameter(np.zeros(num_features), name="bn.bias")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:
            axes, shape = (0, 2), (1, self.num_features, 1)
        elif x.ndim == 2:
            axes, shape = (0,), (1, self.num_features)
        else:
            raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got {x.shape}")

        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            # Routed through the side-effect hook so a graph-captured step
            # replays the running-statistics update on every batch.
            record_side_effect((mean, var), self._update_running_stats)
            x_hat = (x - mean) / (var + self.eps).sqrt()
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
            x_hat = (x - mean) / (var + self.eps).sqrt()

        w = self.weight.reshape(shape)
        b = self.bias.reshape(shape)
        return x_hat * w + b

    def _update_running_stats(self, mean: np.ndarray, var: np.ndarray) -> None:
        self.update_buffer(
            "running_mean",
            (1 - self.momentum) * self.running_mean + self.momentum * mean.reshape(-1))
        self.update_buffer(
            "running_var",
            (1 - self.momentum) * self.running_var + self.momentum * var.reshape(-1))

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout_op(x, self.p, self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class AvgPool1d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool1d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool1d(k={self.kernel_size}, s={self.stride})"


class MaxPool1d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool1d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool1d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool1d(Module):
    """Mean over the time axis: ``(N, C, T) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool1d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool1d()"


class Flatten(Module):
    """Flatten all axes except the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            setattr(self, f"m{i}", module)
            self._order.append(f"m{i}")

    def append(self, module: Module) -> "Sequential":
        name = f"m{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return iter(getattr(self, name) for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x
