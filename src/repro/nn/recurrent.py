"""Recurrent layers: LSTM and GRU.

The paper's premise (Sec. I) is that TCNs match RNN accuracy on time-series
tasks while being cheaper to deploy — the comparison established by Bai et
al. [6], who benchmark TCNs against LSTMs/GRUs on the same datasets
(including Nottingham).  These layers provide that RNN side of the
comparison on our substrate; see ``benchmarks/bench_tcn_vs_rnn.py``.

Both layers consume the library's channel-first sequence layout
``(N, C, T)`` and return the full hidden-state sequence ``(N, H, T)``, so
they are drop-in sequence encoders where a TCN block would be.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, concatenate, stack
from . import init
from .module import Module, Parameter

__all__ = ["LSTM", "GRU"]


class LSTM(Module):
    """Single-layer LSTM over ``(N, C, T)`` sequences.

    Gates follow the standard formulation (input/forget/cell/output) with
    a unit forget-gate bias initialization, the common trick for stable
    gradient flow over long sequences.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gates = 4 * hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((gates, input_size), rng),
                                   name="lstm.weight_ih")
        self.weight_hh = Parameter(init.xavier_uniform((gates, hidden_size), rng),
                                   name="lstm.weight_hh")
        bias = np.zeros(gates)
        bias[hidden_size: 2 * hidden_size] = 1.0  # forget-gate bias = 1
        self.bias = Parameter(bias, name="lstm.bias")

    def forward(self, x: Tensor,
                state: Optional[Tuple[Tensor, Tensor]] = None) -> Tensor:
        if x.ndim != 3 or x.shape[1] != self.input_size:
            raise ValueError(f"expected (N, {self.input_size}, T), got {x.shape}")
        n, _, t = x.shape
        self.last_t = t  # recorded for the GAP8 cost model
        h_dim = self.hidden_size
        if state is None:
            h = Tensor(np.zeros((n, h_dim)))
            c = Tensor(np.zeros((n, h_dim)))
        else:
            h, c = state

        outputs = []
        for step in range(t):
            frame = x[:, :, step]                       # (N, C)
            gates = (frame @ self.weight_ih.transpose()
                     + h @ self.weight_hh.transpose() + self.bias)
            i_gate = gates[:, 0 * h_dim: 1 * h_dim].sigmoid()
            f_gate = gates[:, 1 * h_dim: 2 * h_dim].sigmoid()
            g_gate = gates[:, 2 * h_dim: 3 * h_dim].tanh()
            o_gate = gates[:, 3 * h_dim: 4 * h_dim].sigmoid()
            c = f_gate * c + i_gate * g_gate
            h = o_gate * c.tanh()
            outputs.append(h)
        return stack(outputs, axis=2)                   # (N, H, T)

    def __repr__(self) -> str:
        return f"LSTM(in={self.input_size}, hidden={self.hidden_size})"


class GRU(Module):
    """Single-layer GRU over ``(N, C, T)`` sequences."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gates = 3 * hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((gates, input_size), rng),
                                   name="gru.weight_ih")
        self.weight_hh = Parameter(init.xavier_uniform((gates, hidden_size), rng),
                                   name="gru.weight_hh")
        self.bias_ih = Parameter(np.zeros(gates), name="gru.bias_ih")
        self.bias_hh = Parameter(np.zeros(gates), name="gru.bias_hh")

    def forward(self, x: Tensor, state: Optional[Tensor] = None) -> Tensor:
        if x.ndim != 3 or x.shape[1] != self.input_size:
            raise ValueError(f"expected (N, {self.input_size}, T), got {x.shape}")
        n, _, t = x.shape
        self.last_t = t  # recorded for the GAP8 cost model
        h_dim = self.hidden_size
        h = state if state is not None else Tensor(np.zeros((n, h_dim)))

        outputs = []
        for step in range(t):
            frame = x[:, :, step]
            gi = frame @ self.weight_ih.transpose() + self.bias_ih
            gh = h @ self.weight_hh.transpose() + self.bias_hh
            r = (gi[:, 0 * h_dim: 1 * h_dim] + gh[:, 0 * h_dim: 1 * h_dim]).sigmoid()
            z = (gi[:, 1 * h_dim: 2 * h_dim] + gh[:, 1 * h_dim: 2 * h_dim]).sigmoid()
            candidate = (gi[:, 2 * h_dim: 3 * h_dim]
                         + r * gh[:, 2 * h_dim: 3 * h_dim]).tanh()
            h = (1.0 - z) * candidate + z * h
            outputs.append(h)
        return stack(outputs, axis=2)

    def __repr__(self) -> str:
        return f"GRU(in={self.input_size}, hidden={self.hidden_size})"
