"""Weight initialization schemes (Kaiming/Xavier/uniform).

All initializers take an explicit ``numpy.random.Generator`` so that every
experiment in the reproduction is deterministic given its seed — a property
the benchmark harness relies on.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "uniform_fan_in"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 3:  # Conv1d: (out, in, k)
        receptive = shape[2]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-normal init, appropriate for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform init."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform init, appropriate for tanh/sigmoid networks."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_fan_in(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """PyTorch's default Linear/Conv bias-style init: U(-1/sqrt(fan_in), ...)."""
    fan_in, _ = _fan_in_out(shape) if len(shape) > 1 else (shape[0], shape[0])
    bound = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)
