"""Shared evaluation loop.

Three near-identical copies of "mean loss over a loader, in eval mode,
under ``no_grad``" had grown in the codebase (the core trainer, the
evaluation metrics, ad-hoc benchmark loops); this module is the single
implementation they all delegate to.
"""

from __future__ import annotations

from typing import Callable

from ..autograd import Tensor, no_grad
from .module import Module

__all__ = ["mean_loss_over_loader"]


def mean_loss_over_loader(model: Module, loader,
                          loss_fn: Callable[[Tensor, Tensor], Tensor],
                          empty_message: str = "loader produced no batches"
                          ) -> float:
    """Mean of ``loss_fn(model(x), y)`` over a loader, without gradients.

    The model is put in evaluation mode for the sweep and restored to its
    previous mode afterwards.  Raises ``ValueError(empty_message)`` when
    the loader yields nothing — callers pass their own message so existing
    error texts stay stable.
    """
    was_training = model.training
    model.eval()
    total, batches = 0.0, 0
    with no_grad():
        for x, y in loader:
            value = loss_fn(model(Tensor(x)), Tensor(y))
            total += value.item()
            batches += 1
    if was_training:
        model.train()
    if batches == 0:
        raise ValueError(empty_message)
    return total / batches
