"""Neural-network layer library built on :mod:`repro.autograd`."""

from .module import Module, Parameter
from .layers import (
    Linear,
    CausalConv1d,
    BatchNorm1d,
    ReLU,
    Sigmoid,
    Tanh,
    Dropout,
    AvgPool1d,
    MaxPool1d,
    GlobalAvgPool1d,
    Flatten,
    Identity,
    Sequential,
)
from .losses import (
    bce_with_logits,
    polyphonic_nll,
    mae_loss,
    mse_loss,
    huber_loss,
    cross_entropy,
    BCEWithLogits,
    PolyphonicNLL,
    MAELoss,
    MSELoss,
    HuberLoss,
    CrossEntropy,
)
from .eval_utils import mean_loss_over_loader
from .recurrent import LSTM, GRU
from .serialization import save_model, load_model, save_state, load_state
from . import init

__all__ = [
    "mean_loss_over_loader",
    "Module",
    "Parameter",
    "Linear",
    "CausalConv1d",
    "BatchNorm1d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "AvgPool1d",
    "MaxPool1d",
    "GlobalAvgPool1d",
    "Flatten",
    "Identity",
    "Sequential",
    "bce_with_logits",
    "polyphonic_nll",
    "mae_loss",
    "mse_loss",
    "huber_loss",
    "cross_entropy",
    "BCEWithLogits",
    "PolyphonicNLL",
    "MAELoss",
    "MSELoss",
    "HuberLoss",
    "CrossEntropy",
    "init",
    "LSTM",
    "GRU",
    "save_model",
    "load_model",
    "save_state",
    "load_state",
]
