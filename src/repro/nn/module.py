"""Module/Parameter system, mirroring the ``torch.nn.Module`` contract.

Modules register :class:`Parameter` attributes and child modules
automatically (via ``__setattr__``), expose recursive iteration over
parameters, and carry a ``training`` flag toggled by :meth:`Module.train` /
:meth:`Module.eval` — the exact surface the PIT trainer and the deployment
flow rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable leaf of a module.

    Parameters always require gradients; optimizers discover them through
    :meth:`Module.parameters`.
    """

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        elif key in self.__dict__.get("_buffers", ()):
            # Assigning to a registered buffer name updates the buffer
            # (coerced to an array so scalars survive state_dict round
            # trips) instead of silently shadowing it with a plain
            # attribute that save/load would ignore.
            value = np.asarray(value)
            self._buffers[key] = value
        object.__setattr__(self, key, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable state array (e.g. BatchNorm statistics).

        Buffers travel with ``state_dict`` but receive no gradients.
        """
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer."""
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Recursive iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    def children(self) -> List["Module"]:
        return list(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter/buffer names to array copies."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: np.array(buf, copy=True) for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own_params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data[...] = state[name]
        # Buffers may live on nested modules; walk and assign.
        for name in own_buffers:
            module, leaf = self._resolve_buffer(name)
            module.update_buffer(leaf, np.array(state[name], copy=True))

    def _resolve_buffer(self, dotted: str) -> Tuple["Module", str]:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        return module, parts[-1]

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def count_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(p.data.size for p in self.parameters())

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{self.__class__.__name__}()"
