"""Evaluation metrics matching the paper's reporting.

* Nottingham: frame-level negative log-likelihood (lower is better);
* PPG-Dalia: mean absolute error in BPM (lower is better);
* plus generic helpers for classification-style tasks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..autograd import Tensor
from ..nn import Module, mae_loss, mean_loss_over_loader, polyphonic_nll

__all__ = ["nll_metric", "mae_metric", "evaluate_metric", "count_macs"]


def nll_metric(model: Module, loader) -> float:
    """Mean per-frame NLL over a loader (paper Fig. 4 top / Table III)."""
    return evaluate_metric(model, loader, polyphonic_nll)


def mae_metric(model: Module, loader) -> float:
    """Mean absolute error in BPM (paper Fig. 4 bottom / Table III)."""
    return evaluate_metric(model, loader, mae_loss)


def evaluate_metric(model: Module, loader,
                    metric: Callable[[Tensor, Tensor], Tensor]) -> float:
    """Average a tensor metric over a loader in evaluation mode."""
    return mean_loss_over_loader(model, loader, metric)


def count_macs(model: Module, input_shape) -> int:
    """Multiply-accumulate count of one inference (via the GAP8 tracer)."""
    from ..hw.gap8 import GAP8Model
    report = GAP8Model().estimate(model, input_shape)
    return report.total_macs
