"""Pareto-front utilities for the accuracy-vs-size design space (Fig. 4).

All functions treat points as ``(cost, loss)`` pairs where *both*
coordinates are minimized (parameters and NLL/MAE).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["dominates", "pareto_front", "pareto_points", "hypervolume_2d"]

Point = Tuple[float, float]


def dominates(a: Point, b: Point) -> bool:
    """True if ``a`` Pareto-dominates ``b`` (<= in all, < in at least one)."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def pareto_front(points: Sequence[Point]) -> List[int]:
    """Indices of the non-dominated points, sorted by the first coordinate."""
    indices = []
    for i, p in enumerate(points):
        if not any(dominates(q, p) for j, q in enumerate(points) if j != i):
            indices.append(i)
    indices.sort(key=lambda i: (points[i][0], points[i][1]))
    return indices


def pareto_points(points: Sequence[Point]) -> List[Point]:
    """The non-dominated points themselves, sorted by cost."""
    return [points[i] for i in pareto_front(points)]


def hypervolume_2d(points: Sequence[Point], reference: Point) -> float:
    """Dominated hypervolume w.r.t. a reference (upper-right) point.

    Scalar quality of a 2-D minimization front: the area dominated between
    the front and ``reference`` (larger is better).  Points outside the
    reference box contribute nothing.

    Sweeping the front left to right, the dominated region at abscissa
    ``x`` has height ``ref_y - min{y_i : x_i <= x}``; summing the strips
    between consecutive front points gives the exact area.
    """
    front = [p for p in pareto_points(points)
             if p[0] <= reference[0] and p[1] <= reference[1]]
    if not front:
        return 0.0
    volume = 0.0
    best_y = reference[1]
    for i, (x, y) in enumerate(front):
        next_x = front[i + 1][0] if i + 1 < len(front) else reference[0]
        best_y = min(best_y, y)
        volume += max(0.0, next_x - x) * max(0.0, reference[1] - best_y)
    return volume
