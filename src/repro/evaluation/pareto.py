"""Pareto-front utilities for the accuracy-vs-cost design space (Fig. 4).

All functions treat points as tuples of objectives where *every*
coordinate is minimized.  The classic use is the 2-D ``(params, loss)``
plane of Fig. 4, but the hardware-in-the-loop sweep annotates points with
deployment metrics (latency, energy, quantized loss, …), so the dominance
test, front extraction and hypervolume all accept objective tuples of any
dimensionality.  :func:`hypervolume_2d` is kept as the 2-D spelling.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["dominates", "pareto_front", "pareto_points", "hypervolume",
           "hypervolume_2d"]

Point = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if ``a`` Pareto-dominates ``b`` (<= in all, < in at least one)."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, sorted lexicographically.

    Points with a NaN coordinate are excluded outright: NaN compares False
    to everything, which would make such a point undominatable and plant a
    meaningless vertex on the front.  (Inf is a legitimate — terrible —
    objective value and is kept.)
    """
    valid = [i for i, p in enumerate(points)
             if not any(math.isnan(float(c)) for c in p)]
    indices = []
    for i in valid:
        p = points[i]
        if not any(dominates(points[j], p) for j in valid if j != i):
            indices.append(i)
    indices.sort(key=lambda i: tuple(points[i]))
    return indices


def pareto_points(points: Sequence[Sequence[float]]) -> List[Point]:
    """The non-dominated points themselves, in lexicographic order."""
    return [tuple(points[i]) for i in pareto_front(points)]


def hypervolume(points: Sequence[Sequence[float]],
                reference: Sequence[float]) -> float:
    """Dominated hypervolume w.r.t. a reference (worst-corner) point.

    Scalar quality of an N-D minimization front: the volume dominated
    between the front and ``reference`` (larger is better).  Points outside
    the reference box contribute nothing.

    Computed by slicing along the first objective (the HSO scheme): sweeping
    the front in ascending first coordinate, the slab between consecutive
    abscissae is the slab width times the (N-1)-D hypervolume of the points
    seen so far, projected onto the remaining objectives.  Exact, and fast
    enough for the few-dozen-point fronts a DSE sweep produces.
    """
    reference = tuple(float(r) for r in reference)
    box: List[Point] = []
    for p in points:
        p = tuple(float(c) for c in p)
        if len(p) != len(reference):
            raise ValueError(
                f"point dimension {len(p)} != reference dimension "
                f"{len(reference)}")
        if all(c <= r for c, r in zip(p, reference)):
            box.append(p)
    if not box:
        return 0.0
    return _slab_volume([box[i] for i in pareto_front(box)], reference)


def _slab_volume(front: List[Point], reference: Point) -> float:
    """HSO recursion over a non-dominated front sorted by first coordinate."""
    if len(reference) == 1:
        return max(0.0, reference[0] - min(p[0] for p in front))
    volume = 0.0
    for i, point in enumerate(front):
        next_x = front[i + 1][0] if i + 1 < len(front) else reference[0]
        width = next_x - point[0]
        if width <= 0.0:
            continue  # duplicate abscissa: folded into the next slab
        slab = [q[1:] for q in front[:i + 1]]
        sub_front = [slab[j] for j in pareto_front(slab)]
        volume += width * _slab_volume(sub_front, reference[1:])
    return volume


def hypervolume_2d(points: Sequence[Sequence[float]],
                   reference: Sequence[float]) -> float:
    """The 2-D spelling of :func:`hypervolume` (area between front and
    reference), kept for the Fig. 4 ``(params, loss)`` plane."""
    return hypervolume(points, reference)
