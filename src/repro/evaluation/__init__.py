"""Evaluation: metrics, Pareto analysis, design-space exploration."""

from .metrics import nll_metric, mae_metric, evaluate_metric, count_macs
from .pareto import (
    dominates,
    pareto_front,
    pareto_points,
    hypervolume,
    hypervolume_2d,
)
from .dse import (
    ENV_EXECUTOR,
    ENV_STACK,
    ENV_WORKERS,
    DSECache,
    DSEEngine,
    DSEPoint,
    DSEResult,
    evaluator_name,
    executor_default,
    objective_value,
    run_dse,
    select_small_medium_large,
    stack_width_default,
    workers_default,
)
from .reporting import (
    format_table,
    format_markdown_table,
    format_failures,
    ExperimentRegistry,
    Comparison,
)

__all__ = [
    "nll_metric",
    "mae_metric",
    "evaluate_metric",
    "count_macs",
    "dominates",
    "pareto_front",
    "pareto_points",
    "hypervolume",
    "hypervolume_2d",
    "DSECache",
    "DSEEngine",
    "DSEPoint",
    "DSEResult",
    "evaluator_name",
    "objective_value",
    "run_dse",
    "select_small_medium_large",
    "ENV_STACK",
    "ENV_WORKERS",
    "ENV_EXECUTOR",
    "stack_width_default",
    "workers_default",
    "executor_default",
    "format_table",
    "format_markdown_table",
    "format_failures",
    "ExperimentRegistry",
    "Comparison",
]
