"""Experiment reporting: ASCII/markdown tables and a run registry.

The benchmark harness prints paper-style tables; this module provides the
renderers, plus a lightweight :class:`ExperimentRegistry` that accumulates
(paper-value, measured-value) pairs and renders the EXPERIMENTS.md record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["format_table", "format_markdown_table", "format_failures",
           "ExperimentRegistry", "Comparison"]


def _render_cell(value, spec: Optional[str]) -> str:
    if isinstance(value, bool):
        # Feature flags (e.g. the deployment tables' "fits L2" column)
        # read as yes/no, not Python reprs.
        return "yes" if value else "no"
    if spec and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 formats: Optional[Sequence[Optional[str]]] = None) -> str:
    """Monospace table with right-aligned numeric columns."""
    formats = formats or [None] * len(headers)
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header length")
    cells = [[_render_cell(v, f) for v, f in zip(row, formats)] for row in rows]
    widths = [max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    numeric = [all(_is_numeric(row[i]) for row in rows) if rows else False
               for i in range(len(headers))]

    def line(parts, pad=" "):
        out = []
        for i, part in enumerate(parts):
            out.append(part.rjust(widths[i]) if numeric[i] else part.ljust(widths[i]))
        return pad.join(out)

    sep = "-+-".join("-" * w for w in widths)
    body = [line(headers), sep]
    body.extend(line(row) for row in cells)
    return "\n".join(body)


def format_failures(points: Sequence) -> str:
    """Failure table for a fault-tolerant DSE sweep.

    ``points`` are failed :class:`repro.evaluation.DSEPoint` objects
    (``status != "ok"``); the table shows what went wrong per grid point
    so a CLI sweep surfaces failures without drowning the results.
    """
    rows = [(p.lam, p.warmup_epochs, p.attempts, p.error or "unknown error")
            for p in points]
    return format_table(["lambda", "warmup", "attempts", "error"], rows,
                        formats=["g", "d", "d", None])


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence],
                          formats: Optional[Sequence[Optional[str]]] = None) -> str:
    """GitHub-flavored markdown table."""
    formats = formats or [None] * len(headers)
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        cells = [_render_cell(v, f) for v, f in zip(row, formats)]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


@dataclass
class Comparison:
    """One paper-vs-measured data point."""
    experiment: str
    quantity: str
    paper: Union[float, str]
    measured: Union[float, str]
    note: str = ""

    def ratio(self) -> Optional[float]:
        if isinstance(self.paper, (int, float)) and isinstance(self.measured, (int, float)):
            if self.paper != 0:
                return self.measured / self.paper
        return None


class ExperimentRegistry:
    """Accumulates comparisons and renders/persists the experiment record."""

    def __init__(self):
        self._entries: List[Comparison] = []

    def record(self, experiment: str, quantity: str, paper, measured,
               note: str = "") -> None:
        self._entries.append(Comparison(experiment, quantity, paper, measured, note))

    @property
    def entries(self) -> List[Comparison]:
        return list(self._entries)

    def experiments(self) -> List[str]:
        seen: Dict[str, None] = {}
        for entry in self._entries:
            seen.setdefault(entry.experiment, None)
        return list(seen)

    def to_markdown(self) -> str:
        sections = []
        for experiment in self.experiments():
            rows = [(e.quantity, e.paper, e.measured, e.note)
                    for e in self._entries if e.experiment == experiment]
            sections.append(f"### {experiment}\n\n" + format_markdown_table(
                ["quantity", "paper", "measured", "note"], rows))
        return "\n\n".join(sections)

    def save_json(self, path: Union[str, Path]) -> None:
        payload = [vars(e) for e in self._entries]
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "ExperimentRegistry":
        registry = cls()
        for item in json.loads(Path(path).read_text()):
            registry.record(**item)
        return registry
