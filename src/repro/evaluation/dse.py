"""Design-space-exploration engine (paper Sec. IV-B).

The paper obtains the Pareto fronts of Fig. 4 "by tweaking the λ
regularization-strength of PIT and the warmup duration".  This module
drives that sweep: one :class:`repro.core.PITTrainer` run per (λ, warmup)
pair, each from a fresh copy of the seed, collecting ``(params, loss)``
points plus the discovered dilations.

Grid points are independent, so :class:`DSEEngine` dispatches them to a
``concurrent.futures`` worker pool (threads by default, processes on
request) and reassembles the results in deterministic grid order — a
parallel sweep returns exactly the same :class:`DSEResult` as a serial
one.  To make that hold, every grid point trains against *private deep
copies* of the data loaders: a shared shuffling loader would otherwise
thread its RNG state through the points in submission order.

Completed points can be memoized to a JSON cache file (see
:class:`DSECache`), making long sweeps resumable: a re-run with the same
grid and trainer settings skips finished points and only trains the rest.

It also implements the small/medium/large selection rule of Tables I-III:
*small* = fewest parameters, *large* = most parameters, *medium* = closest
in size to the hand-engineered reference network.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import threading
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import current_backend, use_backend
from ..core.trainer import PITResult, PITTrainer
from ..nn import Module
from .pareto import pareto_front

__all__ = ["DSEPoint", "DSEResult", "DSECache", "DSEEngine", "run_dse",
           "select_small_medium_large"]


@dataclass
class DSEPoint:
    """One trained architecture in the design space."""
    lam: float
    warmup_epochs: int
    dilations: Tuple[int, ...]
    params: int
    loss: float
    result: Optional[PITResult] = field(repr=False, default=None)


@dataclass
class DSEResult:
    """Outcome of a full (λ × warmup) sweep."""
    points: List[DSEPoint]

    def pareto(self) -> List[DSEPoint]:
        coords = [(p.params, p.loss) for p in self.points]
        return [self.points[i] for i in pareto_front(coords)]

    def best_loss(self) -> DSEPoint:
        return min(self.points, key=lambda p: p.loss)

    def smallest(self) -> DSEPoint:
        return min(self.points, key=lambda p: p.params)


# ----------------------------------------------------------------------
# Results cache
# ----------------------------------------------------------------------

class DSECache:
    """JSON memo of completed DSE points, for resumable sweeps.

    File format (version 1)::

        {
          "version": 1,
          "points": {
            "<key>": {
              "lam": 0.02, "warmup_epochs": 5,
              "dilations": [1, 2, 4], "params": 1234, "loss": 0.567,
              "result": { ... PITResult fields ... }
            }, ...
          }
        }

    Keys encode (tag, conv backend, λ, warmup, trainer settings), so a
    cache file is never allowed to return a point trained under different
    hyper-parameters — or under a different conv backend, whose ~1e-12
    per-call differences training can amplify into different dilations.
    The *tag* is the caller's name for the model/data
    identity (seed factory, dataset, width, …), which the engine cannot
    see into — callers sharing one cache file across different seeds or
    benchmarks must pass distinct ``cache_tag`` values (the CLI and the
    benchmark conftest do).  Writes are atomic (tempfile + rename) and
    guarded by a lock, so a thread-pooled engine can record completions
    concurrently.
    """

    VERSION = 1

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._points: Dict[str, dict] = {}
        if os.path.exists(path):
            with open(path) as handle:
                payload = json.load(handle)
            if payload.get("version") != self.VERSION:
                raise ValueError(
                    f"unsupported DSE cache version in {path!r}: "
                    f"{payload.get('version')!r}")
            self._points = dict(payload.get("points", {}))

    @staticmethod
    def key(lam: float, warmup: int, trainer_kwargs: Dict,
            tag: str = "", backend: Optional[str] = None) -> str:
        try:
            settings = json.dumps(trainer_kwargs, sort_keys=True)
        except TypeError as exc:
            # Objects would have to be keyed by repr, which either embeds a
            # per-process memory address (cache never hits) or, stripped,
            # collapses differently-configured instances (cache hits
            # falsely).  Refuse loudly instead of being silently wrong.
            raise ValueError(
                "DSE caching requires JSON-serializable trainer settings; "
                f"got {trainer_kwargs!r}") from exc
        backend = backend if backend is not None else current_backend()
        return (f"tag={tag}|backend={backend}|lam={lam!r}|warmup={warmup}"
                f"|trainer={settings}")

    def __len__(self) -> int:
        return len(self._points)

    def get(self, key: str) -> Optional[DSEPoint]:
        entry = self._points.get(key)
        return None if entry is None else _point_from_dict(entry)

    def put(self, key: str, point: DSEPoint) -> None:
        with self._lock:
            self._points[key] = _point_to_dict(point)
            self._flush()

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # Merge points other *processes* recorded since our load — a
        # whole-file rewrite from just this process's map would erase them.
        # (The remaining read-merge-write race window is microseconds;
        # within one process the lock serializes flushes entirely.)
        if os.path.exists(self.path):
            try:
                with open(self.path) as handle:
                    payload = json.load(handle)
                if payload.get("version") == self.VERSION:
                    merged = dict(payload.get("points", {}))
                    merged.update(self._points)
                    self._points = merged
            except (OSError, json.JSONDecodeError):
                pass  # unreadable/partial file: our own map still flushes
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"version": self.VERSION, "points": self._points},
                          handle, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


def _point_to_dict(point: DSEPoint) -> dict:
    entry = {
        "lam": point.lam,
        "warmup_epochs": point.warmup_epochs,
        "dilations": list(point.dilations),
        "params": point.params,
        "loss": point.loss,
    }
    if point.result is not None:
        entry["result"] = asdict(point.result)
    return entry


def _point_from_dict(entry: dict) -> DSEPoint:
    result = None
    if entry.get("result") is not None:
        fields = dict(entry["result"])
        fields["dilations"] = tuple(fields["dilations"])
        result = PITResult(**fields)
    return DSEPoint(
        lam=entry["lam"], warmup_epochs=entry["warmup_epochs"],
        dilations=tuple(entry["dilations"]), params=entry["params"],
        loss=entry["loss"], result=result)


# ----------------------------------------------------------------------
# Execution engine
# ----------------------------------------------------------------------

def _private_loader(loader):
    """Deep-copy a loader while sharing its (read-only) sample arrays.

    Every piece of mutable iteration state — the shuffle RNG, augmentation
    RNGs, cursors in loader subclasses — must be private per grid point for
    parallel sweeps to be bit-identical to serial ones.  The materialized
    sample arrays, however, are never mutated by training, so they are
    seeded into the deepcopy memo and stay shared: a pool of N in-flight
    points costs O(N) loader state, not N copies of the dataset.
    """
    memo = {}
    dataset = getattr(loader, "dataset", None)
    for name in ("inputs", "targets"):
        array = getattr(dataset, name, None)
        if isinstance(array, np.ndarray):
            memo[id(array)] = array
    return copy.deepcopy(loader, memo)


def _train_grid_point(seed_factory: Callable[[], Module], loss_fn: Callable,
                      train_loader, val_loader, lam: float, warmup: int,
                      trainer_kwargs: Dict, backend: str,
                      compile_step: Optional[bool] = None) -> DSEPoint:
    """Train one (λ, warmup) grid point from a fresh seed.

    Module-level (not a closure) so a ``ProcessPoolExecutor`` can pickle it.
    Each point gets private loader copies so it consumes its own shuffle
    RNG stream — this is what makes parallel sweeps bit-identical to
    serial ones regardless of completion order.  ``backend`` is the conv
    backend captured by the engine at sweep start; it is applied as a
    thread-local :func:`use_backend` scope so the whole grid point trains
    under exactly the backend its cache key records, even if a spawned
    worker's import-time default differs or another thread switches
    backends mid-sweep.  ``compile_step`` turns on the graph-capture
    executor inside the worker's :class:`PITTrainer`: each grid point
    traces its step once per phase and replays it for every batch — the
    compiled-vs-eager bit-parity guarantee is what lets cached and fresh
    results mix freely (cache keys do not record the flag).
    """
    train_loader = _private_loader(train_loader)
    val_loader = _private_loader(val_loader)
    model = seed_factory()
    trainer = PITTrainer(model, loss_fn, lam=lam, warmup_epochs=warmup,
                         compile_step=compile_step, **trainer_kwargs)
    with use_backend(backend):
        result = trainer.fit(train_loader, val_loader)
    return DSEPoint(
        lam=lam, warmup_epochs=warmup, dilations=result.dilations,
        params=result.effective_params, loss=result.best_val, result=result)


class DSEEngine:
    """Dispatches a (λ × warmup) sweep across a worker pool.

    Parameters
    ----------
    seed_factory:
        Zero-argument callable returning a *fresh* searchable seed; runs
        are independent (identical init per the factory's internal seed).
        Must be picklable when ``executor="process"``.
    loss_fn:
        Task loss passed to :class:`repro.core.PITTrainer`.
    train_loader, val_loader:
        Data loaders; each grid point trains on private deep copies.
    workers:
        Pool size.  ``0`` or ``1`` trains the grid serially in-process.
    executor:
        ``"thread"`` (default; numpy releases the GIL inside the GEMM-heavy
        hot path, so threads scale) or ``"process"`` (full isolation, but
        the factory / loss / loaders must pickle — no lambdas or closures).
    cache_path:
        Optional JSON results cache (see :class:`DSECache`); completed
        points found there are returned without retraining.
    cache_tag:
        Identity string mixed into every cache key, naming what the engine
        cannot introspect: the seed factory and data (benchmark, width,
        seed, …).  Required discipline whenever one cache file serves
        sweeps over different models or datasets.
    trainer_kwargs:
        Extra :class:`PITTrainer` arguments shared by every grid point
        (``lam`` / ``warmup_epochs`` are stripped: the grid owns them;
        ``compile_step`` is stripped into the engine knob below).
    compile_step:
        Train every grid point through the graph-capture executor
        (``PITTrainer(compile_step=...)``): each worker traces one step per
        phase and replays it with preallocated buffers.  Deliberately *not*
        part of the cache key — compiled steps are bit-identical to eager,
        so points trained either way are interchangeable.  None defers to
        ``REPRO_COMPILE_STEP``.
    """

    def __init__(self, seed_factory: Callable[[], Module], loss_fn: Callable,
                 train_loader, val_loader, *, workers: int = 0,
                 executor: str = "thread", cache_path: Optional[str] = None,
                 cache_tag: str = "",
                 trainer_kwargs: Optional[Dict] = None,
                 verbose: bool = False,
                 compile_step: Optional[bool] = None):
        if executor not in ("thread", "process"):
            raise ValueError("executor must be 'thread' or 'process'")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.seed_factory = seed_factory
        self.loss_fn = loss_fn
        self.train_loader = train_loader
        self.val_loader = val_loader
        self.workers = workers
        self.executor = executor
        self.cache = DSECache(cache_path) if cache_path else None
        self.cache_tag = cache_tag
        self._run_backend = current_backend()  # re-pinned at each run()
        self.trainer_kwargs = dict(trainer_kwargs or {})
        self.trainer_kwargs.pop("lam", None)
        self.trainer_kwargs.pop("warmup_epochs", None)
        kwargs_compile = self.trainer_kwargs.pop("compile_step", None)
        self.compile_step = compile_step if compile_step is not None else kwargs_compile
        self.verbose = verbose

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[DSE] {message}")

    def _grid(self, lambdas: Sequence[float],
              warmups: Sequence[int]) -> List[Tuple[int, float]]:
        return [(warmup, lam) for warmup in warmups for lam in lambdas]

    def _train_one(self, lam: float, warmup: int) -> DSEPoint:
        return _train_grid_point(self.seed_factory, self.loss_fn,
                                 self.train_loader, self.val_loader,
                                 lam, warmup, self.trainer_kwargs,
                                 self._run_backend, self.compile_step)

    def run(self, lambdas: Sequence[float],
            warmups: Sequence[int] = (5,)) -> DSEResult:
        """Sweep the grid; points come back in grid order regardless of
        worker count or completion order."""
        # Pin the conv backend for the whole sweep: workers (which may be
        # spawned processes with their own import-time default) train under
        # it, and cache keys record it — values and keys cannot diverge.
        self._run_backend = current_backend()
        grid = self._grid(lambdas, warmups)
        points: List[Optional[DSEPoint]] = [None] * len(grid)
        pending: List[Tuple[int, int, float]] = []

        for index, (warmup, lam) in enumerate(grid):
            cached = None
            if self.cache is not None:
                cached = self.cache.get(self._key(lam, warmup))
            if cached is not None:
                points[index] = cached
                self._log(f"lam={lam:g} warmup={warmup}: cached "
                          f"({cached.params} params, loss={cached.loss:.4f})")
            else:
                pending.append((index, warmup, lam))

        if pending:
            if self.workers > 1:
                pool_cls = (ThreadPoolExecutor if self.executor == "thread"
                            else ProcessPoolExecutor)
                with pool_cls(max_workers=self.workers) as pool:
                    futures = {
                        pool.submit(_train_grid_point,
                                    self.seed_factory, self.loss_fn,
                                    self.train_loader, self.val_loader,
                                    lam, warmup, self.trainer_kwargs,
                                    self._run_backend, self.compile_step): index
                        for index, warmup, lam in pending}
                    # Consume in completion order; grid order is restored
                    # by index when assembling the result.  When a cache is
                    # configured, a failing point must not discard the
                    # others, so keep draining and record them before
                    # re-raising.  Without a cache the finished results
                    # have nowhere to go — cancel whatever has not started
                    # and fail fast instead of training for nothing.
                    error: Optional[Exception] = None
                    for future in as_completed(futures):
                        try:
                            points[futures[future]] = self._record(
                                future.result())
                        except Exception as exc:
                            if self.cache is None:
                                for other in futures:
                                    other.cancel()
                                raise
                            if error is None:
                                error = exc
                    if error is not None:
                        raise error
            else:
                for index, warmup, lam in pending:
                    points[index] = self._record(self._train_one(lam, warmup))

        return DSEResult(points=list(points))

    def _key(self, lam: float, warmup: int) -> str:
        return DSECache.key(lam, warmup, self.trainer_kwargs,
                            tag=self.cache_tag, backend=self._run_backend)

    def _record(self, point: DSEPoint) -> DSEPoint:
        if self.cache is not None:
            self.cache.put(self._key(point.lam, point.warmup_epochs), point)
        self._log(f"lam={point.lam:g} warmup={point.warmup_epochs}: "
                  f"{point.params} params, loss={point.loss:.4f}, "
                  f"d={point.dilations}")
        return point


def run_dse(seed_factory: Callable[[], Module], loss_fn: Callable,
            train_loader, val_loader,
            lambdas: Sequence[float], warmups: Sequence[int] = (5,),
            trainer_kwargs: Optional[Dict] = None,
            verbose: bool = False, workers: int = 0,
            executor: str = "thread",
            cache_path: Optional[str] = None,
            cache_tag: str = "",
            compile_step: Optional[bool] = None) -> DSEResult:
    """Sweep (λ, warmup); one full PIT search per grid point.

    Thin wrapper over :class:`DSEEngine` kept for API compatibility;
    ``workers`` / ``executor`` / ``cache_path`` / ``cache_tag`` /
    ``compile_step`` expose the engine's parallelism, memoization and
    graph-compilation knobs.
    """
    engine = DSEEngine(seed_factory, loss_fn, train_loader, val_loader,
                       workers=workers, executor=executor,
                       cache_path=cache_path, cache_tag=cache_tag,
                       trainer_kwargs=trainer_kwargs,
                       verbose=verbose, compile_step=compile_step)
    return engine.run(lambdas, warmups=warmups)


def select_small_medium_large(points: Sequence[DSEPoint],
                              reference_params: int) -> Dict[str, DSEPoint]:
    """The paper's Table I selection rule over a set of DSE points.

    * ``small``: the smallest network found;
    * ``large``: the largest network found;
    * ``medium``: the closest in size to the hand-designed reference.
    """
    if not points:
        raise ValueError("no DSE points to select from")
    small = min(points, key=lambda p: p.params)
    large = max(points, key=lambda p: p.params)
    medium = min(points, key=lambda p: abs(p.params - reference_params))
    return {"small": small, "medium": medium, "large": large}
