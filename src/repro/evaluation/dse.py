"""Design-space-exploration driver (paper Sec. IV-B).

The paper obtains the Pareto fronts of Fig. 4 "by tweaking the λ
regularization-strength of PIT and the warmup duration".  This module
drives that sweep: one :class:`repro.core.PITTrainer` run per (λ, warmup)
pair, each from a fresh copy of the seed, collecting ``(params, loss)``
points plus the discovered dilations.

It also implements the small/medium/large selection rule of Tables I-III:
*small* = fewest parameters, *large* = most parameters, *medium* = closest
in size to the hand-engineered reference network.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.trainer import PITResult, PITTrainer
from ..nn import Module
from .pareto import pareto_front

__all__ = ["DSEPoint", "DSEResult", "run_dse", "select_small_medium_large"]


@dataclass
class DSEPoint:
    """One trained architecture in the design space."""
    lam: float
    warmup_epochs: int
    dilations: Tuple[int, ...]
    params: int
    loss: float
    result: PITResult = field(repr=False, default=None)


@dataclass
class DSEResult:
    """Outcome of a full (λ × warmup) sweep."""
    points: List[DSEPoint]

    def pareto(self) -> List[DSEPoint]:
        coords = [(p.params, p.loss) for p in self.points]
        return [self.points[i] for i in pareto_front(coords)]

    def best_loss(self) -> DSEPoint:
        return min(self.points, key=lambda p: p.loss)

    def smallest(self) -> DSEPoint:
        return min(self.points, key=lambda p: p.params)


def run_dse(seed_factory: Callable[[], Module], loss_fn: Callable,
            train_loader, val_loader,
            lambdas: Sequence[float], warmups: Sequence[int] = (5,),
            trainer_kwargs: Optional[Dict] = None,
            verbose: bool = False) -> DSEResult:
    """Sweep (λ, warmup); one full PIT search per grid point.

    ``seed_factory`` must return a *fresh* searchable seed each call so the
    runs are independent (identical init per the factory's internal seed).
    """
    trainer_kwargs = dict(trainer_kwargs or {})
    trainer_kwargs.pop("lam", None)
    trainer_kwargs.pop("warmup_epochs", None)
    points: List[DSEPoint] = []
    for warmup in warmups:
        for lam in lambdas:
            model = seed_factory()
            trainer = PITTrainer(model, loss_fn, lam=lam,
                                 warmup_epochs=warmup, **trainer_kwargs)
            result = trainer.fit(train_loader, val_loader)
            point = DSEPoint(
                lam=lam, warmup_epochs=warmup, dilations=result.dilations,
                params=result.effective_params, loss=result.best_val,
                result=result)
            points.append(point)
            if verbose:
                print(f"[DSE] lam={lam:g} warmup={warmup}: "
                      f"{point.params} params, loss={point.loss:.4f}, "
                      f"d={point.dilations}")
    return DSEResult(points=points)


def select_small_medium_large(points: Sequence[DSEPoint],
                              reference_params: int) -> Dict[str, DSEPoint]:
    """The paper's Table I selection rule over a set of DSE points.

    * ``small``: the smallest network found;
    * ``large``: the largest network found;
    * ``medium``: the closest in size to the hand-designed reference.
    """
    if not points:
        raise ValueError("no DSE points to select from")
    small = min(points, key=lambda p: p.params)
    large = max(points, key=lambda p: p.params)
    medium = min(points, key=lambda p: abs(p.params - reference_params))
    return {"small": small, "medium": medium, "large": large}
