"""Design-space-exploration engine (paper Sec. IV-B).

The paper obtains the Pareto fronts of Fig. 4 "by tweaking the λ
regularization-strength of PIT and the warmup duration".  This module
drives that sweep: one :class:`repro.core.PITTrainer` run per (λ, warmup)
pair, each from a fresh copy of the seed, collecting ``(params, loss)``
points plus the discovered dilations.

Grid points are independent, so :class:`DSEEngine` dispatches them to a
``concurrent.futures`` worker pool (threads by default, processes on
request) and reassembles the results in deterministic grid order — a
parallel sweep returns exactly the same :class:`DSEResult` as a serial
one.  To make that hold, every grid point trains against *private* loader
state (one pristine clone per worker, rewound per point): a shared
shuffling loader would otherwise thread its RNG state through the points
in submission order.

On top of the worker pool, ``stack=N`` turns on *stacked-model execution*:
up to N same-warmup grid points are grouped into one weight-stacked
program (:class:`repro.core.StackedPITTrainer`) whose parameters carry a
leading model axis, so the whole group trains through a single op graph
with batched conv kernels and per-model λ/early-stopping — amortizing the
per-op Python and BLAS-dispatch overhead N-fold.  Stack width is an
execution knob like ``compile_step``: it stays out of cache keys, and
unsupported models/loaders fall back to the sequential path per group.

Completed points can be memoized to a JSON cache file (see
:class:`DSECache`), making long sweeps resumable: a re-run with the same
grid and trainer settings skips finished points and only trains the rest.

Sweeps are *fault tolerant*: a failing grid point becomes a
``status="failed"`` :class:`DSEPoint` carrying the error instead of an
exception that kills the run; transient failures retry with exponential
backoff (``retries=``), points exceeding ``point_timeout`` seconds are
cancelled and marked failed, and non-finite losses surface as
:class:`repro.core.DivergedError` with a diagnosis.  Process-pool sweeps
survive worker death: on ``BrokenProcessPool`` the engine rebuilds the
pool and resubmits only unfinished points (shrunk by whatever the dying
worker already flushed to the cache), a poison point that kills workers
twice is quarantined, and after repeated pool deaths the engine degrades
to in-process sequential execution with a warning.  Every recovery path
is exercised deterministically by :mod:`repro.testing.faults`.

Deployment cost is a first-class objective: ``point_evaluators`` run after
each grid point trains (e.g. :func:`repro.hw.gap8_evaluator`, which exports
the discovered network, fake-quantizes it to int8 and prices it on the GAP8
model) and annotate the point's ``metrics`` dict; the cache persists them
(format version 2) and :meth:`DSEResult.pareto` accepts arbitrary objective
tuples such as ``("params", "latency_ms", "loss")``.

It also implements the small/medium/large selection rule of Tables I-III:
*small* = fewest parameters, *large* = most parameters, *medium* = closest
in size to the hand-engineered reference network — optionally along any
other objective (latency, energy, …) via ``objective=``.
"""

from __future__ import annotations

import copy
import json
import os
import random
import tempfile
import threading
import time
import warnings
import weakref
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import current_backend, use_backend
from ..autograd.graph import CompileConfig
from ..core.checkpoint import (
    checkpoint_dir_default,
    checkpoint_every_default,
    key_tag,
)
from ..core.stacked import StackedPITTrainer
from ..core.trainer import DivergedError, PITResult, PITTrainer
from ..data import DataLoader, clone_loader
from ..nn import Module
from ..nn.stacked import StackingUnsupported
from ..testing import faults
from .pareto import pareto_front

__all__ = ["DSEPoint", "DSEResult", "DSECache", "DSEEngine", "run_dse",
           "objective_value", "evaluator_name", "select_small_medium_large",
           "ENV_STACK", "ENV_WORKERS", "ENV_EXECUTOR",
           "stack_width_default", "workers_default", "executor_default"]

#: pool deaths a poison point may cause before it is quarantined
QUARANTINE_KILLS = 2
#: pool deaths per sweep before degrading to in-process sequential runs
MAX_POOL_DEATHS = 3

#: environment default for DSEEngine(stack=None), like REPRO_COMPILE_STEP
#: for the compile knob.
ENV_STACK = "REPRO_DSE_STACK"
#: environment defaults for DSEEngine(workers=None) / (executor=None), so
#: CI legs can run whole suites under pooled execution without editing
#: every engine construction (explicit arguments always win).
ENV_WORKERS = "REPRO_DSE_WORKERS"
ENV_EXECUTOR = "REPRO_DSE_EXECUTOR"


def stack_width_default() -> int:
    """Stack width used when ``DSEEngine(stack=None)``: ``REPRO_DSE_STACK``
    or 1 (sequential).  Read per call so tests can flip it."""
    raw = os.environ.get(ENV_STACK, "").strip()
    if not raw:
        return 1
    width = int(raw)
    if width < 1:
        raise ValueError(f"{ENV_STACK} must be >= 1, got {width}")
    return width


def workers_default() -> int:
    """Pool size used when ``DSEEngine(workers=None)``: ``REPRO_DSE_WORKERS``
    or 0 (serial).  Read per call so tests can flip it."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 0
    workers = int(raw)
    if workers < 0:
        raise ValueError(f"{ENV_WORKERS} must be >= 0, got {workers}")
    return workers


def executor_default() -> str:
    """Pool flavour used when ``DSEEngine(executor=None)``:
    ``REPRO_DSE_EXECUTOR`` (``thread``/``process``) or ``thread``."""
    return os.environ.get(ENV_EXECUTOR, "").strip() or "thread"


@dataclass
class DSEPoint:
    """One trained architecture in the design space.

    ``metrics`` holds post-training evaluator annotations (deployment cost,
    quantized accuracy, …) keyed by objective name; it is empty unless the
    sweep ran with ``point_evaluators``.

    ``status`` is ``"ok"`` for a trained point and ``"failed"`` for a grid
    point whose training raised, timed out or was quarantined — ``error``
    then carries the diagnosis and the numeric fields are placeholders
    (``loss=nan``, ``params=0``, empty dilations).  ``attempts`` counts
    training attempts (> 1 when transient-failure retries were needed).
    Failed points are excluded from every selection helper
    (:meth:`DSEResult.pareto`, :func:`select_small_medium_large`, …).
    """
    lam: float
    warmup_epochs: int
    dilations: Tuple[int, ...]
    params: int
    loss: float
    result: Optional[PITResult] = field(repr=False, default=None)
    metrics: Dict[str, float] = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _failed_point(lam: float, warmup: int, error, attempts: int = 1
                  ) -> DSEPoint:
    """The failed-point placeholder per-point isolation records."""
    if isinstance(error, BaseException):
        error = f"{type(error).__name__}: {error}"
    return DSEPoint(lam=float(lam), warmup_epochs=int(warmup), dilations=(),
                    params=0, loss=float("nan"), status="failed",
                    error=str(error), attempts=attempts)


def objective_value(point: DSEPoint, name: str) -> Optional[float]:
    """Resolve an objective by name: a dataclass field (``params``,
    ``loss``, ``lam``, …) or a ``metrics`` entry (``latency_ms``, …).
    Returns None when the point carries no such objective — including
    every objective of a failed point, whose numeric fields are
    placeholders, not measurements."""
    if point.status != "ok":
        return None
    value = getattr(point, name, None)
    if value is None or name in ("result", "metrics", "dilations",
                                 "status", "error"):
        value = point.metrics.get(name)
    return None if value is None else float(value)


@dataclass
class DSEResult:
    """Outcome of a full (λ × warmup) sweep.

    ``points`` covers the whole grid, failed points included (in grid
    order); the selection helpers below only ever consider ``ok`` points.
    """
    points: List[DSEPoint]

    @property
    def ok_points(self) -> List[DSEPoint]:
        return [p for p in self.points if p.ok]

    @property
    def failed_points(self) -> List[DSEPoint]:
        return [p for p in self.points if not p.ok]

    def pareto(self, objectives: Sequence[str] = ("params", "loss")
               ) -> List[DSEPoint]:
        """Non-dominated points along the named objectives (all minimized).

        Objectives resolve against dataclass fields first, then the
        ``metrics`` dict — e.g. ``("params", "latency_ms", "loss")`` for the
        hardware-aware 3-D front.  Points missing any requested objective
        (cached v1 entries, sweeps run without evaluators, failed points)
        are excluded.
        """
        keep: List[DSEPoint] = []
        coords: List[Tuple[float, ...]] = []
        for point in self.points:
            values = [objective_value(point, name) for name in objectives]
            if any(v is None for v in values):
                continue
            keep.append(point)
            coords.append(tuple(values))
        return [keep[i] for i in pareto_front(coords)]

    def best_loss(self) -> DSEPoint:
        ok = self.ok_points
        if not ok:
            raise ValueError("every grid point failed; no best-loss point")
        return min(ok, key=lambda p: p.loss)

    def smallest(self) -> DSEPoint:
        ok = self.ok_points
        if not ok:
            raise ValueError("every grid point failed; no smallest point")
        return min(ok, key=lambda p: p.params)


# ----------------------------------------------------------------------
# Results cache
# ----------------------------------------------------------------------

class DSECache:
    """JSON memo of completed DSE points, for resumable sweeps.

    File format (version 3)::

        {
          "version": 3,
          "points": {
            "<key>": {
              "lam": 0.02, "warmup_epochs": 5,
              "dilations": [1, 2, 4], "params": 1234, "loss": 0.567,
              "metrics": {"latency_ms": 112.6, "energy_mj": 29.5, ...},
              "result": { ... PITResult fields ... },
              "status": "ok", "error": null, "attempts": 1
            }, ...
          }
        }

    Version 2 added the ``metrics`` dict (post-training evaluator
    annotations: deployment latency/energy, quantized loss, …); version 3
    adds the failure fields (``status`` / ``error`` / ``attempts``) so an
    interrupted fault-tolerant sweep keeps its failure provenance on disk.
    Versions 1-2 are still accepted — their entries load with the missing
    fields defaulted (ok, no error) and the file is rewritten as version 3
    on the next recorded point.  Failed entries are *persisted but never
    served*: :meth:`get` treats them as missing, so a resumed sweep
    retries the failed grid points instead of trusting a placeholder.

    A cache file that no longer parses (truncated by a crash mid-write,
    garbage bytes) is never fatal and never silently ignored: the corrupt
    file is quarantined to ``<path>.corrupt`` (for post-mortems; an
    existing quarantine file is overwritten), a warning names both paths,
    and the cache starts fresh.

    Keys encode (tag, conv backend, λ, warmup, trainer settings, and the
    point evaluators that annotated the entry), so a cache file is never
    allowed to return a point trained under different hyper-parameters —
    or under a different conv backend, whose ~1e-12 per-call differences
    training can amplify into different dilations.  λ and warmup are
    normalized to native ``float``/``int`` first: a ``np.linspace`` grid
    (numpy scalars) must key identically to the same values spelled as
    Python floats, or resumed sweeps would silently retrain everything.
    The *tag* is the caller's name for the model/data
    identity (seed factory, dataset, width, …), which the engine cannot
    see into — callers sharing one cache file across different seeds or
    benchmarks must pass distinct ``cache_tag`` values (the CLI and the
    benchmark conftest do).  Writes are atomic (tempfile + rename) and
    guarded by a lock, so a thread-pooled engine can record completions
    concurrently.
    """

    VERSION = 3
    #: formats this reader understands (v1 = pre-metrics entries,
    #: v2 = pre-failure-fields entries)
    READABLE_VERSIONS = (1, 2, 3)

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._points: Dict[str, dict] = {}
        payload = self._load_payload(path)
        if payload is not None:
            self._points = dict(payload.get("points", {}))

    @classmethod
    def _load_payload(cls, path: str) -> Optional[dict]:
        """Read and validate the cache file; None when absent or corrupt.

        Corrupt files (unparseable JSON, non-dict payload) are quarantined
        to ``<path>.corrupt`` with a warning — a half-written file from a
        killed sweep must cost a retrain, not the whole run.  A *valid*
        file with an unsupported version still raises: that is a real
        format mismatch (e.g. a newer writer), not corruption, and
        silently discarding it would throw away good points.
        """
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise json.JSONDecodeError("payload is not an object", "", 0)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            quarantine = path + ".corrupt"
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantine = "<unmovable>"
            warnings.warn(
                f"DSE cache file {path!r} is corrupt ({exc}); quarantined "
                f"to {quarantine!r} and starting fresh", stacklevel=3)
            return None
        if payload.get("version") not in cls.READABLE_VERSIONS:
            raise ValueError(
                f"unsupported DSE cache version in {path!r}: "
                f"{payload.get('version')!r}")
        return payload

    @staticmethod
    def key(lam: float, warmup: int, trainer_kwargs: Dict,
            tag: str = "", backend: Optional[str] = None,
            evaluators: Sequence[str] = ()) -> str:
        try:
            settings = json.dumps(trainer_kwargs, sort_keys=True)
        except TypeError as exc:
            # Objects would have to be keyed by repr, which either embeds a
            # per-process memory address (cache never hits) or, stripped,
            # collapses differently-configured instances (cache hits
            # falsely).  Refuse loudly instead of being silently wrong.
            raise ValueError(
                "DSE caching requires JSON-serializable trainer settings; "
                f"got {trainer_kwargs!r}") from exc
        backend = backend if backend is not None else current_backend()
        # float()/int() so numpy scalars (np.linspace grids) and Python
        # numbers produce one key; !r on the *native* float keeps the full
        # precision the old format relied on.
        key = (f"tag={tag}|backend={backend}|lam={float(lam)!r}"
               f"|warmup={int(warmup)}|trainer={settings}")
        if evaluators:
            # Sweeps with different evaluator stacks do not share entries:
            # a point cached without hw metrics cannot satisfy an --hw
            # resume (the trained weights needed to compute them are gone).
            # Evaluator-less keys keep the legacy format so v1 files hit.
            # The name list is JSON-encoded, not bare-joined: names carry
            # arbitrary configuration strings (commas, pipes), and a
            # delimiter collision between different stacks would serve one
            # configuration another's cached metrics.
            key += f"|evaluators={json.dumps(list(evaluators))}"
        return key

    def __len__(self) -> int:
        return len(self._points)

    def get(self, key: str) -> Optional[DSEPoint]:
        """The ok point recorded under ``key``, else None.

        Failed entries are persisted provenance, not reusable results —
        they read as missing so a resumed sweep retries the point.
        """
        entry = self._points.get(key)
        if entry is None or entry.get("status", "ok") != "ok":
            return None
        return _point_from_dict(entry)

    def get_annotated(self, base_key: str) -> Optional[DSEPoint]:
        """An entry recorded under ``base_key`` by *some* evaluator stack.

        Keys are asymmetric on purpose: an entry without metrics can never
        satisfy an evaluator-carrying lookup (the trained weights needed to
        compute the missing metrics are gone).  The reverse is free — the
        same base key means the same training, evaluators only ran
        afterwards — so an evaluator-less resume falls back to any
        ``base_key|evaluators=...`` entry instead of retraining, keeping
        whatever metrics it carries as a bonus.  Deterministic when several
        evaluator stacks recorded the point (lexicographically first key).
        """
        prefix = base_key + "|evaluators="
        for key in sorted(self._points):
            if (key.startswith(prefix)
                    and self._points[key].get("status", "ok") == "ok"):
                return _point_from_dict(self._points[key])
        return None

    def put(self, key: str, point: DSEPoint) -> None:
        with self._lock:
            self._points[key] = _point_to_dict(point)
            self._flush()
        faults.corrupt_cache_file(self.path)

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # Merge points other *processes* recorded since our load — a
        # whole-file rewrite from just this process's map would erase them.
        # (The remaining read-merge-write race window is microseconds;
        # within one process the lock serializes flushes entirely.)
        # A corrupt on-disk file takes the same quarantine-and-warn path
        # as the constructor (it used to be swallowed silently here): our
        # own map still flushes, the garbage moves to <path>.corrupt.
        payload = self._load_payload(self.path)
        if payload is not None:
            merged = dict(payload.get("points", {}))
            merged.update(self._points)
            self._points = merged
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"version": self.VERSION, "points": self._points},
                          handle, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


def _to_native(value):
    """Recursively coerce numpy scalars/arrays to JSON-native Python types.

    Grid values, parameter counts and evaluator metrics routinely arrive as
    ``np.float64``/``np.int64`` (anything touched by numpy does); ``json``
    refuses to serialize those, which used to crash :meth:`DSECache.put`.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _to_native(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_native(v) for v in value]
    return value


def _point_to_dict(point: DSEPoint) -> dict:
    entry = {
        "lam": point.lam,
        "warmup_epochs": point.warmup_epochs,
        "dilations": list(point.dilations),
        "params": point.params,
        "loss": point.loss,
        "metrics": dict(point.metrics),
        "status": point.status,
        "error": point.error,
        "attempts": point.attempts,
    }
    if point.result is not None:
        entry["result"] = asdict(point.result)
    return _to_native(entry)


def _point_from_dict(entry: dict) -> DSEPoint:
    result = None
    if entry.get("result") is not None:
        fields = dict(entry["result"])
        fields["dilations"] = tuple(fields["dilations"])
        result = PITResult(**fields)
    return DSEPoint(
        lam=entry["lam"], warmup_epochs=entry["warmup_epochs"],
        dilations=tuple(entry["dilations"]), params=entry["params"],
        loss=entry["loss"], result=result,
        metrics=dict(entry.get("metrics") or {}),  # absent in v1 entries
        status=entry.get("status", "ok"),          # absent in v1/v2 entries
        error=entry.get("error"),
        attempts=int(entry.get("attempts", 1)))


# ----------------------------------------------------------------------
# Execution engine
# ----------------------------------------------------------------------

# Every piece of mutable loader state must be private per grid point for
# parallel sweeps to be bit-identical to serial ones; the shared helper
# lives in repro.data (deployment evaluators apply the same discipline).
_private_loader = clone_loader

# Per-worker (thread/process) loader cache for the sequential grid-point
# path.  The engine's template loaders are never iterated, so every grid
# point used to deep-copy them afresh just to start from the same pristine
# RNG state; for plain DataLoaders the only mutable state *is* that RNG,
# so one clone per worker rewound to its pristine bit-state per point is
# bit-identical and skips the repeated deepcopy.  Thread-local so pooled
# workers never share a clone; subclassed loaders (unknown extra state)
# keep the old clone-per-point behaviour.  Entries hold the template by
# *weak* reference: a clone pins the (shared) dataset arrays, so a strong
# key would leak every dataset a long-lived process ever swept over.
_LOADER_CACHE = threading.local()


def _rng_states_equal(a, b) -> bool:
    """Deep-compare bit-generator state trees.

    MT19937/Philox/SFC64 states embed numpy arrays, on which plain dict
    ``==`` raises ("truth value of an array is ambiguous"); PCG64 states
    are int-only.  Handle both.
    """
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_rng_states_equal(a[k], b[k]) for k in a))
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    return a == b


def _worker_loader(template, role: str = "train") -> "DataLoader":
    """One pristine clone per (worker, template, role), rewound per point.

    ``role`` keeps aliased loaders independent: a caller passing the *same*
    loader object as both train and val must still get two distinct clones
    (two independent RNG streams), exactly as clone-per-point produced.
    """
    if type(template) is not DataLoader:
        return _private_loader(template)
    cache = getattr(_LOADER_CACHE, "map", None)
    if cache is None:
        cache = _LOADER_CACHE.map = {}
    # Evict entries whose template died: their clones would otherwise pin
    # the dataset arrays for the life of the worker thread.
    for key in [k for k, (ref, _, _) in cache.items() if ref() is None]:
        del cache[key]
    entry = cache.get((id(template), role))
    state = template.rng.bit_generator.state
    # Re-clone when the entry is missing, the id was reused by a different
    # loader object, or the caller advanced the template's RNG since we
    # snapshotted it — a fresh clone must start from the template's
    # *current* state, exactly like clone-per-point did.
    if (entry is None or entry[0]() is not template
            or not _rng_states_equal(entry[2], state)):
        clone = _private_loader(template)
        cache[(id(template), role)] = (
            weakref.ref(template), clone,
            copy.deepcopy(clone.rng.bit_generator.state))
        return clone
    _, clone, pristine = entry
    clone.rng.bit_generator.state = copy.deepcopy(pristine)
    return clone


def _train_grid_point(seed_factory: Callable[[], Module], loss_fn: Callable,
                      train_loader, val_loader, lam: float, warmup: int,
                      trainer_kwargs: Dict, backend: str,
                      compile_cfg: Optional[CompileConfig] = None,
                      point_evaluators: Optional[Sequence[Callable]] = None,
                      ckpt_dir: Optional[str] = None,
                      ckpt_every: Optional[int] = None,
                      ckpt_tag: Optional[str] = None) -> DSEPoint:
    """Train one (λ, warmup) grid point from a fresh seed.

    Module-level (not a closure) so a ``ProcessPoolExecutor`` can pickle it.
    Each point gets private loader copies so it consumes its own shuffle
    RNG stream — this is what makes parallel sweeps bit-identical to
    serial ones regardless of completion order.  ``backend`` is the conv
    backend captured by the engine at sweep start; it is applied as a
    thread-local :func:`use_backend` scope so the whole grid point trains
    under exactly the backend its cache key records, even if a spawned
    worker's import-time default differs or another thread switches
    backends mid-sweep.  ``compile_cfg`` (a picklable
    :class:`repro.autograd.graph.CompileConfig`) selects the execution
    tier inside the worker's :class:`PITTrainer` — step compilation,
    optimization level, executor mode and whole-loop capture — with each
    grid point tracing once per phase and replaying for every batch; the
    compiled-vs-eager bit-parity guarantee is what lets cached and fresh
    results mix freely (cache keys do not record any of these knobs).
    ``point_evaluators`` run after training, while the trained model is
    still in hand, and merge their returned dicts into ``DSEPoint.metrics``
    — still inside the backend scope, so evaluation forward passes use the
    same kernels the cache key records.  ``ckpt_dir``/``ckpt_every``/
    ``ckpt_tag`` enable mid-run trainer checkpoints: a retried, resubmitted
    or abandoned-and-reswept point resumes bit-exactly from its last epoch
    boundary instead of retraining from scratch (the tag is derived from
    the point's cache key, so every execution strategy addresses the same
    file).
    """
    train_loader = _worker_loader(train_loader, "train")
    val_loader = _worker_loader(val_loader, "val")
    model = seed_factory()
    ckpt_kwargs = {}
    if ckpt_dir and ckpt_tag:
        ckpt_kwargs = dict(checkpoint_dir=ckpt_dir,
                           checkpoint_every=ckpt_every,
                           checkpoint_tag=ckpt_tag)
    trainer = PITTrainer(model, loss_fn, lam=lam, warmup_epochs=warmup,
                         compile_config=compile_cfg, **ckpt_kwargs,
                         **trainer_kwargs)
    with use_backend(backend):
        result = trainer.fit(train_loader, val_loader)
        point = DSEPoint(
            lam=lam, warmup_epochs=warmup, dilations=result.dilations,
            params=result.effective_params, loss=result.best_val,
            result=result)
        for evaluator in (point_evaluators or ()):
            annotations = evaluator(model, point)
            if annotations:
                point.metrics.update(annotations)
    return point


def _train_grid_stack(seed_factory: Callable[[], Module], loss_fn: Callable,
                      train_loader, val_loader, warmup: int,
                      lams: Sequence[float], trainer_kwargs: Dict,
                      backend: str,
                      compile_cfg: Optional[CompileConfig] = None,
                      point_evaluators: Optional[Sequence[Callable]] = None,
                      ckpt_dir: Optional[str] = None,
                      ckpt_every: Optional[int] = None,
                      ckpt_tags: Optional[Sequence[str]] = None
                      ) -> List[DSEPoint]:
    """Train a group of same-warmup grid points as one weight-stacked run.

    The whole group shares one seed instantiation, one loader clone (the
    :class:`repro.data.EpochReplayLoader` inside the stacked trainer) and
    one op graph; per-model λ scaling and early stopping keep each point's
    trajectory equivalent to its sequential run.  Models whose structure
    cannot stack (channel masks, unsupported layers, non-plain loaders)
    raise :class:`StackingUnsupported` *before any training*; the caller
    (:func:`_train_grid_chunk`) falls back to the sequential per-point
    path — so stacking is purely an execution-speed knob, never a
    correctness one.  A :class:`DivergedError` mid-stack likewise bubbles
    up for a sequential re-run: one diverged slice poisons the shared
    stacked loss, so only per-point training can isolate the culprit.
    """
    lams = [float(lam) for lam in lams]
    ckpt_kwargs = {}
    if ckpt_dir and ckpt_tags and all(ckpt_tags):
        # Per-slice files named by each point's cache-key tag: the stacked
        # run checkpoints into (and resumes from) the same per-point files
        # a sequential sweep of the group would use.
        ckpt_kwargs = dict(checkpoint_dir=ckpt_dir,
                           checkpoint_every=ckpt_every,
                           checkpoint_tags=list(ckpt_tags))
    with use_backend(backend):
        template = seed_factory()
        trainer = StackedPITTrainer(
            template, loss_fn, lams=lams, warmup_epochs=warmup,
            compile_config=compile_cfg, **ckpt_kwargs, **trainer_kwargs)
        results = trainer.fit(train_loader, val_loader)
        points = []
        for i, result in enumerate(results):
            point = DSEPoint(
                lam=lams[i], warmup_epochs=warmup, dilations=result.dilations,
                params=result.effective_params, loss=result.best_val,
                result=result)
            if point_evaluators:
                # Materialize this slice into the (sequential-shaped)
                # template so evaluators see a normal trained model.
                model = trainer.model_for(i)
                for evaluator in point_evaluators:
                    annotations = evaluator(model, point)
                    if annotations:
                        point.metrics.update(annotations)
            points.append(point)
    return points


def _backoff_sleep(index: int, attempt: int, backoff: float) -> None:
    """Exponential backoff with deterministic jitter before a retry.

    The jitter RNG is seeded from (grid index, attempt) so two runs of the
    same faulted sweep sleep identically — reproducibility extends to the
    recovery schedule, not just the results.
    """
    if backoff <= 0:
        return
    jitter = random.Random((index + 1) * 1000003 + attempt).uniform(0.0, 0.5)
    time.sleep(backoff * (2.0 ** (attempt - 1)) * (1.0 + jitter))


def _train_point_isolated(seed_factory, loss_fn, train_loader, val_loader,
                          index: int, warmup: int, lam: float,
                          trainer_kwargs: Dict, backend: str,
                          compile_cfg, point_evaluators,
                          retries: int, retry_backoff: float,
                          ckpt_dir: Optional[str] = None,
                          ckpt_every: Optional[int] = None,
                          ckpt_tag: Optional[str] = None) -> DSEPoint:
    """Per-point failure isolation: always returns a DSEPoint.

    Transient exceptions retry up to ``retries`` times with exponential
    backoff; :class:`DivergedError` is permanent (the same data and seed
    diverge again, so a retry just burns the epochs twice) and fails the
    point immediately.  ``BaseException`` (KeyboardInterrupt, worker
    ``os._exit``) deliberately passes through — interruption is the
    caller's policy, not a point failure.  With checkpointing on, a retry
    resumes from the point's latest epoch-boundary snapshot instead of
    paying the finished epochs again.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            with faults.point_scope((index,)):
                faults.inject_point_faults()
                point = _train_grid_point(
                    seed_factory, loss_fn, train_loader, val_loader, lam,
                    warmup, trainer_kwargs, backend, compile_cfg,
                    point_evaluators, ckpt_dir, ckpt_every, ckpt_tag)
            point.attempts = attempt
            return point
        except DivergedError as exc:
            return _failed_point(lam, warmup, exc, attempt)
        except Exception as exc:
            if attempt <= retries:
                _backoff_sleep(index, attempt, retry_backoff)
                continue
            return _failed_point(lam, warmup, exc, attempt)


def _chunk_cache(cache_path: Optional[str]) -> Optional["DSECache"]:
    """The worker-side cache handle for mid-chunk durability, or None.

    Worker flushes make every completed point durable the moment it
    finishes — a later crash (of this worker or the whole pool) can then
    only cost the in-flight point, and the engine's recovery resubmission
    shrinks to whatever is still missing on disk.
    """
    if not cache_path:
        return None
    try:
        return DSECache(cache_path)
    except ValueError:
        return None  # version mismatch: the parent will complain loudly


def _train_grid_chunk(seed_factory: Callable[[], Module], loss_fn: Callable,
                      train_loader, val_loader,
                      chunk: Sequence[Tuple[int, int, float]],
                      trainer_kwargs: Dict, backend: str,
                      compile_cfg: Optional[CompileConfig] = None,
                      point_evaluators: Optional[Sequence[Callable]] = None,
                      retries: int = 0, retry_backoff: float = 0.0,
                      cache_path: Optional[str] = None,
                      cache_keys: Optional[Dict[int, str]] = None,
                      ckpt_dir: Optional[str] = None,
                      ckpt_every: Optional[int] = None,
                      ckpt_tags: Optional[Dict[int, str]] = None
                      ) -> List[DSEPoint]:
    """One worker task: ``(index, warmup, lam)`` points, all same warmup.

    Singleton chunks take the exact sequential ``_train_grid_point`` path —
    which is why ``stack=1`` is bit-identical to the pre-stacking engine.
    Module-level so a ``ProcessPoolExecutor`` can pickle it.

    Failures never escape as exceptions (except ``BaseException``): each
    point trains through :func:`_train_point_isolated`.  A multi-point
    stacked chunk first attempts the weight-stacked fast path; a
    :class:`StackingUnsupported` model, a mid-stack divergence (one NaN
    slice poisons the shared loss) or any other stacked failure falls
    back to isolated per-point training, which pins the blame on the
    culprit point alone.
    """
    cache = _chunk_cache(cache_path)

    def flush(index: int, point: DSEPoint) -> None:
        if cache is not None and cache_keys and index in cache_keys:
            cache.put(cache_keys[index], point)

    def tag_of(index: int) -> Optional[str]:
        return ckpt_tags.get(index) if ckpt_tags else None

    if len(chunk) > 1:
        indices = [index for index, _, _ in chunk]
        warmup = chunk[0][1]
        try:
            with faults.point_scope(indices):
                faults.inject_point_faults()
                points = _train_grid_stack(
                    seed_factory, loss_fn, train_loader, val_loader, warmup,
                    [lam for _, _, lam in chunk], trainer_kwargs, backend,
                    compile_cfg, point_evaluators, ckpt_dir, ckpt_every,
                    [tag_of(index) for index in indices])
        except Exception:
            points = None  # StackingUnsupported, divergence, …: isolate
                           # per point below
        if points is not None:
            for (index, _, _), point in zip(chunk, points):
                flush(index, point)
            return points

    out: List[DSEPoint] = []
    for index, warmup, lam in chunk:
        point = _train_point_isolated(
            seed_factory, loss_fn, train_loader, val_loader, index, warmup,
            lam, trainer_kwargs, backend, compile_cfg, point_evaluators,
            retries, retry_backoff, ckpt_dir, ckpt_every, tag_of(index))
        flush(index, point)
        out.append(point)
    return out


def evaluator_name(evaluator: Callable) -> str:
    """Stable cache-key identity of a point evaluator.

    Preference order: an explicit ``cache_name`` attribute (class-based
    evaluators like :func:`repro.hw.gap8_evaluator` derive one from their
    configuration), then the function ``__name__``.  Must not embed
    per-process state (memory addresses) or resumed sweeps would never
    hit.  Anonymous callables — lambdas, ``functools.partial`` — are
    refused: they all render alike (``<lambda>`` / ``partial``), so two
    differently-configured evaluators would silently share cache entries
    and serve each other's metrics.  Give them a ``cache_name``.
    """
    name = getattr(evaluator, "cache_name", None)
    if name:
        return str(name)
    name = getattr(evaluator, "__name__", None)
    if name and name != "<lambda>":
        return name
    raise ValueError(
        f"point evaluator {evaluator!r} has no stable cache identity; "
        "set a cache_name attribute (anonymous callables key "
        "indistinguishably, which would mis-attribute cached metrics)")


class DSEEngine:
    """Dispatches a (λ × warmup) sweep across a worker pool.

    Parameters
    ----------
    seed_factory:
        Zero-argument callable returning a *fresh* searchable seed; runs
        are independent (identical init per the factory's internal seed).
        Must be picklable when ``executor="process"``.
    loss_fn:
        Task loss passed to :class:`repro.core.PITTrainer`.
    train_loader, val_loader:
        Data loaders; each grid point trains on private deep copies.
    workers:
        Pool size.  ``0`` or ``1`` trains the grid serially in-process;
        None (default) defers to ``REPRO_DSE_WORKERS`` (or 0).
    executor:
        ``"thread"`` (numpy releases the GIL inside the GEMM-heavy
        hot path, so threads scale) or ``"process"`` (full isolation, but
        the factory / loss / loaders must pickle — no lambdas or closures);
        None (default) defers to ``REPRO_DSE_EXECUTOR`` (or ``thread``).
    cache_path:
        Optional JSON results cache (see :class:`DSECache`); completed
        points found there are returned without retraining.
    cache_tag:
        Identity string mixed into every cache key, naming what the engine
        cannot introspect: the seed factory and data (benchmark, width,
        seed, …).  Required discipline whenever one cache file serves
        sweeps over different models or datasets.
    trainer_kwargs:
        Extra :class:`PITTrainer` arguments shared by every grid point
        (``lam`` / ``warmup_epochs`` are stripped: the grid owns them;
        the graph-execution knobs are stripped into ``compile_config``).
    compile_config:
        A :class:`repro.autograd.graph.CompileConfig` selecting the
        execution tier for every grid point — step compilation
        (``compile_step``), optimization level (``graph_opt``), executor
        mode (``graph_exec``) and whole-loop capture (``loop_capture``).
        Picklable, so it ships to process-pool workers as-is; ``None``
        fields defer to the ``REPRO_*`` environment inside each worker.
        Deliberately *not* part of the cache key — every tier is
        bit-identical to eager, so points trained under any of them are
        interchangeable.  The loose ``compile_step`` / ``graph_opt`` /
        ``graph_exec`` / ``loop_capture`` keyword arguments survive as a
        deprecated shim (config fields win).
    stack:
        Stacked-model execution width: up to ``stack`` same-warmup grid
        points train as *one* weight-stacked model
        (:class:`repro.core.StackedPITTrainer`) — one op graph, batched
        conv kernels, per-model λ and early stopping.  ``1`` (the default)
        is the exact sequential path; None defers to ``REPRO_DSE_STACK``.
        Like ``compile_step``/``graph_opt`` this is an execution-speed
        knob kept *out* of cache keys: stacked results match sequential
        within floating-point reduction-order tolerance, so stacked and
        sequential sweeps resume from and write to the same entries.
        Models or loaders without a stacked path fall back to sequential
        training automatically (per chunk).
    point_evaluators:
        Post-training hooks, each called as ``evaluator(model, point)``
        with the trained (still searchable) model; the returned
        ``Dict[str, float]`` is merged into ``DSEPoint.metrics`` and
        persisted by the cache.  :func:`repro.hw.gap8_evaluator` is the
        canonical one (int8 fake-quantization + GAP8 latency/energy).
        Evaluator identities (``cache_name``) are part of the cache key:
        points cached without hardware metrics cannot satisfy a
        hardware-aware resume, because the weights needed to compute the
        missing metrics are not persisted.  (The reverse resume is free:
        an evaluator-less sweep falls back to annotated entries, which are
        a superset.)  Must be picklable when ``executor="process"``.
    retries:
        Transient-failure retries per grid point (default 0).  A point
        whose training raises retrains up to ``retries`` more times with
        exponential backoff before being marked failed;
        :class:`repro.core.DivergedError` never retries (divergence is
        deterministic — same seed, same data, same NaN).
    retry_backoff:
        Base backoff in seconds before retry N sleeps
        ``retry_backoff * 2**(N-1)`` (plus deterministic jitter).
    point_timeout:
        Wall-clock budget *per grid point* in seconds (pooled execution
        only).  A chunk of K points gets ``K * point_timeout``; on expiry
        its unfinished points are marked failed and the future is
        cancelled/abandoned — a hung point costs its own budget, not the
        sweep.  None (default) disables the deadline.
    checkpoint_dir:
        Optional directory for *mid-run trainer checkpoints* (see
        :class:`repro.core.TrainerCheckpoint`): every grid point snapshots
        its complete training state at epoch boundaries, so a retried,
        pool-resubmitted, timed-out-and-reswept or interrupted-and-rerun
        point resumes bit-exactly from its last finished epoch instead of
        retraining from scratch.  Files are named by each point's cache-key
        tag, so sequential, pooled and stacked execution all address the
        same per-point file; like the compile/stack knobs this is an
        execution knob kept *out* of cache keys.  None (default) defers to
        ``REPRO_CKPT_DIR``; unset means no checkpointing.  Checkpoints
        complement the results cache: the cache skips *finished* points,
        checkpoints recover *in-flight* ones.
    checkpoint_every:
        Snapshot cadence in epochs (checkpoint every Nth boundary); None
        defers to ``REPRO_CKPT_EVERY`` (default 1, every epoch).

    After each :meth:`run`, ``last_run_stats`` reports the recovery
    machinery's activity: pool deaths, timeouts, quarantined points,
    failed/retried counts, epochs recovered from checkpoints
    (``resumed_epochs``), and whether the sweep degraded to sequential
    execution.
    """

    def __init__(self, seed_factory: Callable[[], Module], loss_fn: Callable,
                 train_loader, val_loader, *, workers: Optional[int] = None,
                 executor: Optional[str] = None,
                 cache_path: Optional[str] = None,
                 cache_tag: str = "",
                 trainer_kwargs: Optional[Dict] = None,
                 verbose: bool = False,
                 compile_step: Optional[bool] = None,
                 graph_opt: Optional[str] = None,
                 graph_exec: Optional[str] = None,
                 loop_capture: Optional[bool] = None,
                 compile_config: Optional[CompileConfig] = None,
                 stack: Optional[int] = None,
                 point_evaluators: Optional[Sequence[Callable]] = None,
                 retries: int = 0, retry_backoff: float = 0.1,
                 point_timeout: Optional[float] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: Optional[int] = None):
        if workers is None:
            workers = workers_default()
        if executor is None:
            executor = executor_default()
        if executor not in ("thread", "process"):
            raise ValueError("executor must be 'thread' or 'process'")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        self.seed_factory = seed_factory
        self.loss_fn = loss_fn
        self.train_loader = train_loader
        self.val_loader = val_loader
        self.workers = workers
        self.executor = executor
        self.cache = DSECache(cache_path) if cache_path else None
        self.cache_tag = cache_tag
        self._run_backend = current_backend()  # re-pinned at each run()
        self.trainer_kwargs = dict(trainer_kwargs or {})
        self.trainer_kwargs.pop("lam", None)
        self.trainer_kwargs.pop("warmup_epochs", None)
        # The graph-execution knobs are execution-speed knobs with
        # bit-identical results, so all of them are stripped from
        # trainer_kwargs and kept out of cache keys.  Engine kwargs win
        # over trainer_kwargs spellings; an explicit CompileConfig wins
        # over both loose layers.
        kwargs_cfg = self.trainer_kwargs.pop("compile_config", None)
        kwargs_compile = self.trainer_kwargs.pop("compile_step", None)
        kwargs_opt = self.trainer_kwargs.pop("graph_opt", None)
        kwargs_exec = self.trainer_kwargs.pop("graph_exec", None)
        kwargs_loop = self.trainer_kwargs.pop("loop_capture", None)
        cfg = CompileConfig.resolve(
            compile_config if compile_config is not None else kwargs_cfg,
            compile_step=(compile_step if compile_step is not None
                          else kwargs_compile),
            graph_opt=graph_opt if graph_opt is not None else kwargs_opt,
            graph_exec=graph_exec if graph_exec is not None else kwargs_exec,
            loop_capture=(loop_capture if loop_capture is not None
                          else kwargs_loop))
        self.compile_config = cfg.validate()
        self.compile_step = cfg.compile_step
        self.graph_opt = cfg.graph_opt
        self.graph_exec = cfg.graph_exec
        self.loop_capture = cfg.loop_capture
        # Stack width: how many same-warmup grid points train as one
        # weight-stacked model (see repro.core.StackedPITTrainer).  An
        # execution-speed knob like compile_step/graph_opt — results match
        # sequential within fp tolerance and the width never enters cache
        # keys, so stacked and sequential sweeps share entries.  None
        # defers to REPRO_DSE_STACK; 1 is the exact sequential path.
        kwargs_stack = self.trainer_kwargs.pop("stack", None)
        if stack is None:
            stack = kwargs_stack
        self.stack = int(stack) if stack is not None else stack_width_default()
        if self.stack < 1:
            raise ValueError("stack width must be >= 1")
        # Checkpointing is an execution knob like compile/stack: stripped
        # from trainer_kwargs (the engine owns per-point tags and resume)
        # and kept out of cache keys.  Engine kwargs win over trainer_kwargs
        # spellings; both fall back to the REPRO_CKPT_* environment.
        kwargs_ckpt_dir = self.trainer_kwargs.pop("checkpoint_dir", None)
        kwargs_ckpt_every = self.trainer_kwargs.pop("checkpoint_every", None)
        self.trainer_kwargs.pop("checkpoint_tag", None)
        self.trainer_kwargs.pop("checkpoint_tags", None)
        self.trainer_kwargs.pop("checkpoint_resume", None)
        if checkpoint_dir is None:
            checkpoint_dir = kwargs_ckpt_dir
        if checkpoint_dir is None:
            checkpoint_dir = checkpoint_dir_default()
        if checkpoint_every is None:
            checkpoint_every = kwargs_ckpt_every
        self.checkpoint_dir = checkpoint_dir or None
        self.checkpoint_every = (int(checkpoint_every)
                                 if checkpoint_every is not None
                                 else checkpoint_every_default())
        self.point_evaluators = list(point_evaluators or [])
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.point_timeout = (None if point_timeout is None
                              else float(point_timeout))
        self.verbose = verbose
        self.last_run_stats: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[DSE] {message}")

    def _grid(self, lambdas: Sequence[float],
              warmups: Sequence[int]) -> List[Tuple[int, float]]:
        return [(warmup, lam) for warmup in warmups for lam in lambdas]

    def _train_one(self, lam: float, warmup: int) -> DSEPoint:
        return _train_grid_point(self.seed_factory, self.loss_fn,
                                 self.train_loader, self.val_loader,
                                 lam, warmup, self.trainer_kwargs,
                                 self._run_backend, self.compile_config,
                                 self.point_evaluators)

    def _train_chunk(self, chunk: Sequence[Tuple[int, int, float]]
                     ) -> List[DSEPoint]:
        return _train_grid_chunk(self.seed_factory, self.loss_fn,
                                 self.train_loader, self.val_loader,
                                 list(chunk), self.trainer_kwargs,
                                 self._run_backend, self.compile_config,
                                 self.point_evaluators,
                                 self.retries, self.retry_backoff,
                                 self.cache.path if self.cache else None,
                                 self._chunk_keys(chunk),
                                 self.checkpoint_dir, self.checkpoint_every,
                                 self._chunk_ckpt_tags(chunk))

    def _chunk_keys(self, chunk: Sequence[Tuple[int, int, float]]
                    ) -> Optional[Dict[int, str]]:
        """Parent-computed cache keys, shipped with the chunk so workers
        can flush each completed point immediately (mid-chunk durability)."""
        if self.cache is None:
            return None
        return {index: self._key(lam, warmup)
                for index, warmup, lam in chunk}

    def _chunk_ckpt_tags(self, chunk: Sequence[Tuple[int, int, float]]
                         ) -> Optional[Dict[int, str]]:
        """Per-point checkpoint-file tags, derived from the cache *key*
        (not the cache) so sweeps without a results cache still get stable
        per-point files, and every execution strategy — sequential, pooled,
        stacked — resumes the same point from the same file."""
        if not self.checkpoint_dir:
            return None
        try:
            return {index: key_tag(self._key(lam, warmup))
                    for index, warmup, lam in chunk}
        except ValueError:
            # Unserializable trainer settings: no stable point identity,
            # so no checkpoint files (training still runs).
            return None

    def _chunk_pending(self, pending: Sequence[Tuple[int, int, float]]
                       ) -> List[List[Tuple[int, int, float]]]:
        """Group pending grid points into stack-compatible chunks.

        Compatibility means *same warmup*: every model in a stack must hit
        its phase boundaries on the same epochs (λ is free to differ — it
        only scales the per-model loss).  Within each warmup group, grid
        order is preserved and split into runs of at most ``self.stack``
        points; ``stack=1`` yields singleton chunks, i.e. exactly the
        sequential per-point schedule.
        """
        if self.stack <= 1:
            return [[entry] for entry in pending]
        groups: "OrderedDict[int, List[Tuple[int, int, float]]]" = OrderedDict()
        for entry in pending:
            groups.setdefault(entry[1], []).append(entry)
        chunks: List[List[Tuple[int, int, float]]] = []
        for entries in groups.values():
            for start in range(0, len(entries), self.stack):
                chunks.append(entries[start:start + self.stack])
        return chunks

    def run(self, lambdas: Sequence[float],
            warmups: Sequence[int] = (5,)) -> DSEResult:
        """Sweep the grid; points come back in grid order regardless of
        worker count or completion order.

        Failures stay inside the result: a raising, diverging, timed-out
        or worker-killing grid point becomes a ``status="failed"``
        :class:`DSEPoint` and the sweep keeps going.  The only exceptions
        that escape are ``BaseException`` (KeyboardInterrupt & co.) —
        pending futures are cancelled, already-completed points are in
        the cache, and the interrupted sweep resumes from there.
        """
        # Pin the conv backend for the whole sweep: workers (which may be
        # spawned processes with their own import-time default) train under
        # it, and cache keys record it — values and keys cannot diverge.
        self._run_backend = current_backend()
        grid = self._grid(lambdas, warmups)
        points: List[Optional[DSEPoint]] = [None] * len(grid)
        pending: List[Tuple[int, int, float]] = []
        stats: Dict[str, object] = {
            "pool_deaths": 0, "timeouts": 0, "chunk_failures": 0,
            "quarantined": [], "degraded": False, "failed": 0, "retried": 0,
            "resumed_epochs": 0,
        }
        self.last_run_stats = stats

        for index, (warmup, lam) in enumerate(grid):
            cached = None
            if self.cache is not None:
                key = self._key(lam, warmup)
                cached = self.cache.get(key)
                if cached is None and not self.point_evaluators:
                    # A hardware-annotated sweep trained this exact point;
                    # its entry is a superset of what we need.
                    cached = self.cache.get_annotated(key)
            if cached is not None:
                points[index] = cached
                self._log(f"lam={lam:g} warmup={warmup}: cached "
                          f"({cached.params} params, loss={cached.loss:.4f})")
            else:
                pending.append((index, warmup, lam))

        if pending:
            chunks = self._chunk_pending(pending)
            if self.workers > 1:
                self._run_pooled(chunks, points, stats)
            else:
                self._run_sequential(chunks, points)

        stats["failed"] = sum(1 for p in points if p is not None and not p.ok)
        stats["retried"] = sum(1 for p in points
                               if p is not None and p.attempts > 1)
        return DSEResult(points=list(points))

    def _run_sequential(self, chunks, points) -> None:
        """In-process execution (workers <= 1): chunk by chunk, isolated."""
        for chunk in chunks:
            trained = self._train_chunk(chunk)
            for (index, _, _), point in zip(chunk, trained):
                points[index] = self._record(point)

    def _make_pool(self):
        pool_cls = (ThreadPoolExecutor if self.executor == "thread"
                    else ProcessPoolExecutor)
        return pool_cls(max_workers=self.workers)

    def _deadline(self, chunk_len: int) -> Optional[float]:
        if self.point_timeout is None:
            return None
        return time.monotonic() + self.point_timeout * chunk_len

    def _submit(self, pool, inflight, chunk) -> None:
        future = pool.submit(
            _train_grid_chunk, self.seed_factory, self.loss_fn,
            self.train_loader, self.val_loader, list(chunk),
            self.trainer_kwargs, self._run_backend, self.compile_config,
            self.point_evaluators, self.retries, self.retry_backoff,
            self.cache.path if self.cache else None, self._chunk_keys(chunk),
            self.checkpoint_dir, self.checkpoint_every,
            self._chunk_ckpt_tags(chunk))
        inflight[future] = (list(chunk), self._deadline(len(chunk)))

    def _run_pooled(self, chunks, points, stats) -> None:
        """Windowed pool execution with deadlines and crash recovery.

        At most ``workers`` chunks are in flight at once (instead of
        submitting the whole grid up front), so when a process pool dies
        the set of chunks that *could* have been running is small and
        recovery stays precise: suspects are re-probed **one at a time**
        — the only chunk in flight — which makes the next death's blame
        exact.  A point that dies alone ``QUARANTINE_KILLS`` times is a
        poison point and is quarantined as failed; after
        ``MAX_POOL_DEATHS`` the engine stops trusting pools entirely and
        degrades to in-process sequential execution with a warning.
        Cache-backed recovery never re-trains what a dying worker already
        flushed: suspects found on disk are claimed, not resubmitted.
        """
        queue = deque(chunks)        # unsubmitted chunks, grid order
        probing = deque()            # post-death suspects, probed solo
        inflight: Dict = {}          # future -> (entries, deadline)
        kill_counts: Dict[int, int] = {}
        pool = self._make_pool()

        def collect_dead() -> List[Tuple[int, int, float]]:
            dead = []
            for future, (entries, _) in inflight.items():
                future.cancel()
                dead.extend(e for e in entries if points[e[0]] is None)
            inflight.clear()
            return dead

        def on_pool_death(dead) -> None:
            nonlocal pool
            stats["pool_deaths"] += 1
            pool.shutdown(wait=False, cancel_futures=True)
            # Blame is only precise when exactly one entry can have been
            # running — a solo probe.  Group deaths accuse nobody; their
            # members go to the probe queue instead.
            if len(dead) == 1:
                index, warmup, lam = dead[0]
                kills = kill_counts.get(index, 0) + 1
                kill_counts[index] = kills
                if kills >= QUARANTINE_KILLS:
                    stats["quarantined"].append((lam, warmup))
                    points[index] = self._record(_failed_point(
                        lam, warmup,
                        f"quarantined: killed {kills} pool workers",
                        attempts=kills))
                    warnings.warn(
                        f"DSE grid point lam={lam:g} warmup={warmup} killed "
                        f"{kills} pool workers; quarantined as failed")
                    dead = []
            # Shrink by what dying workers already flushed to the cache:
            # our in-memory cache view predates the crash, so re-read disk.
            if self.cache is not None and dead:
                disk = _chunk_cache(self.cache.path)
                for entry in list(dead):
                    found = None
                    if disk is not None:
                        found = disk.get(self._key(entry[2], entry[1]))
                    if found is not None:
                        points[entry[0]] = self._record(found)
                        dead.remove(entry)
            probing.extend(e for e in dead if points[e[0]] is None)
            if stats["pool_deaths"] >= MAX_POOL_DEATHS:
                stats["degraded"] = True
                return
            self._log(f"worker pool died (death #{stats['pool_deaths']}); "
                      "rebuilding and resubmitting unfinished points")
            pool = self._make_pool()

        try:
            while queue or probing or inflight:
                if stats["degraded"]:
                    break
                # Refill the window.  Probing mode serializes: one suspect
                # alone in the pool, so a repeat death blames it exactly.
                try:
                    if probing:
                        if not inflight:
                            self._submit(pool, inflight, [probing[0]])
                            probing.popleft()
                    else:
                        while queue and len(inflight) < self.workers:
                            self._submit(pool, inflight, queue[0])
                            queue.popleft()
                except BrokenExecutor:
                    on_pool_death(collect_dead())
                    continue
                timeout = None
                deadlines = [d for _, d in inflight.values() if d is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
                done, _ = wait(set(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                broken = False
                dead_now: List[Tuple[int, int, float]] = []
                for future in done:
                    entries, _ = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        broken = True
                        dead_now.extend(e for e in entries
                                        if points[e[0]] is None)
                        continue
                    except Exception as exc:
                        # Chunk-level infrastructure failure (the chunk
                        # task itself raised: unpicklable results, …) —
                        # per-point isolation already caught everything
                        # training-related.
                        stats["chunk_failures"] += 1
                        for index, warmup, lam in entries:
                            if points[index] is None:
                                points[index] = self._record(
                                    _failed_point(lam, warmup, exc))
                    else:
                        for (index, _, _), point in zip(entries, result):
                            points[index] = self._record(point)
                if broken:
                    on_pool_death(dead_now + collect_dead())
                    continue
                # Deadline sweep: expired chunks are marked failed and
                # abandoned.  Thread futures cannot be killed — the
                # zombie thread finishes into a dropped future; process
                # futures keep their worker busy until the task returns.
                # Either way the sweep moves on.
                now = time.monotonic()
                for future in [f for f, (_, dl) in inflight.items()
                               if dl is not None and now >= dl]:
                    entries, _ = inflight.pop(future)
                    future.cancel()
                    stats["timeouts"] += 1
                    for index, warmup, lam in entries:
                        if points[index] is None:
                            points[index] = self._record(_failed_point(
                                lam, warmup,
                                f"timeout: exceeded {self.point_timeout:g}s "
                                f"per point"))
        except BaseException:
            # KeyboardInterrupt & co.: cancel what never started, abandon
            # the rest, re-raise.  Completed points were flushed to the
            # cache as they finished, so the interrupted sweep resumes.
            for future in inflight:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=False, cancel_futures=True)
        if stats["degraded"]:
            leftovers = [e for e in list(probing)
                         + [e for chunk in queue for e in chunk]
                         if points[e[0]] is None]
            warnings.warn(
                f"DSE worker pool died {stats['pool_deaths']} times; "
                f"degrading to in-process sequential execution for "
                f"{len(leftovers)} remaining grid points")
            self._run_sequential([[entry] for entry in leftovers], points)

    def _key(self, lam: float, warmup: int) -> str:
        return DSECache.key(lam, warmup, self.trainer_kwargs,
                            tag=self.cache_tag, backend=self._run_backend,
                            evaluators=[evaluator_name(e)
                                        for e in self.point_evaluators])

    def _record(self, point: DSEPoint) -> DSEPoint:
        if self.cache is not None:
            self.cache.put(self._key(point.lam, point.warmup_epochs), point)
        resumed = getattr(point.result, "resumed_epochs", 0) or 0
        if resumed:
            # Epochs this point recovered from a mid-run checkpoint instead
            # of retraining (pool resubmission, retry, or a prior run).
            self.last_run_stats["resumed_epochs"] = (
                self.last_run_stats.get("resumed_epochs", 0) + int(resumed))
        if not point.ok:
            self._log(f"lam={point.lam:g} warmup={point.warmup_epochs}: "
                      f"FAILED after {point.attempts} attempt(s) — "
                      f"{point.error}")
            return point
        extra = "".join(f", {k}={v:.4g}" for k, v in point.metrics.items())
        self._log(f"lam={point.lam:g} warmup={point.warmup_epochs}: "
                  f"{point.params} params, loss={point.loss:.4f}, "
                  f"d={point.dilations}{extra}")
        return point


def run_dse(seed_factory: Callable[[], Module], loss_fn: Callable,
            train_loader, val_loader,
            lambdas: Sequence[float], warmups: Sequence[int] = (5,),
            trainer_kwargs: Optional[Dict] = None,
            verbose: bool = False, workers: Optional[int] = None,
            executor: Optional[str] = None,
            cache_path: Optional[str] = None,
            cache_tag: str = "",
            compile_step: Optional[bool] = None,
            graph_opt: Optional[str] = None,
            graph_exec: Optional[str] = None,
            loop_capture: Optional[bool] = None,
            compile_config: Optional[CompileConfig] = None,
            stack: Optional[int] = None,
            point_evaluators: Optional[Sequence[Callable]] = None,
            retries: int = 0, retry_backoff: float = 0.1,
            point_timeout: Optional[float] = None,
            checkpoint_dir: Optional[str] = None,
            checkpoint_every: Optional[int] = None
            ) -> DSEResult:
    """Sweep (λ, warmup); one full PIT search per grid point.

    Thin wrapper over :class:`DSEEngine` kept for API compatibility;
    ``workers`` / ``executor`` / ``cache_path`` / ``cache_tag`` /
    ``compile_config`` / ``stack`` / ``point_evaluators`` /
    ``retries`` / ``point_timeout`` / ``checkpoint_dir`` expose the
    engine's parallelism, memoization, graph-execution, stacked-model,
    hardware-in-the-loop, fault-tolerance and mid-run-checkpoint knobs.
    """
    engine = DSEEngine(seed_factory, loss_fn, train_loader, val_loader,
                       workers=workers, executor=executor,
                       cache_path=cache_path, cache_tag=cache_tag,
                       trainer_kwargs=trainer_kwargs,
                       verbose=verbose, compile_step=compile_step,
                       graph_opt=graph_opt, graph_exec=graph_exec,
                       loop_capture=loop_capture,
                       compile_config=compile_config,
                       stack=stack,
                       point_evaluators=point_evaluators,
                       retries=retries, retry_backoff=retry_backoff,
                       point_timeout=point_timeout,
                       checkpoint_dir=checkpoint_dir,
                       checkpoint_every=checkpoint_every)
    return engine.run(lambdas, warmups=warmups)


def select_small_medium_large(points: Sequence[DSEPoint],
                              reference_params: Optional[float] = None,
                              *, objective: str = "params",
                              reference: Optional[float] = None
                              ) -> Dict[str, DSEPoint]:
    """The paper's Table I selection rule over a set of DSE points.

    * ``small``: the cheapest network found;
    * ``large``: the most expensive network found;
    * ``medium``: the closest in cost to the hand-designed reference.

    ``objective`` names the cost axis: ``"params"`` (default, the paper's
    rule) or any metrics key a hardware-aware sweep annotated
    (``"latency_ms"``, ``"energy_mj"``, …), with ``reference`` the
    reference network's value on that axis (``reference_params`` is the
    legacy spelling of the same argument).  Points that do not carry the
    requested objective are ignored.
    """
    if reference is None:
        reference = reference_params
    if reference is None:
        raise TypeError("a reference value is required "
                        "(reference_params= or reference=)")
    scored = [(p, objective_value(p, objective)) for p in points]
    scored = [(p, v) for p, v in scored if v is not None]
    if not scored:
        raise ValueError(
            f"no DSE points carry the {objective!r} objective to select from")
    small = min(scored, key=lambda pv: pv[1])[0]
    large = max(scored, key=lambda pv: pv[1])[0]
    medium = min(scored, key=lambda pv: abs(pv[1] - reference))[0]
    return {"small": small, "medium": medium, "large": large}
