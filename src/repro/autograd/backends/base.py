"""Backend interface for the causal dilated 1-D convolution kernels.

A :class:`ConvBackend` implements the three numerical kernels behind
:func:`repro.autograd.conv1d_causal` — forward, input-gradient and
weight-gradient — on plain numpy arrays.  The autograd op in
``ops_conv.py`` owns everything else (validation, causal padding, bias,
tape wiring), so a backend only has to answer "given the padded input,
what are the outputs / adjoints?".

All kernels receive the *left-padded* input ``xp`` of shape
``(N, C_in, T + (K-1)*dilation)`` together with the original temporal
length ``t``; the output length is ``ceil(t / stride)``.  Tap ``i`` of the
kernel reads ``xp[..., i*dilation + j*stride]`` for output position ``j``
(paper Eq. 1 in kernel order).

Backends must be numerically interchangeable: the differential harness in
``tests/test_backends_parity.py`` asserts every registered backend matches
the einsum reference on forward values and all gradients.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["ConvBackend", "conv_out_length"]


def conv_out_length(t: int, stride: int) -> int:
    """Output length of the causal conv: ``ceil(t / stride)``."""
    return (t + stride - 1) // stride


class ConvBackend:
    """Abstract numerical kernel set for ``conv1d_causal``."""

    #: Registry name; subclasses must override.
    name: str = "abstract"

    def forward(self, xp: np.ndarray, w: np.ndarray,
                dilation: int, stride: int, t: int) -> np.ndarray:
        """Convolve the padded input with the kernel.

        Parameters
        ----------
        xp:
            Left-padded input ``(N, C_in, T + (K-1)*dilation)``.
        w:
            Kernel ``(C_out, C_in, K)``.
        dilation, stride:
            Temporal dilation / output stride.
        t:
            Unpadded temporal length ``T``.

        Returns
        -------
        ``(N, C_out, ceil(T / stride))`` output (no bias).  Must be a
        freshly allocated array the caller owns — the op adds the bias
        into it in place.
        """
        raise NotImplementedError

    def grad_input(self, grad: np.ndarray, w: np.ndarray,
                   xp_shape: Tuple[int, int, int],
                   dilation: int, stride: int, t: int) -> np.ndarray:
        """Adjoint w.r.t. the *padded* input; shape ``xp_shape``."""
        raise NotImplementedError

    def grad_weight(self, grad: np.ndarray, xp: np.ndarray,
                    w_shape: Tuple[int, int, int],
                    dilation: int, stride: int, t: int) -> np.ndarray:
        """Adjoint w.r.t. the kernel; shape ``w_shape``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
