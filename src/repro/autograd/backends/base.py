"""Backend interface for the causal dilated 1-D convolution kernels.

A :class:`ConvBackend` implements the three numerical kernels behind
:func:`repro.autograd.conv1d_causal` — forward, input-gradient and
weight-gradient — on plain numpy arrays.  The autograd op in
``ops_conv.py`` owns everything else (validation, causal padding, bias,
tape wiring), so a backend only has to answer "given the padded input,
what are the outputs / adjoints?".

All kernels receive the *left-padded* input ``xp`` of shape
``(N, C_in, T + (K-1)*dilation)`` together with the original temporal
length ``t``; the output length is ``ceil(t / stride)``.  Tap ``i`` of the
kernel reads ``xp[..., i*dilation + j*stride]`` for output position ``j``
(paper Eq. 1 in kernel order).

Backends must be numerically interchangeable: the differential harness in
``tests/test_backends_parity.py`` asserts every registered backend matches
the einsum reference on forward values and all gradients.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["ConvBackend", "conv_out_length", "scratch_buffer"]


def conv_out_length(t: int, stride: int) -> int:
    """Output length of the causal conv: ``ceil(t / stride)``."""
    return (t + stride - 1) // stride


class ConvBackend:
    """Abstract numerical kernel set for ``conv1d_causal``.

    Every kernel takes an optional ``scratch`` dict.  Eager dispatch passes
    None; the compiled-step executor passes a per-node dict that persists
    across replays, letting a backend keep its output / work buffers alive
    instead of reallocating them each batch (the returned array may then be
    the same buffer every call).  Results must be bit-identical with and
    without ``scratch`` — the graph-executor parity suite runs both paths.
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    def forward(self, xp: np.ndarray, w: np.ndarray,
                dilation: int, stride: int, t: int,
                scratch: Optional[dict] = None) -> np.ndarray:
        """Convolve the padded input with the kernel.

        Parameters
        ----------
        xp:
            Left-padded input ``(N, C_in, T + (K-1)*dilation)``.
        w:
            Kernel ``(C_out, C_in, K)``.
        dilation, stride:
            Temporal dilation / output stride.
        t:
            Unpadded temporal length ``T``.
        scratch:
            Optional persistent buffer dict (see class docstring).

        Returns
        -------
        ``(N, C_out, ceil(T / stride))`` output (no bias).  Must be an
        array the caller may mutate — the op adds the bias into it in
        place (a fresh allocation, or the caller's private scratch
        buffer).
        """
        raise NotImplementedError

    def grad_input(self, grad: np.ndarray, w: np.ndarray,
                   xp_shape: Tuple[int, int, int],
                   dilation: int, stride: int, t: int,
                   scratch: Optional[dict] = None) -> np.ndarray:
        """Adjoint w.r.t. the *padded* input; shape ``xp_shape``."""
        raise NotImplementedError

    def grad_weight(self, grad: np.ndarray, xp: np.ndarray,
                    w_shape: Tuple[int, int, int],
                    dilation: int, stride: int, t: int,
                    scratch: Optional[dict] = None) -> np.ndarray:
        """Adjoint w.r.t. the kernel; shape ``w_shape``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Streaming kernel (one output sample per call)
    # ------------------------------------------------------------------

    def forward_step(self, window: np.ndarray, w: np.ndarray,
                     scratch: Optional[dict] = None) -> np.ndarray:
        """Advance the convolution by one tick: ``(N, C_in, K) x
        (C_out, C_in, K) -> (N, C_out, 1)`` (no bias).

        ``window`` holds the ``K`` dilated taps the newest output sample
        reads — ``window[..., i] = x[t - (K-1-i)*dilation]`` — gathered by
        the streaming executor from its per-layer ring buffer, so one new
        sample costs O(K·C_in·C_out) MACs regardless of the receptive
        field.  The base implementation fuses the whole step into one
        ``(C_out, C_in*K) x (N, C_in*K, 1)`` GEMM: per-tick latency is
        call-overhead-bound at serving batch sizes, so one BLAS dispatch
        per layer (not one per tap) is what makes streaming beat
        re-windowing.  BLAS may sum the contraction in a different order
        than the full-window kernel of the same backend, so outputs agree
        to the last ulp rather than bitwise — the streaming parity suite
        pins the tolerance.
        """
        n = window.shape[0]
        c_out, c_in, k = w.shape
        wmat = w.reshape(c_out, c_in * k)
        cols = np.ascontiguousarray(window).reshape(n, c_in * k, 1)
        out, _ = scratch_buffer(scratch, "step_out", (n, c_out, 1),
                                np.result_type(w, window))
        if out is not None:
            return np.matmul(wmat, cols, out=out)
        return np.matmul(wmat, cols)

    # ------------------------------------------------------------------
    # Stacked-model kernels (vmap-style: a leading model axis M)
    #
    # The stacked DSE executor trains M clones of one network in lockstep
    # with per-model weights; every conv then sees a padded input
    # ``(M, N, C_in, L)`` and a kernel ``(M, C_out, C_in, K)``.  The base
    # implementations below loop the per-model kernels — always correct,
    # so externally registered backends work under stacking automatically —
    # while the built-in backends override them with genuinely batched
    # contractions (one big einsum / batched GEMM / batched FFT), which is
    # where the M-fold amortization of per-call overhead comes from.
    # ------------------------------------------------------------------

    def forward_stacked(self, xp: np.ndarray, w: np.ndarray,
                        dilation: int, stride: int, t: int,
                        scratch: Optional[dict] = None) -> np.ndarray:
        """Stacked forward: ``(M, N, C_in, L) x (M, C_out, C_in, K) ->
        (M, N, C_out, ceil(T / stride))`` (no bias).  Default: per-model
        loop over :meth:`forward`."""
        out = None
        for m in range(xp.shape[0]):
            y = self.forward(xp[m], w[m], dilation, stride, t)
            if out is None:
                out = np.empty((xp.shape[0],) + y.shape, y.dtype)
            out[m] = y
        return out

    def grad_input_stacked(self, grad: np.ndarray, w: np.ndarray,
                           xp_shape: Tuple[int, int, int, int],
                           dilation: int, stride: int, t: int,
                           scratch: Optional[dict] = None) -> np.ndarray:
        """Stacked adjoint w.r.t. the padded input; shape ``xp_shape``."""
        gxp = None
        for m in range(grad.shape[0]):
            g = self.grad_input(grad[m], w[m], tuple(xp_shape[1:]),
                                dilation, stride, t)
            if gxp is None:
                gxp = np.empty(tuple(xp_shape), g.dtype)
            gxp[m] = g
        return gxp

    def grad_weight_stacked(self, grad: np.ndarray, xp: np.ndarray,
                            w_shape: Tuple[int, int, int, int],
                            dilation: int, stride: int, t: int,
                            scratch: Optional[dict] = None) -> np.ndarray:
        """Stacked adjoint w.r.t. the kernels; shape ``w_shape``."""
        gw = None
        for m in range(grad.shape[0]):
            g = self.grad_weight(grad[m], xp[m], tuple(w_shape[1:]),
                                 dilation, stride, t)
            if gw is None:
                gw = np.empty(tuple(w_shape), g.dtype)
            gw[m] = g
        return gw

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def scratch_buffer(scratch: Optional[dict], key: str,
                   shape: Tuple[int, ...], dtype, zero: bool = False
                   ) -> Tuple[Optional[np.ndarray], bool]:
    """Fetch-or-create a persistent work buffer; ``(None, False)`` when no
    scratch dict is in play (eager call — the backend allocates fresh).

    Returns ``(buffer, created)``; with ``zero=True`` an existing buffer is
    zero-filled, matching a fresh ``np.zeros`` bit for bit.
    """
    if scratch is None:
        return None, False
    buf = scratch.get(key)
    if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
        scratch[key] = buf = (np.zeros if zero else np.empty)(shape, dtype)
        return buf, True
    if zero:
        buf.fill(0)
    return buf, False


_EINSUM_PATHS: dict = {}


def einsum_cached(subscripts: str, *operands: np.ndarray, out=None):
    """``np.einsum`` with the contraction path memoized per operand shape.

    ``optimize=True`` re-runs the path search on every call — measurable
    pure overhead once shapes are fixed, which for a training loop is
    always.  The search is deterministic, so caching the path per
    ``(subscripts, shapes)`` is bit-identical to ``optimize=True``.
    """
    key = (subscripts, tuple(op.shape for op in operands))
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = _EINSUM_PATHS[key] = np.einsum_path(
            subscripts, *operands, optimize=True)[0]
    if out is None:
        return np.einsum(subscripts, *operands, optimize=path)
    return np.einsum(subscripts, *operands, optimize=path, out=out)
