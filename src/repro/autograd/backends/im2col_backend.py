"""im2col / ``as_strided`` GEMM conv backend.

Instead of one contraction per kernel tap, this backend lowers the causal
dilated convolution to a *single* batched GEMM:

1. ``as_strided`` builds a zero-copy patch view of the padded input with
   shape ``(N, C_in, K, T_out)`` where
   ``patches[n, c, i, j] = xp[n, c, i*dilation + j*stride]``;
2. the kernel is flattened to ``(C_out, C_in*K)`` and multiplied against
   the ``(N, C_in*K, T_out)`` patch matrix in one ``matmul``.

The backward passes are the transposed GEMMs of the same lowering: the
weight gradient contracts the output gradient with the patch matrix, and
the input gradient computes ``W^T @ grad`` into "column" space, then
scatter-adds each tap's column back into the padded input (columns overlap
whenever ``stride < K*dilation``, so the fold is a K-step vectorized loop
rather than a pure view write).

The patch view never materializes until a GEMM consumes it, so peak extra
memory is the ``(N, C_in*K, T_out)`` im2col buffer — the classic
space-for-speed trade of im2col convolutions.

Under a compiled step the kernels receive a persistent ``scratch`` dict:
the GEMM outputs, the col2im accumulator and the ``einsum`` contraction
path are then kept across replays instead of being reallocated (or, for
the path, re-searched) every batch — same operations, same bits, no
steady-state allocations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .base import ConvBackend, conv_out_length, einsum_cached, scratch_buffer

__all__ = ["Im2colBackend"]


def _patch_view(xp: np.ndarray, k: int, dilation: int, stride: int,
                t: int) -> np.ndarray:
    """Zero-copy ``(N, C_in, K, T_out)`` sliding-window view of ``xp``."""
    n, c_in, _ = xp.shape
    t_out = conv_out_length(t, stride)
    s_n, s_c, s_t = xp.strides
    return as_strided(
        xp,
        shape=(n, c_in, k, t_out),
        strides=(s_n, s_c, s_t * dilation, s_t * stride),
        writeable=False,
    )


def _patch_view_stacked(xp: np.ndarray, k: int, dilation: int, stride: int,
                        t: int) -> np.ndarray:
    """Zero-copy ``(M, N, C_in, K, T_out)`` window view of a stacked input."""
    m, n, c_in, _ = xp.shape
    t_out = conv_out_length(t, stride)
    s_m, s_n, s_c, s_t = xp.strides
    return as_strided(
        xp,
        shape=(m, n, c_in, k, t_out),
        strides=(s_m, s_n, s_c, s_t * dilation, s_t * stride),
        writeable=False,
    )


class Im2colBackend(ConvBackend):
    """Single-GEMM kernels via an ``as_strided`` im2col lowering."""

    name = "im2col"

    def forward(self, xp: np.ndarray, w: np.ndarray,
                dilation: int, stride: int, t: int,
                scratch: Optional[dict] = None) -> np.ndarray:
        n, c_in, _ = xp.shape
        c_out, _, k = w.shape
        patches = _patch_view(xp, k, dilation, stride, t)
        t_out = patches.shape[-1]
        # (C_out, C_in*K) @ (N, C_in*K, T_out) -> (N, C_out, T_out)
        wmat = w.reshape(c_out, c_in * k)
        pmat = patches.reshape(n, c_in * k, t_out)
        dtype = np.result_type(wmat, pmat)
        out, _ = scratch_buffer(scratch, "out", (n, c_out, t_out), dtype)
        if out is None:
            return np.matmul(wmat, pmat)
        return np.matmul(wmat, pmat, out=out)

    def forward_step(self, window: np.ndarray, w: np.ndarray,
                     scratch: Optional[dict] = None) -> np.ndarray:
        n, c_in, k = window.shape
        c_out = w.shape[0]
        # The one-tick analogue of the forward lowering: the gathered
        # window *is* the single im2col column, so the tick is one GEMV
        # per stream — (C_out, C_in*K) @ (N, C_in*K, 1).
        wmat = w.reshape(c_out, c_in * k)
        cmat = window.reshape(n, c_in * k, 1)
        dtype = np.result_type(wmat, cmat)
        out, _ = scratch_buffer(scratch, "step_out", (n, c_out, 1), dtype)
        if out is None:
            return np.matmul(wmat, cmat)
        return np.matmul(wmat, cmat, out=out)

    def grad_input(self, grad: np.ndarray, w: np.ndarray,
                   xp_shape: Tuple[int, int, int],
                   dilation: int, stride: int, t: int,
                   scratch: Optional[dict] = None) -> np.ndarray:
        n, c_in, length = xp_shape
        c_out, _, k = w.shape
        pad = (k - 1) * dilation
        # The adjoint of a correlation is a *convolution*: every padded
        # input position p accumulates Σ_{o,i} w[o,c,i]·ĝ[n,o,p - i·d],
        # where ĝ is the stride-upsampled output gradient.  Substituting
        # i → K-1-i turns that into a correlation of the (both-sides
        # zero-padded) ĝ with the tap-flipped kernel — the exact same
        # patch-view + single-GEMM lowering as the forward pass, instead
        # of a K-pass overlapping col2im fold.
        dtype = np.result_type(w, grad)
        gpad, _ = scratch_buffer(scratch, "gpad", (n, c_out, t + 2 * pad),
                                 dtype, zero=True)
        if gpad is None:
            gpad = np.zeros((n, c_out, t + 2 * pad), dtype)
        gpad[:, :, pad: pad + t: stride] = grad
        patches = _patch_view(gpad, k, dilation, 1, length)
        wflip = w[:, :, ::-1].transpose(1, 0, 2).reshape(c_in, c_out * k)
        pmat = patches.reshape(n, c_out * k, length)
        gxp, _ = scratch_buffer(scratch, "gxp", tuple(xp_shape), dtype)
        if gxp is None:
            return np.matmul(wflip, pmat)
        return np.matmul(wflip, pmat, out=gxp)

    def grad_weight(self, grad: np.ndarray, xp: np.ndarray,
                    w_shape: Tuple[int, int, int],
                    dilation: int, stride: int, t: int,
                    scratch: Optional[dict] = None) -> np.ndarray:
        k = w_shape[2]
        patches = _patch_view(xp, k, dilation, stride, t)
        # One contraction over the strided view (gw[o,c,i] = Σ_{n,t}
        # grad[n,o,t] * patches[n,c,i,t]); einsum materializes at most one
        # im2col buffer internally, where an explicit reshape+transpose
        # GEMM would copy it twice.
        if scratch is None:
            return einsum_cached("not,ncit->oci", grad, patches)
        dtype = np.result_type(grad, patches)
        gw, _ = scratch_buffer(scratch, "gw", tuple(w_shape), dtype)
        return einsum_cached("not,ncit->oci", grad, patches, out=gw)

    # -- stacked (leading model axis M) kernels: the same lowering, with
    # the model axis folded into numpy's batched-matmul loop, so M small
    # per-model GEMMs become one batched GEMM call ------------------------

    def forward_stacked(self, xp: np.ndarray, w: np.ndarray,
                        dilation: int, stride: int, t: int,
                        scratch: Optional[dict] = None) -> np.ndarray:
        m, n, c_in, _ = xp.shape
        c_out, k = w.shape[1], w.shape[3]
        patches = _patch_view_stacked(xp, k, dilation, stride, t)
        t_out = patches.shape[-1]
        # (M, 1, C_out, C_in*K) @ (M, N, C_in*K, T_out) -> (M, N, C_out, T_out)
        wmat = w.reshape(m, 1, c_out, c_in * k)
        pmat = patches.reshape(m, n, c_in * k, t_out)
        dtype = np.result_type(wmat, pmat)
        out, _ = scratch_buffer(scratch, "out", (m, n, c_out, t_out), dtype)
        if out is None:
            return np.matmul(wmat, pmat)
        return np.matmul(wmat, pmat, out=out)

    def grad_input_stacked(self, grad: np.ndarray, w: np.ndarray,
                           xp_shape: Tuple[int, int, int, int],
                           dilation: int, stride: int, t: int,
                           scratch: Optional[dict] = None) -> np.ndarray:
        m, n, c_in, length = xp_shape
        c_out, k = w.shape[1], w.shape[3]
        pad = (k - 1) * dilation
        # Same correlation-with-flipped-kernel trick as the per-model
        # adjoint, batched over M by matmul.
        dtype = np.result_type(w, grad)
        gpad, _ = scratch_buffer(scratch, "gpad", (m, n, c_out, t + 2 * pad),
                                 dtype, zero=True)
        if gpad is None:
            gpad = np.zeros((m, n, c_out, t + 2 * pad), dtype)
        gpad[:, :, :, pad: pad + t: stride] = grad
        patches = _patch_view_stacked(gpad, k, dilation, 1, length)
        wflip = (w[:, :, :, ::-1].transpose(0, 2, 1, 3)
                 .reshape(m, 1, c_in, c_out * k))
        pmat = patches.reshape(m, n, c_out * k, length)
        gxp, _ = scratch_buffer(scratch, "gxp", tuple(xp_shape), dtype)
        if gxp is None:
            return np.matmul(wflip, pmat)
        return np.matmul(wflip, pmat, out=gxp)

    def grad_weight_stacked(self, grad: np.ndarray, xp: np.ndarray,
                            w_shape: Tuple[int, int, int, int],
                            dilation: int, stride: int, t: int,
                            scratch: Optional[dict] = None) -> np.ndarray:
        k = w_shape[3]
        patches = _patch_view_stacked(xp, k, dilation, stride, t)
        if scratch is None:
            return einsum_cached("mnot,mncit->moci", grad, patches)
        dtype = np.result_type(grad, patches)
        gw, _ = scratch_buffer(scratch, "gw", tuple(w_shape), dtype)
        return einsum_cached("mnot,mncit->moci", grad, patches, out=gw)
