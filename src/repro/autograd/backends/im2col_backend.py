"""im2col / ``as_strided`` GEMM conv backend.

Instead of one contraction per kernel tap, this backend lowers the causal
dilated convolution to a *single* batched GEMM:

1. ``as_strided`` builds a zero-copy patch view of the padded input with
   shape ``(N, C_in, K, T_out)`` where
   ``patches[n, c, i, j] = xp[n, c, i*dilation + j*stride]``;
2. the kernel is flattened to ``(C_out, C_in*K)`` and multiplied against
   the ``(N, C_in*K, T_out)`` patch matrix in one ``matmul``.

The backward passes are the transposed GEMMs of the same lowering: the
weight gradient contracts the output gradient with the patch matrix, and
the input gradient computes ``W^T @ grad`` into "column" space, then
scatter-adds each tap's column back into the padded input (columns overlap
whenever ``stride < K*dilation``, so the fold is a K-step vectorized loop
rather than a pure view write).

The patch view never materializes until a GEMM consumes it, so peak extra
memory is the ``(N, C_in*K, T_out)`` im2col buffer — the classic
space-for-speed trade of im2col convolutions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .base import ConvBackend, conv_out_length

__all__ = ["Im2colBackend"]


def _patch_view(xp: np.ndarray, k: int, dilation: int, stride: int,
                t: int) -> np.ndarray:
    """Zero-copy ``(N, C_in, K, T_out)`` sliding-window view of ``xp``."""
    n, c_in, _ = xp.shape
    t_out = conv_out_length(t, stride)
    s_n, s_c, s_t = xp.strides
    return as_strided(
        xp,
        shape=(n, c_in, k, t_out),
        strides=(s_n, s_c, s_t * dilation, s_t * stride),
        writeable=False,
    )


class Im2colBackend(ConvBackend):
    """Single-GEMM kernels via an ``as_strided`` im2col lowering."""

    name = "im2col"

    def forward(self, xp: np.ndarray, w: np.ndarray,
                dilation: int, stride: int, t: int) -> np.ndarray:
        n, c_in, _ = xp.shape
        c_out, _, k = w.shape
        patches = _patch_view(xp, k, dilation, stride, t)
        t_out = patches.shape[-1]
        # (C_out, C_in*K) @ (N, C_in*K, T_out) -> (N, C_out, T_out)
        return np.matmul(w.reshape(c_out, c_in * k),
                         patches.reshape(n, c_in * k, t_out))

    def grad_input(self, grad: np.ndarray, w: np.ndarray,
                   xp_shape: Tuple[int, int, int],
                   dilation: int, stride: int, t: int) -> np.ndarray:
        n, c_in, _ = xp_shape
        c_out, _, k = w.shape
        t_out = grad.shape[-1]
        # (C_in*K, C_out) @ (N, C_out, T_out) -> columns (N, C_in, K, T_out)
        gcol = np.matmul(w.reshape(c_out, c_in * k).T, grad)
        gcol = gcol.reshape(n, c_in, k, t_out)
        gxp = np.zeros(xp_shape)
        for tap in range(k):  # col2im fold: columns overlap across taps
            gxp[:, :, tap * dilation: tap * dilation + t: stride] += gcol[:, :, tap, :]
        return gxp

    def grad_weight(self, grad: np.ndarray, xp: np.ndarray,
                    w_shape: Tuple[int, int, int],
                    dilation: int, stride: int, t: int) -> np.ndarray:
        k = w_shape[2]
        patches = _patch_view(xp, k, dilation, stride, t)
        # One contraction over the strided view (gw[o,c,i] = Σ_{n,t}
        # grad[n,o,t] * patches[n,c,i,t]); einsum materializes at most one
        # im2col buffer internally, where an explicit reshape+transpose
        # GEMM would copy it twice.
        return np.einsum("not,ncit->oci", grad, patches, optimize=True)
