"""Pluggable numerical backends for the causal dilated convolution.

The hot path of every network in this reproduction is
:func:`repro.autograd.conv1d_causal`; this package lets its numerical
kernels be swapped without touching the autograd tape:

* ``"einsum"`` — the per-tap einsum reference implementation (default);
* ``"im2col"`` — a single-GEMM ``as_strided`` lowering (the fast path);
* ``"fft"`` — frequency-domain kernels via ``numpy.fft`` (wins at large
  kernel × dilation, i.e. long receptive fields).

Selection, in decreasing precedence:

1. the ``backend=`` argument of ``conv1d_causal`` (and of the conv
   layers / ``PITConv1d``, which forward it);
2. the process-wide default set by :func:`set_backend` or the
   :func:`use_backend` context manager;
3. the ``REPRO_CONV_BACKEND`` environment variable, read once at import;
4. ``"einsum"``.

All backends are numerically interchangeable — the differential harness
``tests/test_backends_parity.py`` locks every registered backend to the
reference on forward values and all gradients.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Dict, Iterator, List, Optional

from .base import ConvBackend, conv_out_length
from .einsum_backend import EinsumBackend
from .fft_backend import FFTBackend
from .im2col_backend import Im2colBackend

__all__ = [
    "ConvBackend",
    "EinsumBackend",
    "FFTBackend",
    "Im2colBackend",
    "conv_out_length",
    "available_backends",
    "register_backend",
    "get_backend",
    "set_backend",
    "current_backend",
    "use_backend",
]

DEFAULT_BACKEND = "einsum"
ENV_VAR = "REPRO_CONV_BACKEND"

_REGISTRY: Dict[str, ConvBackend] = {}


def register_backend(backend: ConvBackend) -> ConvBackend:
    """Add a backend instance to the registry (keyed by ``backend.name``)."""
    if not backend.name or backend.name == "abstract":
        raise ValueError("backend must define a concrete .name")
    _REGISTRY[backend.name] = backend
    return backend


register_backend(EinsumBackend())
register_backend(Im2colBackend())
register_backend(FFTBackend())


def available_backends() -> List[str]:
    """Names of all registered conv backends."""
    return sorted(_REGISTRY)


def _resolve_name(name: str) -> str:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown conv backend {name!r}; available: {available_backends()}")
    return name


# A mistyped REPRO_CONV_BACKEND is deliberately NOT validated here: this
# module is imported by `import repro`, and failing at import time would
# crash even `repro.cli --help`.  The name is checked on first use
# (get_backend), where the error can surface with context.
_ACTIVE = os.environ.get(ENV_VAR) or DEFAULT_BACKEND

# Per-thread override (set by use_backend), consulted before the process
# default.  Thread-local for the same reason no_grad is: concurrent
# trainings — e.g. parallel DSE grid points — must be able to scope a
# backend without mutating what other threads resolve mid-graph.
_TLS = threading.local()


def set_backend(name: str) -> None:
    """Set the process-wide default conv backend."""
    global _ACTIVE
    _ACTIVE = _resolve_name(name)


def current_backend() -> str:
    """Name of the active conv backend: the calling thread's
    :func:`use_backend` override if one is in effect, else the process
    default.

    The process default may be an unvalidated ``REPRO_CONV_BACKEND``
    value until the first conv call or :func:`set_backend` checks it.
    """
    return getattr(_TLS, "override", None) or _ACTIVE


def get_backend(name: Optional[str] = None) -> ConvBackend:
    """Resolve a backend instance: explicit ``name`` or the active default."""
    return _REGISTRY[_resolve_name(name if name is not None else current_backend())]


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[ConvBackend]:
    """Scope the default backend for the calling thread (restored on exit).

    Other threads are unaffected, so concurrent trainings can each pin
    their own backend.
    """
    name = _resolve_name(name)
    previous = getattr(_TLS, "override", None)
    _TLS.override = name
    try:
        yield _REGISTRY[name]
    finally:
        _TLS.override = previous
