"""FFT conv backend: frequency-domain causal dilated convolution.

The causal dilated convolution is a cross-correlation of the padded input
with a *dilated* kernel (taps spaced ``dilation`` apart).  By the
correlation theorem it can be evaluated as ``irfft(rfft(xp) · conj(rfft(w_d)))``
with everything batched over channels, which costs
``O(N·C·T·log T + N·C_in·C_out·T)`` instead of the ``O(N·C_in·C_out·K·T)``
of a direct lowering — independent of the kernel's temporal span.  The
win grows with ``K × dilation`` (long receptive fields), which is exactly
where TCN search spaces go; for the small kernels of the seed networks the
GEMM backends stay ahead, so this backend is opt-in like any other
(``repro.set_backend("fft")`` / ``REPRO_CONV_BACKEND=fft`` / per call).

All three kernels pad to the *full padded length* ``T + (K-1)·d``, which
makes every circular product equal its linear counterpart (no wrap-around
terms — see the inline notes), so results match the einsum reference to
floating-point round-off; the differential harness in
``tests/test_backends_parity.py`` covers this backend automatically.

Gradients are the transposed operations of the same lowering: the input
gradient is a frequency-domain *convolution* with the dilated kernel of
the stride-upsampled output gradient, and the weight gradient a
cross-correlation of the padded input with it, sampled at the dilated tap
positions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import ConvBackend

__all__ = ["FFTBackend"]


def _dilated_kernel(w: np.ndarray, dilation: int) -> np.ndarray:
    """Spread kernel taps ``dilation`` apart: ``w_d[..., i*d] = w[..., i]``."""
    if dilation == 1:
        return w
    c_out, c_in, k = w.shape
    span = (k - 1) * dilation + 1
    wd = np.zeros((c_out, c_in, span), dtype=w.dtype)
    wd[:, :, ::dilation] = w
    return wd


def _upsampled_grad(grad: np.ndarray, stride: int, t: int) -> np.ndarray:
    """Insert ``stride - 1`` zeros between output-gradient samples."""
    if stride == 1:
        return grad
    n, c_out, _ = grad.shape
    gu = np.zeros((n, c_out, t), dtype=grad.dtype)
    gu[:, :, ::stride] = grad
    return gu


def _dilated_kernel_stacked(w: np.ndarray, dilation: int) -> np.ndarray:
    """:func:`_dilated_kernel` over ``(M, O, C, K)``: both helpers only
    touch the last axis, so the leading axes fold into one."""
    m, c_out, c_in, k = w.shape
    wd = _dilated_kernel(w.reshape(m * c_out, c_in, k), dilation)
    return wd.reshape(m, c_out, c_in, wd.shape[-1])


def _upsampled_grad_stacked(grad: np.ndarray, stride: int, t: int) -> np.ndarray:
    """:func:`_upsampled_grad` over ``(M, N, O, T_out)`` (same folding)."""
    m, n, c_out, t_out = grad.shape
    gu = _upsampled_grad(grad.reshape(m * n, c_out, t_out), stride, t)
    return gu.reshape(m, n, c_out, gu.shape[-1])


class FFTBackend(ConvBackend):
    """``numpy.fft`` kernels for the causal dilated convolution."""

    name = "fft"

    def forward(self, xp: np.ndarray, w: np.ndarray,
                dilation: int, stride: int, t: int,
                scratch: Optional[dict] = None) -> np.ndarray:
        # scratch unused: numpy's pocketfft allocates internally anyway.
        length = xp.shape[2]  # t + (k-1)*dilation
        wd = _dilated_kernel(w, dilation)
        # y[n,o,j] = Σ_c Σ_m xp[n,c,j+m] wd[o,c,m]  (cross-correlation):
        # correlation theorem gives Y = X · conj(W).  Padding both to the
        # full length keeps every needed lag j <= t-1 = length - span free
        # of circular wrap.
        xf = np.fft.rfft(xp, n=length, axis=-1)
        wf = np.fft.rfft(wd, n=length, axis=-1)
        yf = np.einsum("ncf,ocf->nof", xf, wf.conj())
        y = np.fft.irfft(yf, n=length, axis=-1)[:, :, :t:stride]
        return np.ascontiguousarray(y)

    def grad_input(self, grad: np.ndarray, w: np.ndarray,
                   xp_shape: Tuple[int, int, int],
                   dilation: int, stride: int, t: int,
                   scratch: Optional[dict] = None) -> np.ndarray:
        length = xp_shape[2]
        wd = _dilated_kernel(w, dilation)
        gu = _upsampled_grad(grad, stride, t)
        # gxp[n,c,p] = Σ_o Σ_j gu[n,o,j] wd[o,c,p-j] — a linear convolution
        # of length t + span - 1 == length, so the circular product is
        # exact.
        gf = np.fft.rfft(gu, n=length, axis=-1)
        wf = np.fft.rfft(wd, n=length, axis=-1)
        cf = np.einsum("nof,ocf->ncf", gf, wf)
        return np.fft.irfft(cf, n=length, axis=-1)

    def grad_weight(self, grad: np.ndarray, xp: np.ndarray,
                    w_shape: Tuple[int, int, int],
                    dilation: int, stride: int, t: int,
                    scratch: Optional[dict] = None) -> np.ndarray:
        k = w_shape[2]
        length = xp.shape[2]
        gu = _upsampled_grad(grad, stride, t)
        # gw[o,c,m'] = Σ_n Σ_p xp[n,c,p] gu[n,o,p-m'] (cross-correlation of
        # xp with gu at lags m' = i*dilation).  gu is zero beyond t, and
        # m' <= span-1 = length - t, so wrapped terms all hit zeros.
        xf = np.fft.rfft(xp, n=length, axis=-1)
        gf = np.fft.rfft(gu, n=length, axis=-1)
        cf = np.einsum("ncf,nof->ocf", xf, gf.conj())
        corr = np.fft.irfft(cf, n=length, axis=-1)
        return np.ascontiguousarray(corr[:, :, :(k - 1) * dilation + 1:dilation])

    # -- stacked (leading model axis M) kernels: one batched FFT over all
    # models, one frequency-domain contraction carrying the m index -------

    def forward_stacked(self, xp: np.ndarray, w: np.ndarray,
                        dilation: int, stride: int, t: int,
                        scratch: Optional[dict] = None) -> np.ndarray:
        length = xp.shape[3]
        wd = _dilated_kernel_stacked(w, dilation)
        xf = np.fft.rfft(xp, n=length, axis=-1)
        wf = np.fft.rfft(wd, n=length, axis=-1)
        yf = np.einsum("mncf,mocf->mnof", xf, wf.conj())
        y = np.fft.irfft(yf, n=length, axis=-1)[:, :, :, :t:stride]
        return np.ascontiguousarray(y)

    def grad_input_stacked(self, grad: np.ndarray, w: np.ndarray,
                           xp_shape: Tuple[int, int, int, int],
                           dilation: int, stride: int, t: int,
                           scratch: Optional[dict] = None) -> np.ndarray:
        length = xp_shape[3]
        wd = _dilated_kernel_stacked(w, dilation)
        gu = _upsampled_grad_stacked(grad, stride, t)
        gf = np.fft.rfft(gu, n=length, axis=-1)
        wf = np.fft.rfft(wd, n=length, axis=-1)
        cf = np.einsum("mnof,mocf->mncf", gf, wf)
        return np.fft.irfft(cf, n=length, axis=-1)

    def grad_weight_stacked(self, grad: np.ndarray, xp: np.ndarray,
                            w_shape: Tuple[int, int, int, int],
                            dilation: int, stride: int, t: int,
                            scratch: Optional[dict] = None) -> np.ndarray:
        k = w_shape[3]
        length = xp.shape[3]
        gu = _upsampled_grad_stacked(grad, stride, t)
        xf = np.fft.rfft(xp, n=length, axis=-1)
        gf = np.fft.rfft(gu, n=length, axis=-1)
        cf = np.einsum("mncf,mnof->mocf", xf, gf.conj())
        corr = np.fft.irfft(cf, n=length, axis=-1)
        return np.ascontiguousarray(
            corr[:, :, :, :(k - 1) * dilation + 1:dilation])
