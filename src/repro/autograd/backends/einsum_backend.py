"""Reference conv backend: one ``einsum`` per kernel tap.

This is the original implementation of :func:`repro.autograd.conv1d_causal`,
kept verbatim as the numerical reference all other backends are checked
against.  It is simple, allocation-light and fast for the small tap counts
TCNs use, but issues ``K`` separate GEMM-shaped contractions per call.

Under a compiled step the accumulator arrays live in the per-node
``scratch`` dict across replays (zero-filled instead of freshly
``np.zeros``-allocated — bit-identical, no steady-state allocations).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import ConvBackend, conv_out_length, einsum_cached, scratch_buffer

__all__ = ["EinsumBackend"]


class EinsumBackend(ConvBackend):
    """Per-tap einsum kernels (the reference implementation)."""

    name = "einsum"

    def forward(self, xp: np.ndarray, w: np.ndarray,
                dilation: int, stride: int, t: int,
                scratch: Optional[dict] = None) -> np.ndarray:
        n = xp.shape[0]
        c_out, _, k = w.shape
        shape = (n, c_out, conv_out_length(t, stride))
        out, _ = scratch_buffer(scratch, "out", shape, np.float64, zero=True)
        if out is None:
            out = np.zeros(shape)
        for tap in range(k):
            # Tap `tap` reads xp at offsets tap*dilation .. tap*dilation + t - 1,
            # subsampled by the stride.
            segment = xp[:, :, tap * dilation: tap * dilation + t: stride]
            out += einsum_cached("oc,nct->not", w[:, :, tap], segment)
        return out

    def grad_input(self, grad: np.ndarray, w: np.ndarray,
                   xp_shape: Tuple[int, int, int],
                   dilation: int, stride: int, t: int,
                   scratch: Optional[dict] = None) -> np.ndarray:
        k = w.shape[2]
        gxp, _ = scratch_buffer(scratch, "gxp", tuple(xp_shape), np.float64,
                                zero=True)
        if gxp is None:
            gxp = np.zeros(xp_shape)
        for tap in range(k):
            gxp[:, :, tap * dilation: tap * dilation + t: stride] += einsum_cached(
                "oc,not->nct", w[:, :, tap], grad)
        return gxp

    def grad_weight(self, grad: np.ndarray, xp: np.ndarray,
                    w_shape: Tuple[int, int, int],
                    dilation: int, stride: int, t: int,
                    scratch: Optional[dict] = None) -> np.ndarray:
        k = w_shape[2]
        gw, _ = scratch_buffer(scratch, "gw", tuple(w_shape), np.float64,
                               zero=True)
        if gw is None:
            gw = np.zeros(w_shape)
        for tap in range(k):
            segment = xp[:, :, tap * dilation: tap * dilation + t: stride]
            gw[:, :, tap] = einsum_cached("not,nct->oc", grad, segment)
        return gw

    # -- stacked (leading model axis M) kernels: same per-tap scheme, one
    # contraction covering all M models at once --------------------------

    def forward_stacked(self, xp: np.ndarray, w: np.ndarray,
                        dilation: int, stride: int, t: int,
                        scratch: Optional[dict] = None) -> np.ndarray:
        m, n = xp.shape[0], xp.shape[1]
        c_out, k = w.shape[1], w.shape[3]
        shape = (m, n, c_out, conv_out_length(t, stride))
        dtype = np.result_type(xp, w)
        out, _ = scratch_buffer(scratch, "out", shape, dtype, zero=True)
        if out is None:
            out = np.zeros(shape, dtype)
        for tap in range(k):
            segment = xp[:, :, :, tap * dilation: tap * dilation + t: stride]
            out += einsum_cached("moc,mnct->mnot", w[:, :, :, tap], segment)
        return out

    def grad_input_stacked(self, grad: np.ndarray, w: np.ndarray,
                           xp_shape: Tuple[int, int, int, int],
                           dilation: int, stride: int, t: int,
                           scratch: Optional[dict] = None) -> np.ndarray:
        k = w.shape[3]
        dtype = np.result_type(grad, w)
        gxp, _ = scratch_buffer(scratch, "gxp", tuple(xp_shape), dtype,
                                zero=True)
        if gxp is None:
            gxp = np.zeros(xp_shape, dtype)
        for tap in range(k):
            gxp[:, :, :, tap * dilation: tap * dilation + t: stride] += \
                einsum_cached("moc,mnot->mnct", w[:, :, :, tap], grad)
        return gxp

    def grad_weight_stacked(self, grad: np.ndarray, xp: np.ndarray,
                            w_shape: Tuple[int, int, int, int],
                            dilation: int, stride: int, t: int,
                            scratch: Optional[dict] = None) -> np.ndarray:
        k = w_shape[3]
        dtype = np.result_type(grad, xp)
        gw, _ = scratch_buffer(scratch, "gw", tuple(w_shape), dtype,
                               zero=True)
        if gw is None:
            gw = np.zeros(w_shape, dtype)
        for tap in range(k):
            segment = xp[:, :, :, tap * dilation: tap * dilation + t: stride]
            gw[:, :, :, tap] = einsum_cached("mnot,mnct->moc", grad, segment)
        return gw
