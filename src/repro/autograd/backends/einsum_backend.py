"""Reference conv backend: one ``einsum`` per kernel tap.

This is the original implementation of :func:`repro.autograd.conv1d_causal`,
kept verbatim as the numerical reference all other backends are checked
against.  It is simple, allocation-light and fast for the small tap counts
TCNs use, but issues ``K`` separate GEMM-shaped contractions per call.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import ConvBackend, conv_out_length

__all__ = ["EinsumBackend"]


class EinsumBackend(ConvBackend):
    """Per-tap einsum kernels (the reference implementation)."""

    name = "einsum"

    def forward(self, xp: np.ndarray, w: np.ndarray,
                dilation: int, stride: int, t: int) -> np.ndarray:
        n = xp.shape[0]
        c_out, _, k = w.shape
        out = np.zeros((n, c_out, conv_out_length(t, stride)))
        for tap in range(k):
            # Tap `tap` reads xp at offsets tap*dilation .. tap*dilation + t - 1,
            # subsampled by the stride.
            segment = xp[:, :, tap * dilation: tap * dilation + t: stride]
            out += np.einsum("oc,nct->not", w[:, :, tap], segment, optimize=True)
        return out

    def grad_input(self, grad: np.ndarray, w: np.ndarray,
                   xp_shape: Tuple[int, int, int],
                   dilation: int, stride: int, t: int) -> np.ndarray:
        k = w.shape[2]
        gxp = np.zeros(xp_shape)
        for tap in range(k):
            gxp[:, :, tap * dilation: tap * dilation + t: stride] += np.einsum(
                "oc,not->nct", w[:, :, tap], grad, optimize=True)
        return gxp

    def grad_weight(self, grad: np.ndarray, xp: np.ndarray,
                    w_shape: Tuple[int, int, int],
                    dilation: int, stride: int, t: int) -> np.ndarray:
        k = w_shape[2]
        gw = np.zeros(w_shape)
        for tap in range(k):
            segment = xp[:, :, tap * dilation: tap * dilation + t: stride]
            gw[:, :, tap] = np.einsum("not,nct->oc", grad, segment, optimize=True)
        return gw
