"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the whole reproduction: the paper's method
(PIT) is a differentiable architecture search, so it needs a tensor library
with gradients.  The environment provides no deep-learning framework, hence
we implement a small but complete tape-based reverse-mode engine, in the
spirit of PyTorch's eager autograd:

* :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
  produced it (its *parents* and a backward closure).
* Calling :meth:`Tensor.backward` topologically sorts the recorded graph and
  accumulates gradients into every leaf with ``requires_grad=True``.
* All elementwise ops broadcast like numpy; gradients are "unbroadcast"
  (summed) back to the original operand shapes.

Every operator defined here has a numerical-vs-analytic gradient test in
``tests/test_autograd_*.py`` (see also :mod:`repro.autograd.gradcheck`).

The default dtype is ``float64``: the networks in the paper are tiny by
modern standards, and exact-ish gradients make the NAS algorithm (and its
tests) far easier to reason about.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
]

# Per-thread tape switch: concurrent trainings (e.g. the parallel DSE
# engine) must not see another worker's no_grad() evaluation window.
_GRAD_STATE = threading.local()

DEFAULT_DTYPE = np.float64


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``).

    The switch is thread-local, so disabling the tape in one thread never
    affects graphs being built concurrently in others.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape
    (in the calling thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _as_array(value) -> np.ndarray:
    """Coerce python scalars / lists / arrays to a float ndarray."""
    if isinstance(value, np.ndarray):
        if value.dtype != DEFAULT_DTYPE:
            return value.astype(DEFAULT_DTYPE)
        return value
    return np.asarray(value, dtype=DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting.

    Broadcasting may both prepend axes and stretch size-1 axes; the adjoint
    of a broadcast is a sum over the broadcasted axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched (size-1) axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Stored as ``float64``.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional label used in error messages and debugging dumps.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: Optional[str] = None):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({self.data!r}{grad_flag}{label})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    def _raise_item(self):
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy).  Do not mutate in graphs."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        out = Tensor(self.data)
        out.data = self.data  # share storage, skip the copy made by asarray
        return out

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create the result tensor of an op, wiring the tape if needed."""
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into :attr:`grad`, allocating on first use."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            1.0, which requires this tensor to be a scalar (as with a loss).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return _ensure_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _ensure_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __pow__(self, exponent) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value; subgradient 0 at exactly 0."""
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (produce detached float masks, useful for metrics)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return Tensor(self.data > _raw(other))

    def __lt__(self, other):
        return Tensor(self.data < _raw(other))

    def __ge__(self, other):
        return Tensor(self.data >= _raw(other))

    def __le__(self, other):
        return Tensor(self.data <= _raw(other))

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data @ other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            a_data, b_data = a.data, b.data
            if a.requires_grad:
                if b_data.ndim == 1:
                    grad_a = np.multiply.outer(grad, b_data) if a_data.ndim > 1 else grad * b_data
                    if a_data.ndim == 1:
                        grad_a = grad * b_data
                    else:
                        grad_a = np.expand_dims(grad, -1) * b_data
                elif a_data.ndim == 1:
                    grad_a = grad @ np.swapaxes(b_data, -1, -2)
                    grad_a = _unbroadcast(grad_a, a_data.shape)
                else:
                    grad_a = grad @ np.swapaxes(b_data, -1, -2)
                    grad_a = _unbroadcast(grad_a, a_data.shape)
                a._accumulate(grad_a.reshape(a_data.shape))
            if b.requires_grad:
                if a_data.ndim == 1:
                    if b_data.ndim == 1:
                        grad_b = grad * a_data
                    else:
                        grad_b = np.multiply.outer(a_data, grad)
                elif b_data.ndim == 1:
                    grad_b = np.swapaxes(a_data, -1, -2) @ np.expand_dims(grad, -1)
                    grad_b = grad_b.squeeze(-1)
                    grad_b = _unbroadcast(grad_b, b_data.shape)
                else:
                    grad_b = np.swapaxes(a_data, -1, -2) @ grad
                    grad_b = _unbroadcast(grad_b, b_data.shape)
                b._accumulate(grad_b.reshape(b_data.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=_normalize_axes(axis, self.ndim))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        count = self.data.size if axis is None else _axis_size(self.shape, axis)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=_normalize_axes(axis, self.ndim))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, built from differentiable primitives."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        sq = centered * centered
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                axes = _normalize_axes(axis, self.ndim)
                g = np.expand_dims(g, axis=axes)
                o = np.expand_dims(o, axis=axes)
            mask = (self.data == o)
            # Split gradient evenly across ties, matching numpy semantics only
            # approximately but keeping the adjoint well defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * (g / counts))

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def prod(self) -> "Tensor":
        """Product of all elements (zero-safe adjoint).

        Used by the differentiable mask construction (paper Eq. 4), where
        columns of binarized γ values are multiplied together; entries can be
        exactly zero, so the naive ``out/x`` gradient is replaced with a
        product-of-others computation.
        """
        flat = self.data.reshape(-1)
        out_data = np.array(flat.prod())

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            n = flat.size
            # prefix[i] = prod(flat[:i]), suffix[i] = prod(flat[i+1:])
            prefix = np.ones(n)
            suffix = np.ones(n)
            np.cumprod(flat[:-1], out=prefix[1:]) if n > 1 else None
            if n > 1:
                suffix[:-1] = np.cumprod(flat[::-1][:-1])[::-1]
            partial = prefix * suffix
            self._accumulate((grad.reshape(()) * partial).reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad1d(self, left: int, right: int, value: float = 0.0) -> "Tensor":
        """Pad the last axis with ``value`` (used for causal convolutions)."""
        if left < 0 or right < 0:
            raise ValueError("padding must be non-negative")
        pad_width = [(0, 0)] * (self.ndim - 1) + [(left, right)]
        out_data = np.pad(self.data, pad_width, constant_values=value)
        length = self.shape[-1]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sl = [slice(None)] * (self.ndim - 1) + [slice(left, left + length)]
                self._accumulate(grad[tuple(sl)])

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        """Remove a size-1 axis."""
        if self.shape[axis] != 1:
            raise ValueError(f"axis {axis} has size {self.shape[axis]}, not 1")
        out_data = self.data.squeeze(axis=axis)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        """Insert a size-1 axis."""
        out_data = np.expand_dims(self.data, axis=axis)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def flip(self, axis: int = -1) -> "Tensor":
        """Reverse along one axis (used to convert lag-order masks to
        kernel order)."""
        out_data = np.flip(self.data, axis=axis).copy()

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.flip(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def split(self, sections: int, axis: int = 0) -> list:
        """Split into ``sections`` equal parts along ``axis``."""
        if self.shape[axis] % sections != 0:
            raise ValueError(f"axis {axis} of size {self.shape[axis]} does not "
                             f"divide into {sections} sections")
        size = self.shape[axis] // sections
        parts = []
        for i in range(sections):
            index = [slice(None)] * self.ndim
            index[axis] = slice(i * size, (i + 1) * size)
            parts.append(self[tuple(index)])
        return parts

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        """Tile the tensor ``repeats`` times along an existing axis
        (gradient sums over the copies)."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        out_data = np.concatenate([self.data] * repeats, axis=axis)
        size = self.shape[axis]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            total = np.zeros_like(self.data)
            for i in range(repeats):
                index = [slice(None)] * self.ndim
                index[axis] = slice(i * size, (i + 1) * size)
                total += grad[tuple(index)]
            self._accumulate(total)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def sigmoid(self) -> "Tensor":
        out_data = _stable_sigmoid(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------

def _ensure_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _raw(value) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else _as_array(value)


def _normalize_axes(axis, ndim: int):
    if isinstance(axis, int):
        return axis % ndim
    return tuple(a % ndim for a in axis)


def _axis_size(shape: Tuple[int, ...], axis) -> int:
    if isinstance(axis, int):
        return shape[axis % len(shape)]
    size = 1
    for a in axis:
        size *= shape[a % len(shape)]
    return size


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def tensor(data, requires_grad: bool = False, name: Optional[str] = None) -> Tensor:
    """Create a :class:`Tensor` (convenience mirror of the constructor)."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def full(shape, fill_value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def rand(*shape, rng: Optional[np.random.Generator] = None,
         requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(rng.random(shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``numpy.concatenate``."""
    tensors = [_ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(grad[tuple(sl)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``numpy.stack``."""
    tensors = [_ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(moved[i])

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition, a, b) -> Tensor:
    """Differentiable ``numpy.where``; the condition is never differentiated."""
    cond = _raw(condition).astype(bool)
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a, b) -> Tensor:
    """Differentiable elementwise maximum (ties send gradient to ``a``)."""
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    out_data = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        take_a = a.data >= b.data
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * take_a, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~take_a, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Differentiable elementwise minimum (ties send gradient to ``a``)."""
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    out_data = np.minimum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        take_a = a.data <= b.data
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * take_a, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~take_a, b.shape))

    return Tensor._make(out_data, (a, b), backward)
