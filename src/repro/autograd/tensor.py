"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the whole reproduction: the paper's method
(PIT) is a differentiable architecture search, so it needs a tensor library
with gradients.  The environment provides no deep-learning framework, hence
we implement a small but complete reverse-mode engine, in the spirit of
PyTorch's eager autograd:

* :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
  produced it (its *parents* plus a shared :class:`OpDef` describing the op).
* Calling :meth:`Tensor.backward` topologically sorts the recorded graph and
  accumulates gradients into every leaf with ``requires_grad=True``.
* All elementwise ops broadcast like numpy; gradients are "unbroadcast"
  (summed) back to the original operand shapes.

Unlike the original closure-based tape, every operator is described by an
:class:`OpDef` — a pair of *pure* numpy kernels (forward and backward) shared
by all calls — and routed through a single dispatch point, :func:`apply_op`.
That removes thousands of per-step closure allocations from the eager hot
path, and it is what makes the graph-capture executor possible: a thread-local
tracer (see :mod:`repro.autograd.graph`) can observe every dispatch, record a
static IR of one training step, and replay it later by invoking exactly the
same kernels in exactly the same order — which is why compiled execution is
bit-identical to eager.

Every operator defined here has a numerical-vs-analytic gradient test in
``tests/test_autograd_*.py`` (see also :mod:`repro.autograd.gradcheck`).

The default dtype is ``float64``: the networks in the paper are tiny by
modern standards, and exact-ish gradients make the NAS algorithm (and its
tests) far easier to reason about.  ``repro.set_default_dtype("float32")``
(or ``REPRO_DTYPE=float32``) switches the whole substrate to single
precision, which halves memory traffic and compounds with the compiled
training step; gradient checking stays pinned to float64 regardless.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "OpDef",
    "Tensor",
    "apply_op",
    "record_side_effect",
    "mark_capture_unsafe",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype_scope",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
]

# Per-thread tape switch: concurrent trainings (e.g. the parallel DSE
# engine) must not see another worker's no_grad() evaluation window.
_GRAD_STATE = threading.local()

# Per-thread graph tracer (see repro.autograd.graph.capture): while a
# GraphCapture is pushed here, apply_op reports every dispatch to it.
# Thread-local for the same reason no_grad is — parallel DSE workers must
# be able to trace their own step without observing each other's ops.
_TRACE_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``).

    The switch is thread-local, so disabling the tape in one thread never
    affects graphs being built concurrently in others.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape
    (in the calling thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


# ----------------------------------------------------------------------
# Default dtype configuration
# ----------------------------------------------------------------------

ENV_DTYPE = "REPRO_DTYPE"

_SUPPORTED_DTYPES = {"float32": np.float32, "float64": np.float64}

# A mistyped REPRO_DTYPE is deliberately NOT validated here: this module is
# imported by `import repro`, and failing at import time would crash even
# `repro.cli --help`.  The name is checked on first use (get_default_dtype),
# where the error can surface with context.
_DTYPE_NAME = os.environ.get(ENV_DTYPE) or "float64"
_DTYPE_RESOLVED = None


def _resolve_dtype(dtype) -> type:
    name = dtype if isinstance(dtype, str) else np.dtype(dtype).name
    if name not in _SUPPORTED_DTYPES:
        raise ValueError(f"unsupported dtype {dtype!r}; "
                         f"choose from {sorted(_SUPPORTED_DTYPES)}")
    return _SUPPORTED_DTYPES[name]


def get_default_dtype():
    """The numpy scalar type every :class:`Tensor` stores (float64 default)."""
    global _DTYPE_RESOLVED
    if _DTYPE_RESOLVED is None:
        try:
            _DTYPE_RESOLVED = _resolve_dtype(_DTYPE_NAME)
        except ValueError as exc:
            raise ValueError(
                f"invalid {ENV_DTYPE} value {_DTYPE_NAME!r}: {exc}") from exc
    return _DTYPE_RESOLVED


def set_default_dtype(dtype) -> None:
    """Set the process-wide tensor dtype: ``"float32"`` or ``"float64"``.

    Affects tensors created afterwards; existing tensors keep their storage.
    Mixed graphs work (numpy promotes), but for the compiled-step and
    backend parity guarantees switch dtypes between runs, not mid-graph.
    """
    global _DTYPE_NAME, _DTYPE_RESOLVED
    _DTYPE_RESOLVED = _resolve_dtype(dtype)
    _DTYPE_NAME = np.dtype(_DTYPE_RESOLVED).name


@contextlib.contextmanager
def default_dtype_scope(dtype):
    """Temporarily switch the default dtype (process-wide, not thread-local).

    Used by :mod:`repro.autograd.gradcheck` to pin numerical differentiation
    to float64 even when the library runs in float32 mode.
    """
    previous = get_default_dtype()
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def _as_array(value) -> np.ndarray:
    """Coerce python scalars / lists / arrays to the default float ndarray."""
    dtype = get_default_dtype()
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting.

    Broadcasting may both prepend axes and stretch size-1 axes; the adjoint
    of a broadcast is a sum over the broadcasted axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched (size-1) axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ----------------------------------------------------------------------
# Op dispatch
# ----------------------------------------------------------------------

class OpDef:
    """A differentiable operator as a pair of pure numpy kernels.

    Parameters
    ----------
    name:
        Stable identifier (used by the graph IR and error messages).
    fwd:
        ``fwd(ins, attrs) -> (out, ctx)`` where ``ins`` is a tuple of input
        arrays and ``attrs`` the op's static attributes (axis, dilation,
        ...).  ``ctx`` carries forward-pass byproducts the backward needs
        (e.g. a dropout keep-mask); None when there are none.
    bwd:
        ``bwd(grad, ins, out, ctx, attrs, needs) -> grads`` returning one
        gradient (or None) per input; ``needs[i]`` tells whether input ``i``
        requires a gradient.
    fwd_out:
        Optional ``fwd_out(ins, attrs, out) -> ctx`` variant writing the
        result into a preallocated buffer — used by the compiled-step
        executor for allocation-free replay of elementwise ops.  Must be
        bit-identical to ``fwd``.
    fwd_scratch:
        Optional ``fwd_scratch(ins, attrs, scratch) -> (out, ctx)`` variant
        receiving a per-node dict that persists across replays, letting the
        op keep private work buffers (e.g. the conv's padded input) instead
        of reallocating them.  Must be bit-identical to ``fwd``.
    bwd_scratch:
        Optional ``bwd_scratch(grad, ins, out, ctx, attrs, needs, scratch)``
        variant of ``bwd`` with a per-step persistent dict, used by the
        compiled-step executor so backward intermediates (conv adjoint
        buffers, reduction broadcasts) live in reusable buffers instead of
        fresh allocations every replay.  Must be bit-identical to ``bwd``.
        Returned buffers may be handed out every replay — the runner's
        gradient adoption then reuses them as the slot's gradient storage.
    bwd_uses:
        Which forward *values* ``bwd`` actually reads: a subset of
        ``("ins", "out")``.  Ops whose backward only needs shapes/dtypes
        (``add``, ``sum``, ``reshape``, ...) declare ``()``; ops that read
        their output (``exp``, ``tanh``) declare ``("out",)``.  The graph
        optimizer's liveness analysis uses this to recycle forward buffers
        that nothing will read again; the conservative default keeps
        everything alive through the backward pass.
    view_of:
        Index of an input the output may *alias* (``reshape``, ``transpose``,
        ``getitem`` on basic slices return numpy views).  The memory planner
        unions aliased slots so a shared buffer is never recycled while a
        view of it is still live.  None for ops returning owned arrays.
    inplace:
        In-place safety map for the memory planner: ``{input_index:
        (other_operand_indices_that_must_not_need_grad,)}``.  An entry means
        ``fwd_out`` may write the output over ``ins[input_index]`` (same
        shape/dtype, input dead afterwards) without changing ``bwd``'s
        results, provided the listed other operands receive no gradient.
        ``relu`` is the canonical unconditional case: ``max(x, 0) > 0``
        equals ``x > 0`` elementwise, so its backward is alias-tolerant.

    Kernels must be *pure* in the buffers: they may close over static
    configuration but never over arrays of a particular call — this is the
    contract that lets the graph executor replay a recorded op on fresh
    batch data.
    """

    __slots__ = ("name", "fwd", "bwd", "fwd_out", "fwd_scratch",
                 "bwd_scratch", "bwd_uses", "view_of", "inplace")

    def __init__(self, name: str, fwd: Callable, bwd: Callable,
                 fwd_out: Optional[Callable] = None,
                 fwd_scratch: Optional[Callable] = None,
                 bwd_scratch: Optional[Callable] = None,
                 bwd_uses: Tuple[str, ...] = ("ins", "out"),
                 view_of: Optional[int] = None,
                 inplace: Optional[Dict[int, Tuple[int, ...]]] = None):
        self.name = name
        self.fwd = fwd
        self.bwd = bwd
        self.fwd_out = fwd_out
        self.fwd_scratch = fwd_scratch
        self.bwd_scratch = bwd_scratch
        self.bwd_uses = bwd_uses
        self.view_of = view_of
        self.inplace = inplace or {}

    def __repr__(self) -> str:
        return f"OpDef({self.name!r})"


_NO_ATTRS: Dict = {}


def apply_op(op: OpDef, inputs: Sequence["Tensor"],
             attrs: Optional[Dict] = None, detach: bool = False) -> "Tensor":
    """Dispatch point of every differentiable operator.

    Runs ``op``'s forward kernel on the inputs' arrays, wires the result
    into the autograd graph (unless ``detach`` or grads are disabled), and
    reports the dispatch to the active :class:`GraphCapture` tracer, if any.
    """
    if attrs is None:
        attrs = _NO_ATTRS
    arrays = tuple(t.data for t in inputs)
    out_data, ctx = op.fwd(arrays, attrs)
    out = Tensor(out_data)
    if not detach and is_grad_enabled() and any(t.requires_grad for t in inputs):
        out.requires_grad = True
        out._parents = tuple(inputs)
        out._op = op
        out._ctx = ctx
        out._attrs = attrs
    tracer = getattr(_TRACE_STATE, "tracer", None)
    if tracer is not None:
        tracer.record(op, inputs, out, attrs)
    return out


def record_side_effect(inputs: Sequence["Tensor"], fn: Callable) -> None:
    """Run ``fn(*input_arrays)`` now and replay it with the captured graph.

    For stateful updates that live *next to* the differentiable graph but
    outside it — e.g. BatchNorm's running statistics, which are computed
    from the batch-mean/variance nodes with plain numpy.  Eagerly this is
    just a call; under capture the effect is recorded at its program
    position so the compiled step reproduces it on every replay.  ``fn``
    must only close over static state (the module), never over arrays of a
    particular batch.
    """
    fn(*(t.data for t in inputs))
    tracer = getattr(_TRACE_STATE, "tracer", None)
    if tracer is not None:
        tracer.record_effect(tuple(inputs), fn)


def mark_capture_unsafe(reason: str) -> None:
    """Poison the active graph capture (no-op when not tracing).

    Called by code whose behaviour depends on tensor *values* — sampled
    supernet paths, label-indexed gathers, rescue branches — which a static
    replay cannot reproduce.  The executor then falls back to eager
    execution instead of silently replaying a stale decision.
    """
    tracer = getattr(_TRACE_STATE, "tracer", None)
    if tracer is not None:
        tracer.poison(reason)


def push_tracer(tracer) -> None:
    """Install a graph tracer for the calling thread (no nesting)."""
    if getattr(_TRACE_STATE, "tracer", None) is not None:
        raise RuntimeError("a graph capture is already active in this thread")
    _TRACE_STATE.tracer = tracer


def pop_tracer() -> None:
    _TRACE_STATE.tracer = None


def _topo_sort(root: "Tensor") -> List["Tensor"]:
    """Iterative DFS topological sort of ``root``'s ancestor graph.

    Shared between eager :meth:`Tensor.backward` and the graph capture's
    backward-schedule builder so both traverse (and therefore accumulate
    gradients) in exactly the same order — a prerequisite for the
    compiled-vs-eager bit-parity guarantee.
    """
    topo: List[Tensor] = []
    visited: set = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo


# ----------------------------------------------------------------------
# Op kernels
#
# Each kernel pair reproduces the expressions of the original closure tape
# verbatim — the numbers must not change, only where they are computed.
# ----------------------------------------------------------------------

# -- elementwise arithmetic ---------------------------------------------

def _add_fwd(ins, attrs):
    return ins[0] + ins[1], None


def _add_bwd(g, ins, out, ctx, attrs, needs):
    return (_unbroadcast(g, ins[0].shape) if needs[0] else None,
            _unbroadcast(g, ins[1].shape) if needs[1] else None)


def _add_out(ins, attrs, out):
    np.add(ins[0], ins[1], out=out)
    return None


_ADD = OpDef("add", _add_fwd, _add_bwd, _add_out, bwd_uses=(),
             inplace={0: (), 1: ()})


def _sub_fwd(ins, attrs):
    return ins[0] - ins[1], None


def _sub_bwd(g, ins, out, ctx, attrs, needs):
    return (_unbroadcast(g, ins[0].shape) if needs[0] else None,
            _unbroadcast(-g, ins[1].shape) if needs[1] else None)


def _sub_out(ins, attrs, out):
    np.subtract(ins[0], ins[1], out=out)
    return None


def _sub_bwd_scratch(g, ins, out, ctx, attrs, needs, scratch):
    gb = None
    if needs[1]:
        neg = _scratch_array(scratch, "neg", g.shape, g.dtype)
        np.negative(g, out=neg)
        gb = _unbroadcast(neg, ins[1].shape)
    return (_unbroadcast(g, ins[0].shape) if needs[0] else None, gb)


_SUB = OpDef("sub", _sub_fwd, _sub_bwd, _sub_out,
             bwd_scratch=_sub_bwd_scratch, bwd_uses=(),
             inplace={0: (), 1: ()})


def _mul_fwd(ins, attrs):
    return ins[0] * ins[1], None


def _mul_bwd(g, ins, out, ctx, attrs, needs):
    a, b = ins
    return (_unbroadcast(g * b, a.shape) if needs[0] else None,
            _unbroadcast(g * a, b.shape) if needs[1] else None)


def _mul_out(ins, attrs, out):
    np.multiply(ins[0], ins[1], out=out)
    return None


def _mul_bwd_scratch(g, ins, out, ctx, attrs, needs, scratch):
    a, b = ins
    ga = gb = None
    if needs[0]:
        prod = _scratch_array(scratch, "ga", g.shape, np.result_type(g, b))
        np.multiply(g, b, out=prod)
        ga = _unbroadcast(prod, a.shape)
    if needs[1]:
        prod = _scratch_array(scratch, "gb", g.shape, np.result_type(g, a))
        np.multiply(g, a, out=prod)
        gb = _unbroadcast(prod, b.shape)
    return ga, gb


_MUL = OpDef("mul", _mul_fwd, _mul_bwd, _mul_out,
             bwd_scratch=_mul_bwd_scratch, bwd_uses=("ins",),
             inplace={0: (1,), 1: (0,)})


def _div_fwd(ins, attrs):
    return ins[0] / ins[1], None


def _div_bwd(g, ins, out, ctx, attrs, needs):
    a, b = ins
    return (_unbroadcast(g / b, a.shape) if needs[0] else None,
            _unbroadcast(-g * a / (b ** 2), b.shape) if needs[1] else None)


def _div_out(ins, attrs, out):
    np.divide(ins[0], ins[1], out=out)
    return None


def _div_bwd_scratch(g, ins, out, ctx, attrs, needs, scratch):
    a, b = ins
    ga = gb = None
    if needs[0]:
        quot = _scratch_array(scratch, "ga", g.shape, np.result_type(g, b))
        np.divide(g, b, out=quot)
        ga = _unbroadcast(quot, a.shape)
    if needs[1]:
        # Same expression as _div_bwd (-g * a / b**2), each product into a
        # persistent buffer.
        dtype = np.result_type(g, a, b)
        buf = _scratch_array(scratch, "gb", g.shape, dtype)
        np.negative(g, out=buf)
        np.multiply(buf, a, out=buf)
        sq = _scratch_array(scratch, "b2", b.shape, b.dtype) \
            if b.size > 1 else None
        if sq is None:
            gb = _unbroadcast(buf / b ** 2, b.shape)
        else:
            np.power(b, 2, out=sq)
            np.divide(buf, sq, out=buf)
            gb = _unbroadcast(buf, b.shape)
    return ga, gb


_DIV = OpDef("div", _div_fwd, _div_bwd, _div_out,
             bwd_scratch=_div_bwd_scratch, bwd_uses=("ins",),
             inplace={0: (1,)})


def _neg_fwd(ins, attrs):
    return -ins[0], None


def _neg_bwd(g, ins, out, ctx, attrs, needs):
    return (-g,)


def _neg_out(ins, attrs, out):
    np.negative(ins[0], out=out)
    return None


_NEG = OpDef("neg", _neg_fwd, _neg_bwd, _neg_out, bwd_uses=(),
             inplace={0: ()})


def _pow_fwd(ins, attrs):
    return ins[0] ** attrs["exponent"], None


def _pow_bwd(g, ins, out, ctx, attrs, needs):
    exponent = attrs["exponent"]
    return (g * exponent * ins[0] ** (exponent - 1),)


def _pow_out(ins, attrs, out):
    np.power(ins[0], attrs["exponent"], out=out)
    return None


_POW = OpDef("pow", _pow_fwd, _pow_bwd, _pow_out, bwd_uses=("ins",))


def _abs_fwd(ins, attrs):
    return np.abs(ins[0]), None


def _abs_bwd(g, ins, out, ctx, attrs, needs):
    return (g * np.sign(ins[0]),)


def _abs_out(ins, attrs, out):
    np.absolute(ins[0], out=out)
    return None


_ABS = OpDef("abs", _abs_fwd, _abs_bwd, _abs_out, bwd_uses=("ins",))


def _exp_fwd(ins, attrs):
    return np.exp(ins[0]), None


def _exp_bwd(g, ins, out, ctx, attrs, needs):
    return (g * out,)


def _exp_out(ins, attrs, out):
    np.exp(ins[0], out=out)
    return None


_EXP = OpDef("exp", _exp_fwd, _exp_bwd, _exp_out, bwd_uses=("out",),
             inplace={0: ()})


def _log_fwd(ins, attrs):
    return np.log(ins[0]), None


def _log_bwd(g, ins, out, ctx, attrs, needs):
    return (g / ins[0],)


def _log_out(ins, attrs, out):
    np.log(ins[0], out=out)
    return None


_LOG = OpDef("log", _log_fwd, _log_bwd, _log_out, bwd_uses=("ins",))


def _sqrt_fwd(ins, attrs):
    return np.sqrt(ins[0]), None


def _sqrt_bwd(g, ins, out, ctx, attrs, needs):
    return (g * 0.5 / out,)


def _sqrt_out(ins, attrs, out):
    np.sqrt(ins[0], out=out)
    return None


_SQRT = OpDef("sqrt", _sqrt_fwd, _sqrt_bwd, _sqrt_out, bwd_uses=("out",),
              inplace={0: ()})


def _clip_fwd(ins, attrs):
    return np.clip(ins[0], attrs["low"], attrs["high"]), None


def _clip_bwd(g, ins, out, ctx, attrs, needs):
    a = ins[0]
    inside = (a >= attrs["low"]) & (a <= attrs["high"])
    return (g * inside,)


def _clip_out(ins, attrs, out):
    np.clip(ins[0], attrs["low"], attrs["high"], out=out)
    return None


_CLIP = OpDef("clip", _clip_fwd, _clip_bwd, _clip_out, bwd_uses=("ins",))


# -- comparisons (detached float masks) ---------------------------------

def _no_grads_2(g, ins, out, ctx, attrs, needs):
    return (None, None)


_GT = OpDef("gt", lambda ins, attrs: (ins[0] > ins[1], None), _no_grads_2,
            bwd_uses=())
_LT = OpDef("lt", lambda ins, attrs: (ins[0] < ins[1], None), _no_grads_2,
            bwd_uses=())
_GE = OpDef("ge", lambda ins, attrs: (ins[0] >= ins[1], None), _no_grads_2,
            bwd_uses=())
_LE = OpDef("le", lambda ins, attrs: (ins[0] <= ins[1], None), _no_grads_2,
            bwd_uses=())


# -- matrix multiplication ----------------------------------------------

def _matmul_fwd(ins, attrs):
    return ins[0] @ ins[1], None


def _matmul_bwd(g, ins, out, ctx, attrs, needs):
    a, b = ins
    grad_a = grad_b = None
    if needs[0]:
        if b.ndim == 1:
            grad_a = g * b if a.ndim == 1 else np.expand_dims(g, -1) * b
        else:
            grad_a = g @ np.swapaxes(b, -1, -2)
            grad_a = _unbroadcast(grad_a, a.shape)
        grad_a = grad_a.reshape(a.shape)
    if needs[1]:
        if a.ndim == 1:
            grad_b = g * a if b.ndim == 1 else np.multiply.outer(a, g)
        elif b.ndim == 1:
            grad_b = np.swapaxes(a, -1, -2) @ np.expand_dims(g, -1)
            grad_b = _unbroadcast(grad_b.squeeze(-1), b.shape)
        else:
            grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
        grad_b = grad_b.reshape(b.shape)
    return grad_a, grad_b


_MATMUL = OpDef("matmul", _matmul_fwd, _matmul_bwd, bwd_uses=("ins",))


# -- reductions ----------------------------------------------------------

def _sum_fwd(ins, attrs):
    return ins[0].sum(axis=attrs["axis"], keepdims=attrs["keepdims"]), None


def _sum_bwd(g, ins, out, ctx, attrs, needs):
    a = ins[0]
    axis = attrs["axis"]
    if axis is not None and not attrs["keepdims"]:
        g = np.expand_dims(g, axis=_normalize_axes(axis, a.ndim))
    return (np.broadcast_to(g, a.shape).copy(),)


def _scratch_array(scratch: Dict, key: str, shape: Tuple[int, ...],
                   dtype) -> np.ndarray:
    """Fetch-or-create a replay-persistent work buffer.

    The in-module counterpart of
    :func:`repro.autograd.backends.base.scratch_buffer` (which additionally
    handles the eager ``scratch=None`` convention and zero-filling); kept
    here because this bottom-of-the-stack module must not import the
    backends package.
    """
    buf = scratch.get(key)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = scratch[key] = np.empty(shape, dtype)
    return buf


def _bcast_buf(scratch, g, shape):
    """Broadcast-copy ``g`` to ``shape`` into a replay-persistent buffer."""
    buf = _scratch_array(scratch, "g", shape, g.dtype)
    np.copyto(buf, g)
    return buf


def _sum_bwd_scratch(g, ins, out, ctx, attrs, needs, scratch):
    a = ins[0]
    axis = attrs["axis"]
    if axis is not None and not attrs["keepdims"]:
        g = np.expand_dims(g, axis=_normalize_axes(axis, a.ndim))
    return (_bcast_buf(scratch, g, a.shape),)


_SUM = OpDef("sum", _sum_fwd, _sum_bwd, bwd_scratch=_sum_bwd_scratch,
             bwd_uses=())


def _mean_fwd(ins, attrs):
    return ins[0].mean(axis=attrs["axis"], keepdims=attrs["keepdims"]), None


def _mean_bwd(g, ins, out, ctx, attrs, needs):
    a = ins[0]
    axis = attrs["axis"]
    count = a.size if axis is None else _axis_size(a.shape, axis)
    g = g / count
    if axis is not None and not attrs["keepdims"]:
        g = np.expand_dims(g, axis=_normalize_axes(axis, a.ndim))
    return (np.broadcast_to(g, a.shape).copy(),)


def _mean_bwd_scratch(g, ins, out, ctx, attrs, needs, scratch):
    a = ins[0]
    axis = attrs["axis"]
    count = a.size if axis is None else _axis_size(a.shape, axis)
    g = g / count
    if axis is not None and not attrs["keepdims"]:
        g = np.expand_dims(g, axis=_normalize_axes(axis, a.ndim))
    return (_bcast_buf(scratch, g, a.shape),)


_MEAN = OpDef("mean", _mean_fwd, _mean_bwd, bwd_scratch=_mean_bwd_scratch,
              bwd_uses=())


def _max_fwd(ins, attrs):
    return ins[0].max(axis=attrs["axis"], keepdims=attrs["keepdims"]), None


def _max_bwd(g, ins, out, ctx, attrs, needs):
    a = ins[0]
    axis = attrs["axis"]
    o = out
    if axis is not None and not attrs["keepdims"]:
        axes = _normalize_axes(axis, a.ndim)
        g = np.expand_dims(g, axis=axes)
        o = np.expand_dims(o, axis=axes)
    mask = (a == o)
    # Split gradient evenly across ties, matching numpy semantics only
    # approximately but keeping the adjoint well defined.
    counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    return (mask * (g / counts),)


_MAX = OpDef("max", _max_fwd, _max_bwd, bwd_uses=("ins", "out"))


def _prod_fwd(ins, attrs):
    return np.array(ins[0].reshape(-1).prod()), None


def _prod_bwd(g, ins, out, ctx, attrs, needs):
    a = ins[0]
    flat = a.reshape(-1)
    n = flat.size
    # prefix[i] = prod(flat[:i]), suffix[i] = prod(flat[i+1:])
    prefix = np.ones(n)
    suffix = np.ones(n)
    if n > 1:
        np.cumprod(flat[:-1], out=prefix[1:])
        suffix[:-1] = np.cumprod(flat[::-1][:-1])[::-1]
    partial = prefix * suffix
    return ((g.reshape(()) * partial).reshape(a.shape),)


_PROD = OpDef("prod", _prod_fwd, _prod_bwd, bwd_uses=("ins",))


# -- shape manipulation --------------------------------------------------

def _reshape_fwd(ins, attrs):
    return ins[0].reshape(attrs["shape"]), None


def _reshape_bwd(g, ins, out, ctx, attrs, needs):
    return (g.reshape(ins[0].shape),)


_RESHAPE = OpDef("reshape", _reshape_fwd, _reshape_bwd, bwd_uses=(),
                 view_of=0)


def _transpose_fwd(ins, attrs):
    return ins[0].transpose(attrs["axes"]), None


def _transpose_bwd(g, ins, out, ctx, attrs, needs):
    return (g.transpose(tuple(np.argsort(attrs["axes"]))),)


_TRANSPOSE = OpDef("transpose", _transpose_fwd, _transpose_bwd, bwd_uses=(),
                   view_of=0)


def _getitem_fwd(ins, attrs):
    return ins[0][attrs["index"]], None


def _getitem_bwd(g, ins, out, ctx, attrs, needs):
    full = np.zeros_like(ins[0])
    np.add.at(full, attrs["index"], g)
    return (full,)


# Basic-slice indexing returns numpy views, so the output may alias the
# input storage; fancy indexing copies, but the planner stays conservative.
_GETITEM = OpDef("getitem", _getitem_fwd, _getitem_bwd, bwd_uses=(),
                 view_of=0)


def _pad1d_fwd(ins, attrs):
    a = ins[0]
    pad_width = [(0, 0)] * (a.ndim - 1) + [(attrs["left"], attrs["right"])]
    return np.pad(a, pad_width, constant_values=attrs["value"]), None


def _pad1d_bwd(g, ins, out, ctx, attrs, needs):
    a = ins[0]
    left = attrs["left"]
    sl = [slice(None)] * (a.ndim - 1) + [slice(left, left + a.shape[-1])]
    return (g[tuple(sl)],)


_PAD1D = OpDef("pad1d", _pad1d_fwd, _pad1d_bwd, bwd_uses=())


def _squeeze_fwd(ins, attrs):
    return ins[0].squeeze(axis=attrs["axis"]), None


def _reshape_to_input_bwd(g, ins, out, ctx, attrs, needs):
    return (g.reshape(ins[0].shape),)


_SQUEEZE = OpDef("squeeze", _squeeze_fwd, _reshape_to_input_bwd, bwd_uses=(),
                 view_of=0)


def _unsqueeze_fwd(ins, attrs):
    return np.expand_dims(ins[0], axis=attrs["axis"]), None


_UNSQUEEZE = OpDef("unsqueeze", _unsqueeze_fwd, _reshape_to_input_bwd,
                   bwd_uses=(), view_of=0)


def _flip_fwd(ins, attrs):
    return np.flip(ins[0], axis=attrs["axis"]).copy(), None


def _flip_bwd(g, ins, out, ctx, attrs, needs):
    return (np.flip(g, axis=attrs["axis"]),)


_FLIP = OpDef("flip", _flip_fwd, _flip_bwd, bwd_uses=())


def _repeat_fwd(ins, attrs):
    return np.concatenate([ins[0]] * attrs["repeats"], axis=attrs["axis"]), None


def _repeat_bwd(g, ins, out, ctx, attrs, needs):
    a = ins[0]
    axis = attrs["axis"]
    size = a.shape[axis]
    total = np.zeros_like(a)
    for i in range(attrs["repeats"]):
        index = [slice(None)] * a.ndim
        index[axis] = slice(i * size, (i + 1) * size)
        total += g[tuple(index)]
    return (total,)


_REPEAT = OpDef("repeat", _repeat_fwd, _repeat_bwd, bwd_uses=())


# -- activations ---------------------------------------------------------

def _sigmoid_fwd(ins, attrs):
    return _stable_sigmoid(ins[0]), None


def _sigmoid_out(ins, attrs, out):
    _stable_sigmoid(ins[0], out=out)
    return None


def _sigmoid_bwd(g, ins, out, ctx, attrs, needs):
    return (g * out * (1.0 - out),)


_SIGMOID = OpDef("sigmoid", _sigmoid_fwd, _sigmoid_bwd, _sigmoid_out,
                 bwd_uses=("out",), inplace={0: ()})


def _tanh_fwd(ins, attrs):
    return np.tanh(ins[0]), None


def _tanh_bwd(g, ins, out, ctx, attrs, needs):
    return (g * (1.0 - out ** 2),)


def _tanh_out(ins, attrs, out):
    np.tanh(ins[0], out=out)
    return None


_TANH = OpDef("tanh", _tanh_fwd, _tanh_bwd, _tanh_out, bwd_uses=("out",),
              inplace={0: ()})


def _relu_fwd(ins, attrs):
    return np.maximum(ins[0], 0.0), None


def _relu_bwd(g, ins, out, ctx, attrs, needs):
    return (g * (ins[0] > 0.0),)


def _relu_out(ins, attrs, out):
    np.maximum(ins[0], 0.0, out=out)
    return None


def _relu_bwd_scratch(g, ins, out, ctx, attrs, needs, scratch):
    mask = _scratch_array(scratch, "mask", ins[0].shape, np.dtype(bool))
    np.greater(ins[0], 0.0, out=mask)
    res = _scratch_array(scratch, "g", g.shape, np.result_type(g, ins[0]))
    np.multiply(g, mask, out=res)
    return (res,)


# In-place relu is safe even though bwd reads ins[0]: the mask
# (max(x, 0) > 0) is elementwise identical to (x > 0).
_RELU = OpDef("relu", _relu_fwd, _relu_bwd, _relu_out,
              bwd_scratch=_relu_bwd_scratch, bwd_uses=("ins",),
              inplace={0: ()})


# -- variadic / free-function ops ---------------------------------------

def _concat_fwd(ins, attrs):
    return np.concatenate(ins, axis=attrs["axis"]), None


def _concat_bwd(g, ins, out, ctx, attrs, needs):
    axis = attrs["axis"]
    sizes = [a.shape[axis] for a in ins]
    offsets = np.cumsum([0] + sizes)
    grads = []
    for a, need, start, stop in zip(ins, needs, offsets[:-1], offsets[1:]):
        if need:
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(start, stop)
            grads.append(g[tuple(sl)])
        else:
            grads.append(None)
    return tuple(grads)


_CONCAT = OpDef("concatenate", _concat_fwd, _concat_bwd, bwd_uses=())


def _stack_fwd(ins, attrs):
    return np.stack(ins, axis=attrs["axis"]), None


def _stack_bwd(g, ins, out, ctx, attrs, needs):
    moved = np.moveaxis(g, attrs["axis"], 0)
    return tuple(moved[i] if need else None for i, need in enumerate(needs))


_STACK = OpDef("stack", _stack_fwd, _stack_bwd, bwd_uses=())


def _where_fwd(ins, attrs):
    return np.where(ins[0].astype(bool), ins[1], ins[2]), None


def _where_bwd(g, ins, out, ctx, attrs, needs):
    cond = ins[0].astype(bool)
    return (None,
            _unbroadcast(g * cond, ins[1].shape) if needs[1] else None,
            _unbroadcast(g * ~cond, ins[2].shape) if needs[2] else None)


_WHERE = OpDef("where", _where_fwd, _where_bwd, bwd_uses=("ins",))


def _maximum_fwd(ins, attrs):
    return np.maximum(ins[0], ins[1]), None


def _maximum_bwd(g, ins, out, ctx, attrs, needs):
    a, b = ins
    take_a = a >= b
    return (_unbroadcast(g * take_a, a.shape) if needs[0] else None,
            _unbroadcast(g * ~take_a, b.shape) if needs[1] else None)


def _maximum_out(ins, attrs, out):
    np.maximum(ins[0], ins[1], out=out)
    return None


_MAXIMUM = OpDef("maximum", _maximum_fwd, _maximum_bwd, _maximum_out,
                 bwd_uses=("ins",))


def _minimum_fwd(ins, attrs):
    return np.minimum(ins[0], ins[1]), None


def _minimum_bwd(g, ins, out, ctx, attrs, needs):
    a, b = ins
    take_a = a <= b
    return (_unbroadcast(g * take_a, a.shape) if needs[0] else None,
            _unbroadcast(g * ~take_a, b.shape) if needs[1] else None)


def _minimum_out(ins, attrs, out):
    np.minimum(ins[0], ins[1], out=out)
    return None


_MINIMUM = OpDef("minimum", _minimum_fwd, _minimum_bwd, _minimum_out,
                 bwd_uses=("ins",))


# ----------------------------------------------------------------------
# Tensor
# ----------------------------------------------------------------------

class Tensor:
    """A numpy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Stored with the default dtype
        (see :func:`set_default_dtype`).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional label used in error messages and debugging dumps.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_op", "_ctx", "_attrs", "name")

    def __init__(self, data, requires_grad: bool = False, name: Optional[str] = None):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: Optional[OpDef] = None
        self._ctx = None
        self._attrs: Dict = _NO_ATTRS
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({self.data!r}{grad_flag}{label})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    def _raise_item(self):
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy).  Do not mutate in graphs."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        out = Tensor(self.data)
        out.data = self.data  # share storage, skip the copy made by asarray
        return out

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create the result tensor of an op from a backward *closure*.

        Legacy construction path, kept for downstream code that has not
        migrated to :class:`OpDef` dispatch.  Closure-taped ops cannot be
        replayed by the graph executor, so an active capture is poisoned
        (the compiled step then falls back to eager execution).
        """
        tracer = getattr(_TRACE_STATE, "tracer", None)
        if tracer is not None:
            tracer.poison("op recorded via the legacy closure tape (Tensor._make)")
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into :attr:`grad`, allocating on first use."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            1.0, which requires this tensor to be a scalar (as with a loss).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.shape}")

        topo = _topo_sort(self)
        self._accumulate(grad)
        for node in reversed(topo):
            node_grad = node.grad
            if node_grad is None:
                continue
            op = node._op
            if op is not None:
                parents = node._parents
                needs = tuple(p.requires_grad for p in parents)
                grads = op.bwd(node_grad, tuple(p.data for p in parents),
                               node.data, node._ctx, node._attrs, needs)
                for parent, g in zip(parents, grads):
                    if g is not None and parent.requires_grad:
                        parent._accumulate(g)
            elif node._backward is not None:
                node._backward(node_grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        return apply_op(_ADD, (self, _ensure_tensor(other)))

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other) -> "Tensor":
        return apply_op(_SUB, (self, _ensure_tensor(other)))

    def __rsub__(self, other) -> "Tensor":
        return _ensure_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        return apply_op(_MUL, (self, _ensure_tensor(other)))

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        return apply_op(_DIV, (self, _ensure_tensor(other)))

    def __rtruediv__(self, other) -> "Tensor":
        return _ensure_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return apply_op(_NEG, (self,))

    def __pow__(self, exponent) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return apply_op(_POW, (self,), {"exponent": exponent})

    def abs(self) -> "Tensor":
        """Elementwise absolute value; subgradient 0 at exactly 0."""
        return apply_op(_ABS, (self,))

    def exp(self) -> "Tensor":
        return apply_op(_EXP, (self,))

    def log(self) -> "Tensor":
        return apply_op(_LOG, (self,))

    def sqrt(self) -> "Tensor":
        return apply_op(_SQRT, (self,))

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        return apply_op(_CLIP, (self,), {"low": low, "high": high})

    # ------------------------------------------------------------------
    # Comparisons (produce detached float masks, useful for metrics)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return apply_op(_GT, (self, _ensure_tensor(other)), detach=True)

    def __lt__(self, other):
        return apply_op(_LT, (self, _ensure_tensor(other)), detach=True)

    def __ge__(self, other):
        return apply_op(_GE, (self, _ensure_tensor(other)), detach=True)

    def __le__(self, other):
        return apply_op(_LE, (self, _ensure_tensor(other)), detach=True)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        return apply_op(_MATMUL, (self, _ensure_tensor(other)))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_SUM, (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_MEAN, (self,), {"axis": axis, "keepdims": keepdims})

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, built from differentiable primitives."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        sq = centered * centered
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_MAX, (self,), {"axis": axis, "keepdims": keepdims})

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def prod(self) -> "Tensor":
        """Product of all elements (zero-safe adjoint).

        Used by the differentiable mask construction (paper Eq. 4), where
        columns of binarized γ values are multiplied together; entries can be
        exactly zero, so the naive ``out/x`` gradient is replaced with a
        product-of-others computation.
        """
        return apply_op(_PROD, (self,))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op(_RESHAPE, (self,), {"shape": shape})

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return apply_op(_TRANSPOSE, (self,), {"axes": axes})

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        return apply_op(_GETITEM, (self,), {"index": index})

    def pad1d(self, left: int, right: int, value: float = 0.0) -> "Tensor":
        """Pad the last axis with ``value`` (used for causal convolutions)."""
        if left < 0 or right < 0:
            raise ValueError("padding must be non-negative")
        return apply_op(_PAD1D, (self,),
                        {"left": left, "right": right, "value": value})

    def squeeze(self, axis: int) -> "Tensor":
        """Remove a size-1 axis."""
        if self.shape[axis] != 1:
            raise ValueError(f"axis {axis} has size {self.shape[axis]}, not 1")
        return apply_op(_SQUEEZE, (self,), {"axis": axis})

    def unsqueeze(self, axis: int) -> "Tensor":
        """Insert a size-1 axis."""
        return apply_op(_UNSQUEEZE, (self,), {"axis": axis})

    def flip(self, axis: int = -1) -> "Tensor":
        """Reverse along one axis (used to convert lag-order masks to
        kernel order)."""
        return apply_op(_FLIP, (self,), {"axis": axis})

    def split(self, sections: int, axis: int = 0) -> list:
        """Split into ``sections`` equal parts along ``axis``."""
        if self.shape[axis] % sections != 0:
            raise ValueError(f"axis {axis} of size {self.shape[axis]} does not "
                             f"divide into {sections} sections")
        size = self.shape[axis] // sections
        parts = []
        for i in range(sections):
            index = [slice(None)] * self.ndim
            index[axis] = slice(i * size, (i + 1) * size)
            parts.append(self[tuple(index)])
        return parts

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        """Tile the tensor ``repeats`` times along an existing axis
        (gradient sums over the copies)."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        return apply_op(_REPEAT, (self,), {"repeats": repeats, "axis": axis})

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def sigmoid(self) -> "Tensor":
        return apply_op(_SIGMOID, (self,))

    def tanh(self) -> "Tensor":
        return apply_op(_TANH, (self,))

    def relu(self) -> "Tensor":
        return apply_op(_RELU, (self,))


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------

def _ensure_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _normalize_axes(axis, ndim: int):
    if isinstance(axis, int):
        return axis % ndim
    return tuple(a % ndim for a in axis)


def _axis_size(shape: Tuple[int, ...], axis) -> int:
    if isinstance(axis, int):
        return shape[axis % len(shape)]
    size = 1
    for a in axis:
        size *= shape[a % len(shape)]
    return size


def _stable_sigmoid(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    if out is None:
        out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def tensor(data, requires_grad: bool = False, name: Optional[str] = None) -> Tensor:
    """Create a :class:`Tensor` (convenience mirror of the constructor)."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def full(shape, fill_value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=get_default_dtype()),
                  requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=get_default_dtype()),
                  requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def rand(*shape, rng: Optional[np.random.Generator] = None,
         requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(rng.random(shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``numpy.concatenate``."""
    return apply_op(_CONCAT, tuple(_ensure_tensor(t) for t in tensors),
                    {"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``numpy.stack``."""
    return apply_op(_STACK, tuple(_ensure_tensor(t) for t in tensors),
                    {"axis": axis})


def where(condition, a, b) -> Tensor:
    """Differentiable ``numpy.where``; the condition is never differentiated.

    The condition participates in the op graph as a (gradient-less) input,
    so a captured step re-evaluates it on every replay — pass a tensor
    expression (e.g. ``diff <= delta``) rather than a raw boolean array when
    the condition depends on batch data.
    """
    return apply_op(_WHERE, (_ensure_tensor(condition), _ensure_tensor(a),
                             _ensure_tensor(b)))


def maximum(a, b) -> Tensor:
    """Differentiable elementwise maximum (ties send gradient to ``a``)."""
    return apply_op(_MAXIMUM, (_ensure_tensor(a), _ensure_tensor(b)))


def minimum(a, b) -> Tensor:
    """Differentiable elementwise minimum (ties send gradient to ``a``)."""
    return apply_op(_MINIMUM, (_ensure_tensor(a), _ensure_tensor(b)))
