"""Differentiable 1-D convolution and pooling primitives.

The paper's networks are Temporal Convolutional Networks, whose defining op
is the *causal dilated 1-D convolution* (paper Eq. 1):

    y[m, t] = sum_i sum_l x[l, t - d*i] * W[l, m, i]

Causality is obtained by padding only the left side of the time axis so that
an output sample never reads inputs from the future.  The numerical kernels
(forward and both adjoints) are pluggable — see
:mod:`repro.autograd.backends` — with a per-tap einsum reference backend and
an im2col/``as_strided`` single-GEMM fast path, selectable per call, via
``repro.set_backend()``, or through the ``REPRO_CONV_BACKEND`` environment
variable.  This module owns everything backend-independent: validation,
causal padding, bias, and the autograd tape.

Shapes follow the PyTorch convention:

* input  ``x``: ``(N, C_in, T)``
* weight ``w``: ``(C_out, C_in, K)``
* bias   ``b``: ``(C_out,)`` or None
* output:      ``(N, C_out, T_out)``
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backends import get_backend
from .tensor import Tensor

__all__ = ["conv1d_causal", "avg_pool1d", "max_pool1d", "global_avg_pool1d"]


def conv1d_causal(x: Tensor, w: Tensor, b: Optional[Tensor] = None,
                  dilation: int = 1, stride: int = 1,
                  backend: Optional[str] = None) -> Tensor:
    """Causal dilated 1-D convolution.

    The input is left-padded with ``(K - 1) * dilation`` zeros, so the output
    has the same temporal length as the input (before striding) and
    ``y[:, :, t]`` only depends on ``x[:, :, :t+1]`` — the causality property
    of TCNs (paper Sec. II-A).

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, T)``.
    w:
        Kernel of shape ``(C_out, C_in, K)``.  Kernel index ``K-1``
        corresponds to lag 0 (the current sample), index ``K-1-j`` to lag
        ``j * dilation``.
    b:
        Optional bias of shape ``(C_out,)``.
    dilation:
        Step between the input samples read by consecutive taps (``d`` in
        paper Eq. 1).
    stride:
        Temporal output stride.
    backend:
        Conv-backend name (see :mod:`repro.autograd.backends`); None uses
        the process-wide default.  The backend resolved here is captured by
        the tape, so forward and backward always run the same kernels even
        if the default is switched mid-graph.
    """
    if x.ndim != 3:
        raise ValueError(f"expected input (N, C_in, T), got shape {x.shape}")
    if w.ndim != 3:
        raise ValueError(f"expected weight (C_out, C_in, K), got shape {w.shape}")
    if x.shape[1] != w.shape[1]:
        raise ValueError(
            f"input channels {x.shape[1]} do not match weight channels {w.shape[1]}")
    if dilation < 1 or stride < 1:
        raise ValueError("dilation and stride must be >= 1")

    kernels = get_backend(backend)
    _, _, t = x.shape
    k = w.shape[2]
    pad = (k - 1) * dilation
    xp = np.pad(x.data, ((0, 0), (0, 0), (pad, 0)))

    out_data = kernels.forward(xp, w.data, dilation, stride, t)
    if b is not None:
        out_data += b.data[None, :, None]  # backends return owned buffers

    parents = (x, w) if b is None else (x, w, b)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            gxp = kernels.grad_input(grad, w.data, xp.shape, dilation, stride, t)
            x._accumulate(gxp[:, :, pad:])
        if w.requires_grad:
            w._accumulate(
                kernels.grad_weight(grad, xp, w.shape, dilation, stride, t))
        if b is not None and b.requires_grad:
            b._accumulate(grad.sum(axis=(0, 2)))

    return Tensor._make(out_data, parents, backward)


def avg_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over the last axis of a ``(N, C, T)`` tensor.

    Incomplete trailing windows are dropped, matching PyTorch's default.
    """
    if x.ndim != 3:
        raise ValueError(f"expected (N, C, T), got {x.shape}")
    stride = stride or kernel_size
    n, c, t = x.shape
    t_out = (t - kernel_size) // stride + 1
    if t_out <= 0:
        raise ValueError(f"pooling window {kernel_size} larger than input length {t}")

    out_data = np.zeros((n, c, t_out))
    for offset in range(kernel_size):
        out_data += x.data[:, :, offset: offset + stride * t_out: stride]
    out_data /= kernel_size

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        scaled = grad / kernel_size
        for offset in range(kernel_size):
            gx[:, :, offset: offset + stride * t_out: stride] += scaled
        x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def max_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last axis of a ``(N, C, T)`` tensor."""
    if x.ndim != 3:
        raise ValueError(f"expected (N, C, T), got {x.shape}")
    stride = stride or kernel_size
    n, c, t = x.shape
    t_out = (t - kernel_size) // stride + 1
    if t_out <= 0:
        raise ValueError(f"pooling window {kernel_size} larger than input length {t}")

    windows = np.stack(
        [x.data[:, :, offset: offset + stride * t_out: stride] for offset in range(kernel_size)],
        axis=-1)  # (N, C, T_out, K)
    argmax = windows.argmax(axis=-1)
    out_data = np.take_along_axis(windows, argmax[..., None], axis=-1).squeeze(-1)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        # Scatter each output gradient back to the argmax input position.
        n_idx, c_idx, t_idx = np.meshgrid(
            np.arange(n), np.arange(c), np.arange(t_out), indexing="ij")
        src_t = t_idx * stride + argmax
        np.add.at(gx, (n_idx, c_idx, src_t), grad)
        x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool1d(x: Tensor) -> Tensor:
    """Mean over the time axis: ``(N, C, T) -> (N, C)``."""
    return x.mean(axis=2)
