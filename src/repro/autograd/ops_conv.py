"""Differentiable 1-D convolution and pooling primitives.

The paper's networks are Temporal Convolutional Networks, whose defining op
is the *causal dilated 1-D convolution* (paper Eq. 1):

    y[m, t] = sum_i sum_l x[l, t - d*i] * W[l, m, i]

Causality is obtained by padding only the left side of the time axis so that
an output sample never reads inputs from the future.  The numerical kernels
(forward and both adjoints) are pluggable — see
:mod:`repro.autograd.backends` — with a per-tap einsum reference backend and
an im2col/``as_strided`` single-GEMM fast path, selectable per call, via
``repro.set_backend()``, or through the ``REPRO_CONV_BACKEND`` environment
variable.  This module owns everything backend-independent: validation,
causal padding, bias, and the autograd dispatch.

The backend is resolved *at dispatch time* and stored as a static attribute
of the recorded op, so a graph-captured training step keeps replaying the
kernels it was traced with even if the process-wide default is switched
mid-run — and, symmetrically, an eager graph always runs forward and
backward through the same kernels.

Shapes follow the PyTorch convention:

* input  ``x``: ``(N, C_in, T)``
* weight ``w``: ``(C_out, C_in, K)``
* bias   ``b``: ``(C_out,)`` or None
* output:      ``(N, C_out, T_out)``
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backends import get_backend
from .tensor import OpDef, Tensor, apply_op

__all__ = ["conv1d_causal", "conv1d_causal_stacked", "avg_pool1d",
           "max_pool1d", "global_avg_pool1d"]


def _conv_fwd(ins, attrs):
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[2]
    pad = (w.shape[2] - 1) * dilation
    xp = np.pad(x, ((0, 0), (0, 0), (pad, 0)))
    out = kernels.forward(xp, w, dilation, stride, t)
    if len(ins) == 3:
        out += ins[2][None, :, None]  # backends return owned buffers
    # The padded input is the forward byproduct both adjoints need.
    return out, xp


def _conv_bwd(g, ins, out, xp, attrs, needs):
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[2]
    pad = (w.shape[2] - 1) * dilation
    gx = gw = gb = None
    if needs[0]:
        gxp = kernels.grad_input(g, w, xp.shape, dilation, stride, t)
        gx = gxp[:, :, pad:]
    if needs[1]:
        gw = kernels.grad_weight(g, xp, w.shape, dilation, stride, t)
    if len(ins) == 3 and needs[2]:
        gb = g.sum(axis=(0, 2))
    return (gx, gw) if len(ins) == 2 else (gx, gw, gb)


def _kernel_scratch(kernels, scratch):
    """The scratch dict to hand this backend, or None if it predates the
    ``scratch=`` parameter.

    External backends registered against the original three-argument-kernel
    interface must keep working under compiled replay — they simply fall
    back to allocating fresh buffers like eager dispatch does.  The
    signature check runs once per node and is cached in the scratch dict.
    """
    accepts = scratch.get("_kernels_accept_scratch")
    if accepts is None:
        import inspect
        try:
            params = inspect.signature(kernels.forward).parameters
            accepts = "scratch" in params
        except (TypeError, ValueError):
            accepts = False
        scratch["_kernels_accept_scratch"] = accepts
    return scratch if accepts else None


def _conv_fwd_scratch(ins, attrs, scratch):
    """Replay variant: reuse preallocated input/output buffers.

    ``np.pad`` zero-fills and copies into a fresh allocation every call;
    here the zero left margin is written once and only the payload region
    is refreshed — identical values, no allocation.  The scratch dict is
    also handed to the backend so its GEMM outputs persist across replays.
    """
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[2]
    pad = (w.shape[2] - 1) * dilation
    xp = scratch.get("xp")
    if xp is None or xp.shape != (x.shape[0], x.shape[1], t + pad) or xp.dtype != x.dtype:
        xp = np.zeros((x.shape[0], x.shape[1], t + pad), dtype=x.dtype)
        scratch["xp"] = xp
    xp[:, :, pad:] = x
    kscratch = _kernel_scratch(kernels, scratch)
    if kscratch is None:
        out = kernels.forward(xp, w, dilation, stride, t)
    else:
        out = kernels.forward(xp, w, dilation, stride, t, scratch=kscratch)
    if len(ins) == 3:
        out += ins[2][None, :, None]
    return out, xp


def _conv_bwd_scratch(g, ins, out, xp, attrs, needs, scratch):
    """Replay variant of the adjoints: backend work buffers persist.

    Same kernels as :func:`_conv_bwd`, with the backend's accumulator /
    GEMM-output arrays (and memoized einsum paths) kept in ``scratch``
    across replays — identical bits, no steady-state allocations.
    Backends without the ``scratch=`` parameter run their plain kernels.
    """
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[2]
    pad = (w.shape[2] - 1) * dilation
    kscratch = _kernel_scratch(kernels, scratch)
    gx = gw = gb = None
    if needs[0]:
        if kscratch is None:
            gxp = kernels.grad_input(g, w, xp.shape, dilation, stride, t)
        else:
            gxp = kernels.grad_input(g, w, xp.shape, dilation, stride, t,
                                     scratch=kscratch)
        gx = gxp[:, :, pad:]
    if needs[1]:
        if kscratch is None:
            gw = kernels.grad_weight(g, xp, w.shape, dilation, stride, t)
        else:
            gw = kernels.grad_weight(g, xp, w.shape, dilation, stride, t,
                                     scratch=kscratch)
    if len(ins) == 3 and needs[2]:
        gb = g.sum(axis=(0, 2))
    return (gx, gw) if len(ins) == 2 else (gx, gw, gb)


_CONV1D = OpDef("conv1d_causal", _conv_fwd, _conv_bwd,
                fwd_scratch=_conv_fwd_scratch,
                bwd_scratch=_conv_bwd_scratch, bwd_uses=("ins",))


def conv1d_causal(x: Tensor, w: Tensor, b: Optional[Tensor] = None,
                  dilation: int = 1, stride: int = 1,
                  backend: Optional[str] = None) -> Tensor:
    """Causal dilated 1-D convolution.

    The input is left-padded with ``(K - 1) * dilation`` zeros, so the output
    has the same temporal length as the input (before striding) and
    ``y[:, :, t]`` only depends on ``x[:, :, :t+1]`` — the causality property
    of TCNs (paper Sec. II-A).

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, T)``.
    w:
        Kernel of shape ``(C_out, C_in, K)``.  Kernel index ``K-1``
        corresponds to lag 0 (the current sample), index ``K-1-j`` to lag
        ``j * dilation``.
    b:
        Optional bias of shape ``(C_out,)``.
    dilation:
        Step between the input samples read by consecutive taps (``d`` in
        paper Eq. 1).
    stride:
        Temporal output stride.
    backend:
        Conv-backend name (see :mod:`repro.autograd.backends`); None uses
        the process-wide default.  The backend resolved here is recorded as
        a static op attribute, so forward, backward and any graph-captured
        replay always run the same kernels even if the default is switched
        mid-graph.
    """
    if x.ndim != 3:
        raise ValueError(f"expected input (N, C_in, T), got shape {x.shape}")
    if w.ndim != 3:
        raise ValueError(f"expected weight (C_out, C_in, K), got shape {w.shape}")
    if x.shape[1] != w.shape[1]:
        raise ValueError(
            f"input channels {x.shape[1]} do not match weight channels {w.shape[1]}")
    if dilation < 1 or stride < 1:
        raise ValueError("dilation and stride must be >= 1")

    attrs = {"dilation": dilation, "stride": stride,
             "kernels": get_backend(backend)}
    inputs = (x, w) if b is None else (x, w, b)
    return apply_op(_CONV1D, inputs, attrs)


# ----------------------------------------------------------------------
# Stacked-model convolution (vmap-style leading model axis)
# ----------------------------------------------------------------------

def _conv_stacked_fwd(ins, attrs):
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[3]
    pad = (w.shape[3] - 1) * dilation
    xp = np.pad(x, ((0, 0), (0, 0), (0, 0), (pad, 0)))
    out = kernels.forward_stacked(xp, w, dilation, stride, t)
    if len(ins) == 3:
        out += ins[2][:, None, :, None]  # per-model bias (M, C_out)
    return out, xp


def _conv_stacked_bwd(g, ins, out, xp, attrs, needs):
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[3]
    pad = (w.shape[3] - 1) * dilation
    gx = gw = gb = None
    if needs[0]:
        gxp = kernels.grad_input_stacked(g, w, xp.shape, dilation, stride, t)
        gx = gxp[:, :, :, pad:]
    if needs[1]:
        gw = kernels.grad_weight_stacked(g, xp, w.shape, dilation, stride, t)
    if len(ins) == 3 and needs[2]:
        gb = g.sum(axis=(1, 3))
    return (gx, gw) if len(ins) == 2 else (gx, gw, gb)


def _conv_stacked_fwd_scratch(ins, attrs, scratch):
    """Replay variant: the padded-input buffer and the backend's stacked
    work buffers persist across replays (see :func:`_conv_fwd_scratch`)."""
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[3]
    pad = (w.shape[3] - 1) * dilation
    shape = x.shape[:3] + (t + pad,)
    xp = scratch.get("xp")
    if xp is None or xp.shape != shape or xp.dtype != x.dtype:
        xp = scratch["xp"] = np.zeros(shape, dtype=x.dtype)
    xp[:, :, :, pad:] = x
    out = kernels.forward_stacked(xp, w, dilation, stride, t, scratch=scratch)
    if len(ins) == 3:
        out += ins[2][:, None, :, None]
    return out, xp


def _conv_stacked_bwd_scratch(g, ins, out, xp, attrs, needs, scratch):
    x, w = ins[0], ins[1]
    dilation, stride = attrs["dilation"], attrs["stride"]
    kernels = attrs["kernels"]
    t = x.shape[3]
    pad = (w.shape[3] - 1) * dilation
    gx = gw = gb = None
    if needs[0]:
        gxp = kernels.grad_input_stacked(g, w, xp.shape, dilation, stride, t,
                                         scratch=scratch)
        gx = gxp[:, :, :, pad:]
    if needs[1]:
        gw = kernels.grad_weight_stacked(g, xp, w.shape, dilation, stride, t,
                                         scratch=scratch)
    if len(ins) == 3 and needs[2]:
        gb = g.sum(axis=(1, 3))
    return (gx, gw) if len(ins) == 2 else (gx, gw, gb)


_CONV1D_STACKED = OpDef("conv1d_causal_stacked", _conv_stacked_fwd,
                        _conv_stacked_bwd,
                        fwd_scratch=_conv_stacked_fwd_scratch,
                        bwd_scratch=_conv_stacked_bwd_scratch,
                        bwd_uses=("ins",))


def conv1d_causal_stacked(x: Tensor, w: Tensor, b: Optional[Tensor] = None,
                          dilation: int = 1, stride: int = 1,
                          backend: Optional[str] = None) -> Tensor:
    """Causal dilated conv over a *stack* of M weight-sharing-free models.

    The stacked executor (see :mod:`repro.nn.stacked`) trains M clones of
    one network in lockstep, each with its own weights; this op is
    :func:`conv1d_causal` with a leading model axis everywhere:

    * input  ``x``: ``(M, N, C_in, T)`` — per-model batches;
    * weight ``w``: ``(M, C_out, C_in, K)`` — per-model kernels;
    * bias   ``b``: ``(M, C_out)`` or None;
    * output:      ``(M, N, C_out, T_out)``.

    Model slices never mix: output slice ``m`` depends only on ``x[m]`` /
    ``w[m]`` / ``b[m]``, exactly as if M independent convs had run — but the
    whole stack is a single dispatch into batched backend kernels
    (``forward_stacked`` etc.), turning M small GEMMs into one large one.
    """
    if x.ndim != 4:
        raise ValueError(f"expected input (M, N, C_in, T), got shape {x.shape}")
    if w.ndim != 4:
        raise ValueError(
            f"expected weight (M, C_out, C_in, K), got shape {w.shape}")
    if x.shape[0] != w.shape[0]:
        raise ValueError(f"input stack {x.shape[0]} does not match "
                         f"weight stack {w.shape[0]}")
    if x.shape[2] != w.shape[2]:
        raise ValueError(
            f"input channels {x.shape[2]} do not match weight channels "
            f"{w.shape[2]}")
    if dilation < 1 or stride < 1:
        raise ValueError("dilation and stride must be >= 1")

    attrs = {"dilation": dilation, "stride": stride,
             "kernels": get_backend(backend)}
    inputs = (x, w) if b is None else (x, w, b)
    return apply_op(_CONV1D_STACKED, inputs, attrs)


def _avg_pool_fwd(ins, attrs):
    x = ins[0]
    kernel_size, stride = attrs["kernel_size"], attrs["stride"]
    n, c, t = x.shape
    t_out = (t - kernel_size) // stride + 1
    out = np.zeros((n, c, t_out))
    for offset in range(kernel_size):
        out += x[:, :, offset: offset + stride * t_out: stride]
    out /= kernel_size
    return out, None


def _avg_pool_bwd(g, ins, out, ctx, attrs, needs):
    x = ins[0]
    kernel_size, stride = attrs["kernel_size"], attrs["stride"]
    t_out = (x.shape[2] - kernel_size) // stride + 1
    gx = np.zeros_like(x)
    scaled = g / kernel_size
    for offset in range(kernel_size):
        gx[:, :, offset: offset + stride * t_out: stride] += scaled
    return (gx,)


def _avg_pool_bwd_scratch(g, ins, out, ctx, attrs, needs, scratch):
    x = ins[0]
    kernel_size, stride = attrs["kernel_size"], attrs["stride"]
    t_out = (x.shape[2] - kernel_size) // stride + 1
    gx = scratch.get("gx")
    if gx is None or gx.shape != x.shape or gx.dtype != x.dtype:
        gx = scratch["gx"] = np.zeros_like(x)
    else:
        gx.fill(0)
    scaled = g / kernel_size
    for offset in range(kernel_size):
        gx[:, :, offset: offset + stride * t_out: stride] += scaled
    return (gx,)


_AVG_POOL = OpDef("avg_pool1d", _avg_pool_fwd, _avg_pool_bwd,
                  bwd_scratch=_avg_pool_bwd_scratch, bwd_uses=())


def avg_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over the last axis of a ``(N, C, T)`` tensor.

    Incomplete trailing windows are dropped, matching PyTorch's default.
    """
    if x.ndim != 3:
        raise ValueError(f"expected (N, C, T), got {x.shape}")
    stride = stride or kernel_size
    t_out = (x.shape[2] - kernel_size) // stride + 1
    if t_out <= 0:
        raise ValueError(f"pooling window {kernel_size} larger than input length {x.shape[2]}")
    return apply_op(_AVG_POOL, (x,),
                    {"kernel_size": kernel_size, "stride": stride})


def _max_pool_fwd(ins, attrs):
    x = ins[0]
    kernel_size, stride = attrs["kernel_size"], attrs["stride"]
    t_out = (x.shape[2] - kernel_size) // stride + 1
    windows = np.stack(
        [x[:, :, offset: offset + stride * t_out: stride] for offset in range(kernel_size)],
        axis=-1)  # (N, C, T_out, K)
    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1).squeeze(-1)
    return out, argmax


def _max_pool_bwd(g, ins, out, argmax, attrs, needs):
    x = ins[0]
    stride = attrs["stride"]
    n, c, _ = x.shape
    t_out = argmax.shape[2]
    gx = np.zeros_like(x)
    # Scatter each output gradient back to the argmax input position.
    n_idx, c_idx, t_idx = np.meshgrid(
        np.arange(n), np.arange(c), np.arange(t_out), indexing="ij")
    src_t = t_idx * stride + argmax
    np.add.at(gx, (n_idx, c_idx, src_t), g)
    return (gx,)


# bwd scatters through the ctx argmax; it only reads input shapes.
_MAX_POOL = OpDef("max_pool1d", _max_pool_fwd, _max_pool_bwd, bwd_uses=())


def max_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last axis of a ``(N, C, T)`` tensor."""
    if x.ndim != 3:
        raise ValueError(f"expected (N, C, T), got {x.shape}")
    stride = stride or kernel_size
    t_out = (x.shape[2] - kernel_size) // stride + 1
    if t_out <= 0:
        raise ValueError(f"pooling window {kernel_size} larger than input length {x.shape[2]}")
    return apply_op(_MAX_POOL, (x,),
                    {"kernel_size": kernel_size, "stride": stride})


def global_avg_pool1d(x: Tensor) -> Tensor:
    """Mean over the time axis: ``(N, C, T) -> (N, C)``."""
    return x.mean(axis=2)
