"""Neural-network specific differentiable operations.

Contains the numerically-stable softmax family, the straight-through
Heaviside binarization used by PIT's γ parameters (paper Eq. 2), and a
dropout primitive.

All ops are expressed as :class:`repro.autograd.tensor.OpDef` kernel pairs
dispatched through :func:`repro.autograd.tensor.apply_op`, so they are
captured by the graph executor like every other primitive.  Dropout is the
one stateful op: its generator is a static attribute, and every replay of a
captured step draws fresh masks from it in recorded program order — exactly
the stream an eager run would consume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import OpDef, Tensor, apply_op

__all__ = [
    "softmax",
    "log_softmax",
    "binarize_ste",
    "dropout",
    "dropout_stacked",
    "logsumexp",
]


def _softmax_fwd(ins, attrs):
    x = ins[0]
    shifted = x - x.max(axis=attrs["axis"], keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=attrs["axis"], keepdims=True), None


def _softmax_out(ins, attrs, out):
    x = ins[0]
    shifted = x - x.max(axis=attrs["axis"], keepdims=True)
    exp = np.exp(shifted)
    np.divide(exp, exp.sum(axis=attrs["axis"], keepdims=True), out=out)
    return None


def _softmax_bwd(g, ins, out, ctx, attrs, needs):
    # J^T g = s * (g - sum(g * s))
    dot = (g * out).sum(axis=attrs["axis"], keepdims=True)
    return (out * (g - dot),)


_SOFTMAX = OpDef("softmax", _softmax_fwd, _softmax_bwd, _softmax_out,
                 bwd_uses=("out",), inplace={0: ()})


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return apply_op(_SOFTMAX, (x,), {"axis": axis})


def _log_softmax_fwd(ins, attrs):
    x = ins[0]
    shifted = x - x.max(axis=attrs["axis"], keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=attrs["axis"], keepdims=True))
    return shifted - lse, None


def _log_softmax_out(ins, attrs, out):
    x = ins[0]
    shifted = x - x.max(axis=attrs["axis"], keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=attrs["axis"], keepdims=True))
    np.subtract(shifted, lse, out=out)
    return None


def _log_softmax_bwd(g, ins, out, ctx, attrs, needs):
    soft = np.exp(out)
    return (g - soft * g.sum(axis=attrs["axis"], keepdims=True),)


_LOG_SOFTMAX = OpDef("log_softmax", _log_softmax_fwd, _log_softmax_bwd,
                     _log_softmax_out, bwd_uses=("out",), inplace={0: ()})


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return apply_op(_LOG_SOFTMAX, (x,), {"axis": axis})


def _logsumexp_fwd(ins, attrs):
    x = ins[0]
    axis = attrs["axis"]
    m = x.max(axis=axis, keepdims=True)
    out = np.log(np.exp(x - m).sum(axis=axis, keepdims=True)) + m
    if not attrs["keepdims"]:
        out = out.squeeze(axis=axis)
    return out, None


def _logsumexp_bwd(g, ins, out, ctx, attrs, needs):
    axis = attrs["axis"]
    if not attrs["keepdims"]:
        g = np.expand_dims(g, axis=axis)
        out = np.expand_dims(out, axis=axis)
    soft = np.exp(ins[0] - out)
    return (g * soft,)


_LOGSUMEXP = OpDef("logsumexp", _logsumexp_fwd, _logsumexp_bwd,
                   bwd_uses=("ins", "out"))


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction."""
    return apply_op(_LOGSUMEXP, (x,), {"axis": axis, "keepdims": keepdims})


def _binarize_fwd(ins, attrs):
    x = ins[0]
    return (x >= attrs["threshold"]).astype(x.dtype), None


def _binarize_bwd(g, ins, out, ctx, attrs, needs):
    return (g,)


_BINARIZE = OpDef("binarize_ste", _binarize_fwd, _binarize_bwd, bwd_uses=())


def binarize_ste(x: Tensor, threshold: float = 0.5) -> Tensor:
    """Heaviside step with a straight-through estimator (paper Eq. 2).

    Forward::

        H(x - threshold) = 1 if x >= threshold else 0

    Backward: the step's true derivative is zero almost everywhere, so —
    following BinaryConnect [19] — the gradient passes through unchanged
    (identity), letting the float "shadow" parameters γ̂ keep learning.
    """
    return apply_op(_BINARIZE, (x,), {"threshold": threshold})


def _dropout_fwd(ins, attrs):
    x = ins[0]
    p = attrs["p"]
    keep = (attrs["rng"].random(x.shape) >= p) / (1.0 - p)
    return x * keep, keep


def _dropout_bwd(g, ins, out, keep, attrs, needs):
    return (g * keep,)


# bwd reads the keep-mask from ctx, not the forward values.  The "rng"
# attribute marks the op stateful: the graph optimizer must never
# constant-fold it (every replay draws fresh masks in program order).
_DROPOUT = OpDef("dropout", _dropout_fwd, _dropout_bwd, bwd_uses=())


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - p)``.

    At evaluation time (``training=False``) this is the identity, so no
    rescaling is needed at inference — the convention used by PyTorch and
    assumed by the deployment flow in :mod:`repro.hw`.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng or np.random.default_rng()
    return apply_op(_DROPOUT, (x,), {"p": p, "rng": rng})


def _dropout_stacked_fwd(ins, attrs):
    x = ins[0]                       # (M, N, ...): leading model axis
    p = attrs["p"]
    rngs = attrs["rng"]              # one generator per model slice
    active = attrs["active"]         # live per-model flags (may be None)
    scale = 1.0 / (1.0 - p)
    keep = np.empty_like(x)
    for m, rng in enumerate(rngs):
        if active is None or active[m]:
            # Identical draw shape and stream position as the sequential
            # model would consume: per-model parity depends on it.
            keep[m] = (rng.random(x.shape[1:]) >= p) * scale
        else:
            # A converged model rides along masked: no draw (its stream
            # must not advance past its early-stop point), no scaling.
            keep[m] = 1.0
    return x * keep, keep


def _dropout_stacked_bwd(g, ins, out, keep, attrs, needs):
    return (g * keep,)


# Like _DROPOUT, the "rng" attribute (here a tuple of per-model generators)
# marks the op stateful so the graph optimizer never constant-folds it; the
# "active" array is read live on every (re)play.
_DROPOUT_STACKED = OpDef("dropout_stacked", _dropout_stacked_fwd,
                         _dropout_stacked_bwd, bwd_uses=())


def dropout_stacked(x: Tensor, p: float, training: bool,
                    rngs, active=None) -> Tensor:
    """Inverted dropout over a stacked ``(M, N, ...)`` activation.

    Each model slice draws its keep-mask from its *own* generator
    ``rngs[m]`` with the per-model shape ``x.shape[1:]`` — the exact stream
    an unstacked model would consume, which is what keeps stacked training
    trajectories aligned with sequential ones.  ``active`` is an optional
    live array of per-model flags: inactive slices (early-stopped models
    riding along in the stack) skip their draw entirely so their stream
    position stays frozen at the stop point.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rngs = tuple(rngs)
    if len(rngs) != x.shape[0]:
        raise ValueError(f"got {len(rngs)} generators for a stack of "
                         f"{x.shape[0]} models")
    return apply_op(_DROPOUT_STACKED, (x,),
                    {"p": p, "rng": rngs, "active": active})
