"""Neural-network specific differentiable operations.

Contains the numerically-stable softmax family, the straight-through
Heaviside binarization used by PIT's γ parameters (paper Eq. 2), and a
dropout primitive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "binarize_ste",
    "dropout",
    "logsumexp",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # J^T g = s * (g - sum(g * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction."""
    m = x.data.max(axis=axis, keepdims=True)
    out_data = np.log(np.exp(x.data - m).sum(axis=axis, keepdims=True)) + m
    soft = np.exp(x.data - out_data)
    if not keepdims:
        out_squeezed = out_data.squeeze(axis=axis)
    else:
        out_squeezed = out_data

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = grad if keepdims else np.expand_dims(grad, axis=axis)
        x._accumulate(g * soft)

    return Tensor._make(out_squeezed, (x,), backward)


def binarize_ste(x: Tensor, threshold: float = 0.5) -> Tensor:
    """Heaviside step with a straight-through estimator (paper Eq. 2).

    Forward::

        H(x - threshold) = 1 if x >= threshold else 0

    Backward: the step's true derivative is zero almost everywhere, so —
    following BinaryConnect [19] — the gradient passes through unchanged
    (identity), letting the float "shadow" parameters γ̂ keep learning.
    """
    out_data = (x.data >= threshold).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - p)``.

    At evaluation time (``training=False``) this is the identity, so no
    rescaling is needed at inference — the convention used by PyTorch and
    assumed by the deployment flow in :mod:`repro.hw`.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = (rng.random(x.shape) >= p) / (1.0 - p)
    out_data = x.data * keep

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * keep)

    return Tensor._make(out_data, (x,), backward)
