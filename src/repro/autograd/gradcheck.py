"""Numerical gradient checking utilities.

Every differentiable op in :mod:`repro.autograd` is validated against
central finite differences.  These helpers are used pervasively by the test
suite and are part of the public API so downstream users extending the op
set can validate their own kernels.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, default_dtype_scope

__all__ = ["numerical_gradient", "check_gradients", "GradCheckError"]


class GradCheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


def numerical_gradient(func: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    func:
        Callable mapping the input tensors to an output tensor.
    inputs:
        All inputs of ``func``; only ``inputs[index]`` is perturbed.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step.

    The computation runs with the default dtype pinned to float64 and the
    inputs' storage upcast in place: central differences with
    ``eps ~ 1e-6`` are meaningless in single precision, so gradient
    checking stays trustworthy under ``REPRO_DTYPE=float32``.
    """
    with default_dtype_scope("float64"):
        for t in inputs:
            if t.data.dtype != np.float64:
                t.data = t.data.astype(np.float64)
        target = inputs[index]
        grad = np.zeros_like(target.data, dtype=np.float64)
        flat = target.data.reshape(-1)
        grad_flat = grad.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = float(func(*inputs).data.sum())
            flat[i] = original - eps
            minus = float(func(*inputs).data.sum())
            flat[i] = original
            grad_flat[i] = (plus - minus) / (2.0 * eps)
        return grad


def check_gradients(func: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert analytic gradients of ``sum(func(*inputs))`` match numerics.

    Raises
    ------
    GradCheckError
        If any input's analytic gradient deviates from the central-difference
        estimate beyond ``atol + rtol * |numeric|``.

    Gradient checking is pinned to float64 regardless of the configured
    default dtype: the inputs' storage is upcast in place and the whole
    comparison runs under a float64 scope, so ``REPRO_DTYPE=float32`` runs
    keep exact-ish numerics where it matters.
    """
    with default_dtype_scope("float64"):
        for t in inputs:
            t.grad = None
            if t.data.dtype != np.float64:
                t.data = t.data.astype(np.float64)
        out = func(*inputs)
        out.sum().backward()
        for i, t in enumerate(inputs):
            if not t.requires_grad:
                continue
            numeric = numerical_gradient(func, inputs, i, eps=eps)
            analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
            if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
                worst = np.max(np.abs(analytic - numeric))
                raise GradCheckError(
                    f"gradient mismatch for input {i} (name={t.name}): "
                    f"max abs err {worst:.3e}\nanalytic:\n{analytic}\nnumeric:\n{numeric}")
