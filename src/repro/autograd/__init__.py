"""Reverse-mode autodiff engine (the deep-learning substrate).

The paper implements PIT on top of PyTorch; this package provides the
equivalent differentiable-tensor substrate on plain numpy.  See
``DESIGN.md`` §4 for the substitution rationale.
"""

from .tensor import (
    OpDef,
    Tensor,
    apply_op,
    record_side_effect,
    mark_capture_unsafe,
    no_grad,
    is_grad_enabled,
    set_default_dtype,
    get_default_dtype,
    default_dtype_scope,
    tensor,
    zeros,
    ones,
    full,
    arange,
    randn,
    rand,
    concatenate,
    stack,
    where,
    maximum,
    minimum,
)
from .backends import (
    ConvBackend,
    available_backends,
    register_backend,
    get_backend,
    set_backend,
    current_backend,
    use_backend,
)
from .ops_conv import conv1d_causal, avg_pool1d, max_pool1d, global_avg_pool1d
from .ops_nn import softmax, log_softmax, logsumexp, binarize_ste, dropout
from .graph import (
    CompiledStep,
    EagerStep,
    GraphCapture,
    GraphCaptureError,
    compile_step_default,
)
from .gradcheck import numerical_gradient, check_gradients, GradCheckError

__all__ = [
    "OpDef",
    "apply_op",
    "record_side_effect",
    "mark_capture_unsafe",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype_scope",
    "CompiledStep",
    "EagerStep",
    "GraphCapture",
    "GraphCaptureError",
    "compile_step_default",
    "ConvBackend",
    "available_backends",
    "register_backend",
    "get_backend",
    "set_backend",
    "current_backend",
    "use_backend",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "conv1d_causal",
    "avg_pool1d",
    "max_pool1d",
    "global_avg_pool1d",
    "softmax",
    "log_softmax",
    "logsumexp",
    "binarize_ste",
    "dropout",
    "numerical_gradient",
    "check_gradients",
    "GradCheckError",
]
