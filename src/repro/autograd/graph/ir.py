"""Static IR of one captured training step.

A captured program is a *flat schedule*, not a pointer graph: tensors become
integer **slots**, ops become :class:`OpNode` entries in execution order, and
the backward pass becomes a precomputed list of :class:`BackwardStep` entries
derived from the same topological sort the eager engine uses — so a replay
performs exactly the eager computation, minus all Python graph construction.

Slots fall into three classes:

* **leaves** — tensors the step did not create: parameters, inline constants
  (mask coefficient vectors, frozen masks, scalar literals).  They are bound
  *by tensor reference* and re-read on every replay, so in-place parameter
  updates by the optimizer are always visible.
* **inputs** — the step's batch arrays, rebound on every call.
* **op outputs** — one slot per recorded node, recomputed each replay.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class OpNode:
    """One recorded op dispatch: kind + static attrs + slot wiring.

    ``ctx`` holds the *latest replay's* forward byproduct (e.g. a conv's
    padded input) for consumption by the matching backward step; it is
    overwritten on every run, which is why a program runner is not
    thread-safe (each thread compiles its own step).
    """

    __slots__ = ("op", "in_slots", "out_slot", "attrs", "ctx")

    def __init__(self, op, in_slots: Tuple[int, ...], out_slot: int, attrs: Dict):
        self.op = op
        self.in_slots = in_slots
        self.out_slot = out_slot
        self.attrs = attrs
        self.ctx = None

    def __repr__(self) -> str:
        return f"OpNode({self.op.name}, in={self.in_slots}, out={self.out_slot})"


class EffectNode:
    """A recorded side effect (e.g. BatchNorm running-stat update)."""

    __slots__ = ("fn", "in_slots")

    def __init__(self, fn: Callable, in_slots: Tuple[int, ...]):
        self.fn = fn
        self.in_slots = in_slots

    def __repr__(self) -> str:
        return f"EffectNode({getattr(self.fn, '__qualname__', self.fn)!r})"


class BackwardStep:
    """One entry of the backward schedule.

    ``acc[i]`` describes where the gradient for parent ``i`` goes: None for
    parents that need no gradient, else ``(slot, first, sole)`` where
    ``first`` marks the overall first contribution into that slot (an
    overwrite; later contributions accumulate) — the same zero-then-add
    order the eager engine produces — and ``sole`` marks slots with exactly
    one contribution in the whole schedule, letting the runner *adopt* a
    fresh kernel-owned gradient array instead of copying it into the slot
    buffer.
    """

    __slots__ = ("node", "needs", "acc")

    def __init__(self, node: OpNode, needs: Tuple[bool, ...],
                 acc: Tuple[Optional[Tuple[int, bool, bool]], ...]):
        self.node = node
        self.needs = needs
        self.acc = acc


class GraphCaptureError(RuntimeError):
    """A traced step cannot be turned into a replayable program."""


class LoopNode:
    """A symbolic loop over a captured subgraph (the Dr.Jit recorded-loop idea).

    ``body`` is the :class:`GraphProgram` of one training batch; the loop
    replays it once per ``(x, y)`` pair of an epoch.  ``epilogue`` is an
    optional second program shape-specialized for a ragged final batch, so
    a short tail replays compiled instead of falling back to eager.

    State crosses iterations as **data**, never as Python objects:

    * ``carried`` maps a role name (``"params"``, ``"adam_m"``,
      ``"adam_v"``, ``"step_t"``, ``"bn_stats"``, ``"active"``,
      ``"early_stop"``) to the list of numpy arrays carried across
      iterations.  Body leaves alias these arrays directly — the program's
      leaf slots double as the loop-carried slots, re-read each iteration.
    * ``updates`` lists the post-batch optimizer writes
      (:class:`~repro.optim.kernels.UpdateKernelSpec`) plus an optional
      gradient-clip entry; they mutate carried arrays in place between
      body replays.
    * ``trip`` describes the data-driven trip condition: the loop runs
      over however many batch pairs the caller binds at run time (plus the
      epilogue pair, when present) — the count is an input, not a constant
      baked into the program.
    """

    __slots__ = ("body", "epilogue", "updates", "carried", "trip")

    def __init__(self, body: "GraphProgram", epilogue: Optional["GraphProgram"],
                 updates: List, carried: Dict[str, List[np.ndarray]],
                 trip: str = "epoch-batches"):
        self.body = body
        self.epilogue = epilogue
        self.updates = updates
        self.carried = carried
        self.trip = trip

    def __repr__(self) -> str:
        n_carried = sum(len(v) for v in self.carried.values())
        return (f"LoopNode(trip={self.trip!r}, updates={len(self.updates)}, "
                f"carried={n_carried}, epilogue={self.epilogue is not None})")


def epoch_program(loop: "LoopNode", dtype) -> "GraphProgram":
    """Wrap a :class:`LoopNode` as a single-node :class:`GraphProgram`.

    The resulting program's schedule is exactly ``[loop]``: one whole
    training epoch (or PIT phase) as one replayable program.  It has no
    slots of its own — all state lives in the loop's carried arrays and
    the bodies' leaves.
    """
    return GraphProgram(
        n_slots=0, schedule=[loop], backward_steps=[], leaves=[],
        input_slots=[], output_slots=[], root_slot=-1, grad_leaves=[],
        slot_meta={}, grad_slots=set(), dtype=dtype)


class GraphProgram:
    """The finalized IR of one (forward + backward) training step."""

    __slots__ = ("n_slots", "schedule", "backward_steps", "leaves",
                 "input_slots", "output_slots", "root_slot", "grad_leaves",
                 "slot_meta", "grad_slots", "dtype", "mem_plan")

    def __init__(self, n_slots: int, schedule: List, backward_steps: List[BackwardStep],
                 leaves: List[Tuple[int, object]], input_slots: List[int],
                 output_slots: List[int], root_slot: int,
                 grad_leaves: List[Tuple[int, object]],
                 slot_meta: Dict[int, Tuple[Tuple[int, ...], np.dtype]],
                 grad_slots, dtype):
        self.n_slots = n_slots
        self.schedule = schedule              # OpNode | EffectNode, program order
        self.backward_steps = backward_steps  # reverse-topo order
        self.leaves = leaves                  # (slot, Tensor) — re-read each replay
        self.input_slots = input_slots
        self.output_slots = output_slots
        self.root_slot = root_slot
        self.grad_leaves = grad_leaves        # (slot, Tensor) — .grad targets
        self.slot_meta = slot_meta            # slot -> (shape, dtype), every slot
        self.grad_slots = grad_slots          # slots receiving gradient buffers
        self.dtype = dtype                    # default dtype at capture time
        self.mem_plan = None                  # set by the optimizer passes

    def __repr__(self) -> str:
        ops = sum(1 for n in self.schedule if isinstance(n, OpNode))
        return (f"GraphProgram(ops={ops}, effects={len(self.schedule) - ops}, "
                f"backward_steps={len(self.backward_steps)}, "
                f"leaves={len(self.leaves)})")


def build_program(tracer, loss, outputs) -> GraphProgram:
    """Freeze a :class:`GraphCapture` into a :class:`GraphProgram`.

    ``loss`` is the differentiated output (the backward root); ``outputs``
    are all tensors the step returns.  Raises :class:`GraphCaptureError`
    when the trace is not self-contained (e.g. the step consumed a graph
    tensor built before the capture started).
    """
    from ..tensor import _topo_sort, get_default_dtype

    slot_of = tracer.slot_of
    tensors = tracer.tensors

    node_by_slot: Dict[int, OpNode] = {}
    for node in tracer.records:
        if isinstance(node, OpNode):
            node_by_slot[node.out_slot] = node

    leaves: List[Tuple[int, object]] = []
    for slot, t in enumerate(tensors):
        if slot in node_by_slot:
            continue
        if t._op is not None or t._backward is not None:
            raise GraphCaptureError(
                "the step consumed a graph tensor created outside the "
                "capture; compiled steps must build their graph from "
                "leaves and batch inputs only")
        leaves.append((slot, t))

    root_slot = slot_of.get(id(loss))
    if root_slot is None or root_slot not in node_by_slot:
        raise GraphCaptureError("the loss tensor was not produced by a recorded op")

    # Backward schedule: same topological order as eager backward, same
    # per-parent accumulation order — gradient sums are bit-identical.
    touched = {root_slot}
    contributions: Dict[int, int] = {}
    raw_steps = []
    for t in reversed(_topo_sort(loss)):
        if t._op is None:
            continue  # leaves carry no backward of their own
        slot = slot_of.get(id(t))
        if slot is None:
            raise GraphCaptureError("a graph node is missing from the capture")
        if slot not in touched:
            continue
        node = node_by_slot[slot]
        needs = tuple(p.requires_grad for p in t._parents)
        targets: List[Optional[Tuple[int, bool]]] = []
        for parent, need in zip(t._parents, needs):
            if not need:
                targets.append(None)
                continue
            pslot = slot_of.get(id(parent))
            if pslot is None:
                raise GraphCaptureError("a graph parent is missing from the capture")
            targets.append((pslot, pslot not in touched))
            touched.add(pslot)
            contributions[pslot] = contributions.get(pslot, 0) + 1
        raw_steps.append((node, needs, targets))
    steps = [
        BackwardStep(node, needs, tuple(
            None if target is None
            else (target[0], target[1], contributions[target[0]] == 1)
            for target in targets))
        for node, needs, targets in raw_steps]

    output_slots = []
    for out in outputs:
        slot = slot_of.get(id(out))
        if slot is None:
            raise GraphCaptureError("a step output was not recorded by the capture")
        output_slots.append(slot)

    grad_leaves = [(slot, t) for slot, t in leaves
                   if t.requires_grad and slot in touched]
    # Shapes/dtypes of every slot: the memory planner sizes forward buffers
    # from these; ``touched`` (separately) names the slots that need
    # gradient buffers.
    slot_meta = {slot: (t.data.shape, t.data.dtype)
                 for slot, t in enumerate(tensors)}

    return GraphProgram(
        n_slots=len(tensors),
        schedule=list(tracer.records),
        backward_steps=steps,
        leaves=leaves,
        input_slots=list(tracer.input_slots),
        output_slots=output_slots,
        root_slot=root_slot,
        grad_leaves=grad_leaves,
        slot_meta=slot_meta,
        grad_slots=set(touched),
        dtype=get_default_dtype(),
    )
