"""Source-lowering executor backend: one generated function per program.

The interpreter (:class:`~repro.autograd.graph.executor._ProgramRunner`)
replays an optimized :class:`~repro.autograd.graph.ir.GraphProgram` as a
Python loop over plan tuples — every node still pays loop machinery, tuple
unpacking, an integer kind dispatch and slot-table indexing on every batch.
This module removes that last interpreter layer the way Myia lowers its
tapeless adjoint: the whole forward + backward step is **emitted as
straight-line Python source** and compiled once.

In the generated function

* slots become local variables (``v17``), so there is no slot table;
* op kernels become closure-bound callables (``f3``) called directly — no
  dict dispatch, no per-node attribute lookups, no kind compare;
* fused chains, arena buffers, scratch dicts and gradient buffers are
  preallocated objects bound into the closure (``b3`` / ``s3`` / ``G12``),
  so the zero-steady-state-allocation guarantee of the memory planner is
  preserved bit for bit;
* the precomputed backward schedule is unrolled in source order, with the
  runner's adopt-or-copy gradient discipline emitted inline per route; and
* side-effect nodes (BatchNorm running-stat updates) are emitted in place,
  exactly where the schedule recorded them.

Because the source invokes the *same* kernels, in the *same* order, with the
same dtype coercions and the same gradient-accumulation routing as the
interpreter, results are bit-identical to interpreted replay — and therefore
to eager execution (``tests/test_graph_codegen.py`` locks all three legs).

**Artifact reuse.**  The emitted source depends only on program *structure*
(op kinds, slot wiring, accumulation routes) — every value-like thing
(shapes, dtypes, weights, attrs, buffers) is bound through the closure.  Two
structurally identical programs therefore emit identical source, and a
process-wide code cache keyed by that source text means a per-shape re-trace
(short final batch), a dtype flip, or the next same-architecture DSE point
inside a worker compiles **once** and reuses the code object
(:func:`codegen_cache_stats` counts the hits).

Lowering never risks correctness: any failure to emit, compile or bind
raises :class:`LoweringError` (or anything else), and
:class:`~repro.autograd.graph.executor.CompiledStep` falls back to the
interpreter for that program, recording the reason in
``CompiledStep.exec_fallbacks``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

import numpy as np

from .executor import (
    _K_EFFECT,
    _K_FWD,
    _K_INPLACE,
    _K_OUT,
    _K_SCRATCH,
    _ProgramRunner,
)
from .ir import GraphProgram
from .passes import FusedOp

__all__ = [
    "LoweringError",
    "SourceRunner",
    "SourceEpochRunner",
    "lower_program",
    "lower_epoch",
    "codegen_cache_stats",
    "clear_code_cache",
    "recorded_sources",
]


class LoweringError(RuntimeError):
    """An optimized program could not be lowered to generated source."""


# Process-wide compiled-code cache.  Keyed by the generated source text —
# which *is* the program's structural signature (shapes/dtypes/backends and
# all other values live in the closure, never in the text) — so per-shape
# re-traces and same-architecture DSE points within a worker compile once.
_CODE_CACHE: Dict[str, object] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0

# Recently generated sources, for post-hoc inspection from code that never
# held the CompiledStep (CLI --dump-graph-source after a training run).
_RECORDED_LIMIT = 64
_RECORDED: "OrderedDict[str, str]" = OrderedDict()
_RECORDED_COUNT = 0


def codegen_cache_stats() -> Dict[str, int]:
    """Process-wide code-cache accounting: entries / hits / misses.

    A hit means a program reused an already-compiled code object — the
    expected steady state for per-shape re-traces and for every DSE grid
    point after the first within a worker.
    """
    return {"entries": len(_CODE_CACHE), "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES}


def clear_code_cache() -> None:
    """Drop cached code objects and counters (test isolation)."""
    global _CACHE_HITS, _CACHE_MISSES, _RECORDED_COUNT
    _CODE_CACHE.clear()
    _RECORDED.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
    _RECORDED_COUNT = 0


def recorded_sources() -> Dict[str, str]:
    """Label → source of recently lowered programs in this process.

    Labels carry a monotonic index, the program summary and its input
    shapes.  Bounded to the most recent programs; meant for diagnostics
    (``cli train --dump-graph-source``), not as an API contract.
    """
    return dict(_RECORDED)


def _record_source(program: GraphProgram, source: str) -> None:
    global _RECORDED_COUNT
    shapes = tuple(program.slot_meta[s][0] for s in program.input_slots)
    label = f"{_RECORDED_COUNT:03d} {program!r} inputs={shapes}"
    _RECORDED_COUNT += 1
    _RECORDED[label] = source
    while len(_RECORDED) > _RECORDED_LIMIT:
        _RECORDED.popitem(last=False)


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------

def _emit_fused_forward(i: int, op: FusedOp, ext, out_slot: int, dtype,
                        bind, emit) -> None:
    """Unroll one fused chain's forward into the body.

    Mirrors :meth:`FusedOp.fwd_scratch` line for line — same sub-kernel
    order, same per-sub dtype coercion — but with the gather indices
    resolved into argument lists at lowering time and interior values held
    in locals (``u{i}_{j}``) that the unrolled backward reads directly.
    """
    last = len(op._fwd_plan) - 1
    for j, (skind, sfn, sattrs, gather, sextra) in enumerate(op._fwd_plan):
        args = ", ".join(f"v{ext[k]}" if k >= 0 else f"u{i}_{~k}"
                         for k in gather)
        bind(f"k{i}_{j}", sfn)
        bind(f"ka{i}_{j}", sattrs)
        if skind == FusedOp._F_OUT:
            bind(f"kb{i}_{j}", sextra)
            emit(f"c{i}_{j} = k{i}_{j}([{args}], ka{i}_{j}, kb{i}_{j})")
            emit(f"u{i}_{j} = kb{i}_{j}")
        elif skind in (FusedOp._F_FWD, FusedOp._F_SCRATCH):
            if skind == FusedOp._F_SCRATCH:
                bind(f"ks{i}_{j}", sextra)
                emit(f"o, c{i}_{j} = k{i}_{j}([{args}], ka{i}_{j}, "
                     f"ks{i}_{j})")
            else:
                emit(f"o, c{i}_{j} = k{i}_{j}([{args}], ka{i}_{j})")
            emit(f"if not _isinstance(o, _nd) or o.dtype != _dt:")
            emit(f"    o = _asarray(o, _dt)")
            emit(f"u{i}_{j} = o")
        else:
            raise LoweringError(f"unknown fused forward kind {skind}")
    emit(f"v{out_slot} = u{i}_{last}")
    # The runner's own post-call coercion is a no-op except when the chain
    # ends in a preallocated out-buffer of a non-program dtype.
    lkind, _lfn, _lattrs, _lgather, lextra = op._fwd_plan[last]
    if lkind == FusedOp._F_OUT and lextra.dtype != dtype:
        emit(f"v{out_slot} = _asarray(v{out_slot}, _dt)")


def _emit_fused_backward(i: int, op: FusedOp, ext, gsrc: str, acc,
                         slot_meta, route_grad, bind, emit) -> None:
    """Unroll one fused chain's backward into the body.

    Mirrors :meth:`FusedOp.bwd` with every plan constant folded into the
    text: interior grads become locals (``h{i}_{p}``), the adopt-or-copy
    buffers (lazy ``_igbufs`` / ``_xbufs`` dicts in the wrapper) become
    preallocated closure arrays (``IB`` / ``XB``), and each external
    gradient is routed into its slot immediately — sub-kernels never read
    slot gradient buffers, so routing in place of the wrapper's deferred
    flat list is value-identical.
    """
    last = len(op.sub) - 1
    live = ({t for entry in op.bwd_plan for r in entry[5] for t in (r[1],)}
            | {entry[0] for entry in op.bwd_plan if entry[0] != last})
    for p in sorted(live):
        emit(f"h{i}_{p} = None")
    fidx = 0
    for m, (pos, sfn, sattrs, gather, sneeds, int_routes, ext_routes,
            sscratch) in enumerate(op.bwd_plan):
        gname = gsrc if pos == last else f"h{i}_{pos}"
        args = ", ".join(f"v{ext[k]}" if k >= 0 else f"u{i}_{~k}"
                         for k in gather)
        bind(f"qk{i}_{m}", sfn)
        bind(f"qa{i}_{m}", sattrs)
        bind(f"qn{i}_{m}", sneeds)
        call = (f"qk{i}_{m}({gname}, [{args}], u{i}_{pos}, c{i}_{pos}, "
                f"qa{i}_{m}, qn{i}_{m}")
        if sscratch is not None:
            bind(f"qz{i}_{m}", sscratch)
            call += f", qz{i}_{m}"
        emit(f"r = {call})")
        # Interior gradients: the wrapper's adopt-or-copy with the
        # first/sole flags and copy buffers resolved at lowering time.
        for gidx, target, first, sole, rdtype, rshape in int_routes:
            emit(f"t = r[{gidx}]")
            hname = f"h{i}_{target}"
            if not first:
                emit(f"if t is not None:")
                emit(f"    {hname} += t")
                continue
            ib = bind(f"IB{i}_{target}", np.empty(rshape, rdtype))
            if sole:
                dn = bind(f"di{i}_{target}", rdtype)
                emit(f"if t is None:")
                emit(f"    pass")
                emit(f"elif t.base is None and t is not {gname} "
                     f"and t.dtype == {dn}:")
                emit(f"    {hname} = t")
                emit(f"else:")
                emit(f"    _add(t, 0.0, out={ib})")
                emit(f"    {hname} = {ib}")
            else:
                emit(f"if t is not None:")
                emit(f"    _add(t, 0.0, out={ib})")
                emit(f"    {hname} = {ib}")
        # External gradients: de-alias exactly like the wrapper (never hand
        # one array to two accumulation targets, nor the sub-step's own
        # gradient source), then route into the slot straight away.
        single = len(ext_routes) == 1
        if not single and ext_routes:
            emit(f"p = None")
        for gidx in ext_routes:
            target = acc[fidx]
            fidx += 1
            k = gather[gidx]
            if k < 0:
                raise LoweringError(
                    f"external grad route {m}/{gidx} reads interior slot")
            shape, sdtype = slot_meta[ext[k]]
            xb = bind(f"XB{i}_{m}_{gidx}", np.empty(shape, sdtype))
            emit(f"t = r[{gidx}]")
            emit(f"if t is not None:")
            alias = (f"t is {gname}" if single
                     else f"t is {gname} or t is p")
            emit(f"    if {alias}:")
            emit(f"        _copyto({xb}, t)")
            emit(f"        t = {xb}")
            if not single:
                emit(f"    p = t")
            route_grad(target, gsrc)
    if fidx != len(acc):
        raise LoweringError(
            f"fused backward routed {fidx} external grads, expected "
            f"{len(acc)}")


def _emit(runner: _ProgramRunner) -> Tuple[str, Dict[str, object]]:
    """Lower one runner's plans into (source text, closure environment).

    The source defines ``_factory(C)`` which binds every ``C`` entry to a
    closure cell and returns the specialized ``run(inputs)``.  Everything
    value-like goes through ``C``; the text encodes structure only.
    """
    program = runner.program
    env: Dict[str, object] = {}

    def bind(name: str, value) -> str:
        if name in env:
            raise LoweringError(f"closure name collision: {name}")
        env[name] = value
        return name

    # Fixed helpers.  Bound as closure cells so the generated body needs no
    # globals and no builtins.
    bind("_nd", np.ndarray)
    bind("_isinstance", isinstance)
    bind("_asarray", np.asarray)
    bind("_add", np.add)
    bind("_copyto", np.copyto)
    bind("_float", float)
    bind("_nparray", np.array)
    bind("_dt", program.dtype)

    body: List[str] = []
    emit = body.append

    # -- leaves: re-read by tensor reference every call (the optimizer
    # swaps / mutates parameter storage between steps).
    for j, (slot, t) in enumerate(program.leaves):
        bind(f"L{j}", t)
        emit(f"v{slot} = L{j}.data")

    # -- batch inputs: rebound per call, coerced to the trace dtype.
    for j, slot in enumerate(program.input_slots):
        emit(f"t = inputs[{j}]")
        emit(f"if t.dtype != _dt:")
        emit(f"    t = t.astype(_dt)")
        emit(f"v{slot} = t")

    # -- forward sweep, effects interleaved in recorded order.  Fused
    # chains are not called through their FusedOp wrapper: the wrapper's
    # sub-op loop, gather indexing and kind dispatch are themselves
    # interpreter machinery, so each chain is unrolled into the body with
    # interior values as locals (`u3_1`) shared straight into the unrolled
    # backward — no ctx tuples are ever built for a fused node.
    ctx_name: Dict[int, str] = {}
    fused_chain: Dict[int, int] = {}      # id(node) -> fwd plan index
    for i, (kind, fn, attrs, in_slots, out_slot, node, extra) \
            in enumerate(runner._fwd_plan):
        ins = "[" + ", ".join(f"v{s}" for s in in_slots) + "]"
        if kind == _K_EFFECT:
            bind(f"e{i}", fn)
            emit(f"e{i}({', '.join(f'v{s}' for s in in_slots)})")
            continue
        if kind == _K_SCRATCH and type(node.op) is FusedOp:
            _emit_fused_forward(i, node.op, in_slots, out_slot,
                                program.dtype, bind, emit)
            fused_chain[id(node)] = i
            continue
        ctx_name[id(node)] = f"c{i}"
        bind(f"f{i}", fn)
        bind(f"a{i}", attrs)
        if kind == _K_OUT:
            bind(f"b{i}", extra)
            emit(f"c{i} = f{i}({ins}, a{i}, b{i})")
            emit(f"v{out_slot} = b{i}")
        elif kind == _K_INPLACE:
            # Planner-approved: overwrite the dying input in place.
            buf = f"v{in_slots[extra]}"
            emit(f"c{i} = f{i}({ins}, a{i}, {buf})")
            emit(f"v{out_slot} = {buf}")
        else:
            if kind == _K_SCRATCH:
                bind(f"s{i}", extra)
                emit(f"o, c{i} = f{i}({ins}, a{i}, s{i})")
            else:  # _K_FWD
                emit(f"o, c{i} = f{i}({ins}, a{i})")
            # Mirror the Tensor() dtype coercion of eager dispatch.
            emit(f"if not _isinstance(o, _nd) or o.dtype != _dt:")
            emit(f"    o = _asarray(o, _dt)")
            emit(f"v{out_slot} = o")

    # -- backward sweep: unrolled precomputed schedule.
    # Bind every gradient local to its persistent buffer up front: a route
    # whose kernel returns None leaves the previous binding in place,
    # exactly like the interpreter's grad_bufs dict.
    for slot in sorted(runner.grad_bufs):
        bind(f"G{slot}", runner.grad_bufs[slot])
        emit(f"g{slot} = G{slot}")
    root = program.root_slot
    emit(f"g{root}.fill(1.0)")

    # Route one gradient (local ``t``) into its slot with the runner's
    # adopt-or-copy discipline, the first/sole flags folded into the text.
    adoption_dtypes: Dict[int, str] = {}

    def bind_dtype(slot: int) -> str:
        dname = adoption_dtypes.get(slot)
        if dname is None:
            dname = adoption_dtypes[slot] = bind(
                f"d{slot}", runner.grad_bufs[slot].dtype)
        return dname

    def route_grad(target, gsrc: str) -> None:
        slot, first, sole = target
        if not first:
            emit(f"if t is not None:")
            emit(f"    g{slot} += t")
        elif sole:
            # Adopt a fresh kernel-owned array, else normalize into the
            # persistent buffer — the interpreter's exact discipline.
            dname = bind_dtype(slot)
            emit(f"if t is None:")
            emit(f"    pass")
            emit(f"elif t.base is None and t is not {gsrc} "
                 f"and t.dtype == {dname}:")
            emit(f"    g{slot} = t")
            emit(f"else:")
            emit(f"    _add(t, 0.0, out=G{slot})")
            emit(f"    g{slot} = G{slot}")
        else:
            emit(f"if t is not None:")
            emit(f"    _add(t, 0.0, out=G{slot})")
            emit(f"    g{slot} = G{slot}")

    for i, (bwd, attrs, in_slots, out_slot, node, needs, acc, scratch) \
            in enumerate(runner._bwd_plan):
        gsrc = f"g{out_slot}"
        if type(node.op) is FusedOp:
            fi = fused_chain.get(id(node))
            if fi is None:
                raise LoweringError(
                    f"fused backward step {i} has no inlined forward "
                    f"(node {node!r})")
            _emit_fused_backward(fi, node.op, in_slots, gsrc, acc,
                                 program.slot_meta, route_grad, bind, emit)
            continue
        ctx = ctx_name.get(id(node))
        if ctx is None:
            raise LoweringError(
                f"backward step {i} has no forward ctx (node {node!r})")
        bind(f"q{i}", bwd)
        bind(f"y{i}", attrs)
        bind(f"n{i}", needs)
        ins = "[" + ", ".join(f"v{s}" for s in in_slots) + "]"
        if scratch is None:
            emit(f"r = q{i}({gsrc}, {ins}, v{out_slot}, {ctx}, y{i}, n{i})")
        else:
            bind(f"z{i}", scratch)
            emit(f"r = q{i}({gsrc}, {ins}, v{out_slot}, {ctx}, y{i}, n{i}, "
                 f"z{i})")
        for k, target in enumerate(acc):
            if target is None:
                continue
            emit(f"t = r[{k}]")
            route_grad(target, gsrc)

    # -- publish leaf gradients.
    for j, (slot, t) in enumerate(program.grad_leaves):
        bind(f"T{j}", t)
        emit(f"T{j}.grad = g{slot}")

    # -- outputs: same scalarization as the interpreter.
    outs = ", ".join(
        f"_float(v{slot})" if scalar else f"_nparray(v{slot}, copy=True)"
        for slot, scalar in runner._out_plan)
    emit(f"return ({outs},)" if len(runner._out_plan) == 1
         else f"return ({outs})")

    lines = ["def _factory(C):"]
    for name in env:
        lines.append(f"    {name} = C[{name!r}]")
    lines.append("    def run(inputs):")
    for line in body:
        lines.append("        " + line)
    lines.append("    return run")
    return "\n".join(lines) + "\n", env


def lower_program(runner: _ProgramRunner):
    """Compile a runner's plans into a specialized ``run(inputs)`` callable.

    Returns ``(run, source)``.  The code object is served from the
    process-wide cache when an identically structured program was lowered
    before; only the closure binding (``_factory(C)``) runs per program.
    """
    global _CACHE_HITS, _CACHE_MISSES
    source, env = _emit(runner)
    code = _CODE_CACHE.get(source)
    if code is None:
        _CACHE_MISSES += 1
        code = compile(source, "<repro-graph-codegen>", "exec")
        _CODE_CACHE[source] = code
    else:
        _CACHE_HITS += 1
    namespace: Dict[str, object] = {"__builtins__": {}}
    exec(code, namespace)
    run = namespace["_factory"](env)
    # The inlined fused chains replace the wrapper's lazy copy-buffer dicts
    # with preallocated closure arrays; expose the count so
    # ``persistent_buffers`` / ``alloc_stats`` keep accounting for them.
    runner._n_lowered_bufs = sum(
        1 for name in env if name.startswith(("IB", "XB")))
    _record_source(runner.program, source)
    return run, source


class SourceRunner(_ProgramRunner):
    """A :class:`_ProgramRunner` whose replay is generated source.

    Construction reuses the interpreter's plan building (buffer arena,
    gradient buffers, scratch dicts — the exact same objects, so
    ``persistent_buffers`` / ``alloc_stats`` keep working), then lowers the
    plans to one specialized function.  ``run`` dispatches straight into it.
    """

    exec_mode = "source"
    _n_lowered_bufs = 0

    def __init__(self, program: GraphProgram):
        super().__init__(program)
        self._run, self.source = lower_program(self)
        # Shadow the method with the generated function itself: replay
        # dispatches straight into it, no wrapper frame.
        self.run = self._run

    def persistent_buffers(self) -> int:
        return super().persistent_buffers() + self._n_lowered_bufs


# The interpreter is the other executor; tag it for introspection.
_ProgramRunner.exec_mode = "interp"


# ----------------------------------------------------------------------
# Epoch lowering: a LoopNode as a real `for` loop in generated source
# ----------------------------------------------------------------------

def _emit_epoch(runner) -> Tuple[str, Dict[str, object]]:
    """Lower one epoch loop runner into (source text, closure environment).

    The generated function is the whole-epoch hot path: a real ``for``
    loop over the batch pairs calling the (already lowered) body function,
    with the clip kernel and every optimizer update kernel emitted inline
    after it — no trainer Python between batches.  As with per-step
    lowering, the text encodes structure only (spec count, state arity,
    group wiring, clip membership, tail presence); params, kernels, state
    arrays and the body callables all bind through the closure, so
    structurally identical phases share one code object.
    """
    env: Dict[str, object] = {}

    def bind(name: str, value) -> str:
        if name in env:
            raise LoweringError(f"closure name collision: {name}")
        env[name] = value
        return name

    bind("_body", runner.body_runner.run)
    has_tail = runner.tail_runner is not None
    if has_tail:
        bind("_tail", runner.tail_runner.run)

    # Hyperparameter groups, deduplicated by identity: hoisted once per
    # epoch so between-epoch scheduler set_lr calls stay visible.
    group_idx: Dict[int, int] = {}
    prologue: List[str] = []
    for spec in runner.specs:
        gid = id(spec.group)
        if gid not in group_idx:
            g = group_idx[gid] = len(group_idx)
            bind(f"_grp{g}", spec.group)
            bind(f"_hy{g}", spec.hyper)
            prologue.append(f"h{g} = _hy{g}(_grp{g})")

    # The per-batch update block, emitted twice (loop body + tail).
    updates: List[str] = []
    if runner.grad_clip is not None:
        bind("_clip", runner.clip_kernel)
        bind("_mn", runner.grad_clip)
        grads = ", ".join(
            bind(f"_c{j}", p) + ".grad"
            for j, p in enumerate(runner.clip_params))
        updates.append(f"_clip([{grads}], _mn)")
    for i, spec in enumerate(runner.specs):
        bind(f"_k{i}", spec.kernel)
        bind(f"_p{i}", spec.param)
        if hasattr(spec.param, "resync"):
            # Flat-packed param: re-adopt any member storage rebound
            # between epochs before replaying against the pack.
            prologue.append(f"_p{i}.resync()")
        state = "".join(
            bind(f"_s{i}_{j}", a) + ", "
            for j, a in enumerate(spec.state))
        g = group_idx[id(spec.group)]
        updates.append(f"_k{i}(_p{i}.data, _p{i}.grad, {state}*h{g})")

    acc = runner.acc_index
    if runner.vector_m is None:
        init_total = "total = 0.0"
        accumulate = f"total += o[{acc}]"
    else:
        bind("_npz", np.zeros)
        bind("_m", runner.vector_m)
        bind("_asarray", np.asarray)
        init_total = "total = _npz(_m)"
        accumulate = f"total += _asarray(o[{acc}])"

    body: List[str] = list(prologue)
    body.append(init_total)
    body.append("n = 0")
    body.append("for pair in bodies:")
    body.append("    o = _body(pair)")
    for line in updates:
        body.append("    " + line)
    body.append("    " + accumulate)
    body.append("    n += 1")
    if has_tail:
        body.append("o = _tail(tail)")
        for line in updates:
            body.append(line)
        body.append(accumulate)
        body.append("n += 1")
    body.append("return (total, n)")

    lines = ["def _factory(C):"]
    for name in env:
        lines.append(f"    {name} = C[{name!r}]")
    lines.append("    def run(bodies, tail):")
    for line in body:
        lines.append("        " + line)
    lines.append("    return run")
    return "\n".join(lines) + "\n", env


def lower_epoch(runner):
    """Compile an epoch loop runner into a ``run(bodies, tail)`` callable.

    Returns ``(run, source)``; the code object is served from the same
    process-wide cache as per-step programs (the epoch text is its own
    structural signature).
    """
    global _CACHE_HITS, _CACHE_MISSES
    source, env = _emit_epoch(runner)
    code = _CODE_CACHE.get(source)
    if code is None:
        _CACHE_MISSES += 1
        code = compile(source, "<repro-graph-codegen-epoch>", "exec")
        _CODE_CACHE[source] = code
    else:
        _CACHE_HITS += 1
    namespace: Dict[str, object] = {"__builtins__": {}}
    exec(code, namespace)
    run = namespace["_factory"](env)
    _record_source(runner.program, source)
    return run, source


from .loop import _LoopRunner  # noqa: E402  (epoch runner base)


class SourceEpochRunner(_LoopRunner):
    """A :class:`~repro.autograd.graph.loop._LoopRunner` whose epoch loop
    is generated source: one compiled function per epoch/phase signature.
    """

    exec_mode = "source"

    def __init__(self, *args):
        super().__init__(*args)
        self._run, self.source = lower_epoch(self)
        self.run = self._run
