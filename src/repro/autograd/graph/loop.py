"""Whole-loop capture: replay a full training epoch as one program.

:class:`CompiledStep` (PRs 2/4/7) removed per-batch graph construction but
still returns to Python between batches — optimizer stepping, gradient
clipping and loss accounting run eagerly around every replay, capping the
codegen executor's wins at per-batch dispatch.  :class:`CompiledEpoch`
closes that loop: it records the step's compiled batch body, the
optimizer's update kernels (:meth:`~repro.optim.optimizers.Optimizer.
capture_updates`) and the clip kernel into a
:class:`~repro.autograd.graph.ir.LoopNode` over the epoch's preloaded
batch arrays, wraps it as a single-node epoch
:class:`~repro.autograd.graph.ir.GraphProgram`, and replays the whole
epoch through one call — interpreted, or (``graph_exec="source"``) as one
generated function whose body is a real ``for`` loop
(:func:`repro.autograd.graph.codegen.lower_epoch`).

State crosses iterations as data: parameter storage, Adam moments, the
0-d step counters, BN running stats and the stacked trainer's ``active``
mask are loop-carried arrays mutated in place, exactly as the eager path
mutates them — so a replayed epoch is bit-identical to driving the same
step per batch, which is itself bit-identical to eager execution.

**Fallback ladder** (never worse than the level below):

1. *loop* — every condition met: compiled step, shape-uniform batches
   (one ragged tail allowed — it gets its own shape-specialized epilogue
   body), a capture-aware optimizer, loop-carried-safe memory plans.
2. *step* — any loop-level failure (:attr:`CompiledEpoch.
   loop_fallback_reason`) degrades to driving the compiled step per
   batch.  Loop problems never poison the step.
3. *eager* — only a capture failure inside the step itself
   (``mark_capture_unsafe``, foreign graph tensors) reaches eager, via
   ``CompiledStep.fallback_reason`` as before.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor import get_default_dtype
from .executor import CompiledStep, resolve_graph_exec
from .ir import GraphProgram, LoopNode, epoch_program
from .passes import loop_carried_safety

__all__ = ["CompiledEpoch"]


class _LoopRunner:
    """Interpreted replay of one :class:`LoopNode`: the epoch loop itself.

    ``run(bodies, tail)`` replays the body once per batch pair, then the
    post-batch updates — clip kernel over the grad-leaf gradients (read
    fresh each batch: replay may *adopt* a new gradient array) and the
    optimizer's update kernels in eager ``step()`` order — and accumulates
    the task loss.  Hyperparameters are hoisted once per epoch, so
    between-epoch scheduler ``set_lr`` calls stay visible.
    """

    exec_mode = "interp"

    def __init__(self, loop: LoopNode, program: GraphProgram,
                 body_runner, tail_runner, specs, clip_params,
                 grad_clip: Optional[float], clip_kernel,
                 vector_m: Optional[int], acc_index: int):
        self.loop = loop
        self.program = program
        self.body_runner = body_runner
        self.tail_runner = tail_runner
        self.specs = specs
        self.clip_params = clip_params
        self.grad_clip = grad_clip
        self.clip_kernel = clip_kernel
        self.vector_m = vector_m
        self.acc_index = acc_index

    def run(self, bodies: Sequence[Tuple], tail: Optional[Tuple]):
        specs = self.specs
        for s in specs:
            sync = getattr(s.param, "resync", None)
            if sync is not None:
                sync()
        updates = [(s.kernel, s.param, s.state, s.hyper(s.group))
                   for s in specs]
        clip_params = self.clip_params
        grad_clip = self.grad_clip
        clip_kernel = self.clip_kernel
        acc = self.acc_index
        total = 0.0 if self.vector_m is None else np.zeros(self.vector_m)
        n = 0
        body = self.body_runner.run
        for pair in bodies:
            o = body(pair)
            if grad_clip is not None:
                clip_kernel([p.grad for p in clip_params], grad_clip)
            for kernel, p, state, hyper in updates:
                kernel(p.data, p.grad, *state, *hyper)
            total += o[acc] if self.vector_m is None else np.asarray(o[acc])
            n += 1
        if tail is not None:
            o = self.tail_runner.run(tail)
            if grad_clip is not None:
                clip_kernel([p.grad for p in clip_params], grad_clip)
            for kernel, p, state, hyper in updates:
                kernel(p.data, p.grad, *state, *hyper)
            total += o[acc] if self.vector_m is None else np.asarray(o[acc])
            n += 1
        return total, n


class CompiledEpoch:
    """Drive a training phase's epochs, replaying each as one loop program.

    Parameters
    ----------
    step:
        The phase's batch runner (:class:`CompiledStep` or
        :class:`~repro.autograd.graph.executor.EagerStep`) with the usual
        ``step(x, y) -> (loss, task, ...)`` contract.
    optimizer:
        The phase's optimizer.  Loop replay requires
        ``optimizer.capture_updates`` (duck-typed so this module never
        imports :mod:`repro.optim`); anything else drives per step.
    grad_clip / clip_fn / clip_kernel:
        Max gradient norm (None disables clipping), the eager clip callable
        ``clip_fn(params, max_norm)`` used while driving, and the
        array-level kernel ``clip_kernel(grads, max_norm)`` recorded into
        the loop (:func:`repro.optim.kernels.clip_grads` or its stacked
        variant).
    vector_m:
        None for scalar task losses; the stack width M when the step's
        task output is a per-model vector (stacked trainer) — accumulation
        then matches the eager ``np.zeros(M)`` + ``+=`` exactly.
    graph_exec:
        ``"interp"`` or ``"source"`` for the *epoch* program; defaults to
        the step's own executor mode.  Epoch lowering failures fall back
        to the interpreted loop (:attr:`exec_fallbacks`), never to
        per-step driving.

    ``run_batches(batches)`` returns the epoch's mean task loss, exactly
    like the eager per-batch loop it replaces.  The first epoch per batch
    signature always drives (tracing the body — and the ragged tail —
    through the step's own cache); later epochs replay.
    """

    def __init__(self, step, optimizer, grad_clip: Optional[float] = None,
                 clip_fn: Optional[Callable] = None,
                 clip_kernel: Optional[Callable] = None,
                 vector_m: Optional[int] = None,
                 graph_exec: Optional[str] = None,
                 acc_index: int = 1):
        self.step = step
        self.optimizer = optimizer
        self.grad_clip = grad_clip
        self.clip_fn = clip_fn
        self.clip_kernel = clip_kernel
        self.vector_m = vector_m
        self.acc_index = acc_index
        if graph_exec is None:
            graph_exec = getattr(step, "graph_exec", None)
        self.graph_exec = resolve_graph_exec(graph_exec) \
            if graph_exec is not None else "interp"
        self.loop_fallback_reason: Optional[str] = None
        self._disabled = False
        self.exec_fallbacks: Dict[Tuple, str] = {}
        self._runners: Dict[Tuple, _LoopRunner] = {}
        self.replayed_epochs = 0
        self.driven_epochs = 0

    # ------------------------------------------------------------------
    @property
    def loop_nodes(self) -> Dict[Tuple, LoopNode]:
        """Built loop nodes per (body, tail) signature (introspection)."""
        return {key: runner.loop for key, runner in self._runners.items()}

    @property
    def epoch_programs(self) -> Dict[Tuple, GraphProgram]:
        """The single-node epoch programs actually replayed."""
        return {key: runner.program for key, runner in self._runners.items()}

    @property
    def executors(self) -> Dict[Tuple, str]:
        return {key: runner.exec_mode for key, runner in self._runners.items()}

    def dump_source(self) -> Dict[Tuple, str]:
        """Generated epoch source per signature (source executor only)."""
        return {key: runner.source for key, runner in self._runners.items()
                if getattr(runner, "source", None) is not None}

    def diagnostics(self) -> Dict[str, object]:
        """JSON-able report of what whole-loop capture did (picklable)."""
        return {
            "graph_exec": self.graph_exec,
            "replayed_epochs": self.replayed_epochs,
            "driven_epochs": self.driven_epochs,
            "loop_fallback_reason": self.loop_fallback_reason,
            "executors": {str(key): mode
                          for key, mode in self.executors.items()},
            "exec_fallbacks": {str(key): reason
                               for key, reason in self.exec_fallbacks.items()},
            "loops": {str(key): repr(node)
                      for key, node in self.loop_nodes.items()},
        }

    # ------------------------------------------------------------------
    def run_epoch(self, loader):
        """One epoch over a loader; materializes the batch list first.

        ``list(loader)`` consumes exactly one loader iteration, so the
        shuffling RNG stream is identical to the eager ``for x, y in
        loader`` loop.
        """
        return self.run_batches(list(loader))

    def run_batches(self, batches: List[Tuple]):
        if not batches:
            raise ValueError("training loader produced no batches")
        runner_and_split = self._loop_runner(batches)
        if runner_and_split is None:
            self.driven_epochs += 1
            return self._drive(batches)
        runner, bodies, tail = runner_and_split
        # One zero_grad per *epoch*, not per batch: replay republishes
        # every grad-leaf gradient before anything reads it, and clearing
        # here keeps optimizer params outside the program at grad=None —
        # the exact membership the eager per-batch zero_grad produces.
        self.optimizer.zero_grad()
        self.replayed_epochs += 1
        total, n = runner.run(bodies, tail)
        return total / n

    # ------------------------------------------------------------------
    def _drive(self, batches: List[Tuple]):
        """The per-step ladder rung: replica of the eager epoch loop."""
        step = self.step
        optimizer = self.optimizer
        grad_clip = self.grad_clip
        clip_fn = self.clip_fn
        acc = self.acc_index
        total = 0.0 if self.vector_m is None else np.zeros(self.vector_m)
        for x, y in batches:
            optimizer.zero_grad()
            outs = step(x, y)
            if grad_clip is not None:
                clip_fn(optimizer.params, grad_clip)
            optimizer.step()
            total += outs[acc] if self.vector_m is None \
                else np.asarray(outs[acc])
        return total / len(batches)

    # ------------------------------------------------------------------
    def _reject(self, reason: str, permanent: bool) -> None:
        self.loop_fallback_reason = reason
        if permanent:
            self._disabled = True

    def _loop_runner(self, batches: List[Tuple]):
        """The loop runner for this epoch's batch signature, or None.

        None means "drive this epoch per step" — either permanently
        (:attr:`loop_fallback_reason`, ladder rung 2) or because the body
        programs are not traced yet (the drive itself traces them).
        """
        if self._disabled:
            return None
        step = self.step
        if not isinstance(step, CompiledStep):
            self._reject("step is not compiled", permanent=True)
            return None
        if step.fallback_reason is not None:
            # The step itself cannot capture (e.g. mark_capture_unsafe):
            # rung 3 is the step's own business; the loop layer just
            # stops trying.
            self._reject(f"step fell back to eager: {step.fallback_reason}",
                         permanent=True)
            return None
        if getattr(self.optimizer, "capture_updates", None) is None:
            self._reject(
                f"optimizer {type(self.optimizer).__name__} has no "
                "capture_updates", permanent=True)
            return None
        if self.grad_clip is not None and self.clip_kernel is None:
            self._reject("grad clipping requested without a clip kernel",
                         permanent=True)
            return None

        dtype = get_default_dtype()
        shapes = [(np.asarray(x).shape, np.asarray(y).shape)
                  for x, y in batches]
        body_shape = shapes[0]
        if any(s != body_shape for s in shapes[:-1]):
            self._reject("interior batches are not shape-uniform",
                         permanent=False)
            return None
        has_tail = len(batches) > 1 and shapes[-1] != body_shape
        body_key = body_shape + (dtype,)
        tail_key = shapes[-1] + (dtype,) if has_tail else None
        key = (body_key, tail_key)
        runner = self._runners.get(key)
        if runner is None:
            runner = self._build_runner(key, body_key, tail_key)
            if runner is None:
                return None
            self._runners[key] = runner
        bodies = batches[:-1] if has_tail else batches
        tail = batches[-1] if has_tail else None
        return runner, bodies, tail

    def _build_runner(self, key, body_key, tail_key) -> Optional[_LoopRunner]:
        step = self.step
        body_runner = step._runners.get(body_key)
        if body_runner is None:
            return None  # not traced yet: this epoch's drive traces it
        tail_runner = step._runners.get(tail_key) if tail_key else None
        if tail_key is not None and tail_runner is None:
            return None
        body_prog = body_runner.program
        tail_prog = tail_runner.program if tail_runner is not None else None

        for prog, name in ((body_prog, "body"), (tail_prog, "epilogue")):
            if prog is None:
                continue
            reason = loop_carried_safety(prog)
            if reason is not None:
                self._reject(f"{name} program: {reason}", permanent=True)
                return None
        leaf_ids = {id(t) for _, t in body_prog.grad_leaves}
        if tail_prog is not None and \
                {id(t) for _, t in tail_prog.grad_leaves} != leaf_ids:
            self._reject("epilogue grad leaves differ from body grad leaves",
                         permanent=True)
            return None

        specs = self.optimizer.capture_updates(leaf_ids)
        # Loop-carried state can be repacked: the update set is fixed for
        # the whole phase, so the optimizer may coalesce same-group params
        # into flat buffers — one update kernel call per group per batch.
        flatten = getattr(self.optimizer, "flatten_updates", None)
        if flatten is not None:
            specs = flatten(specs)
        clip_params = [p for p in self.optimizer.params if id(p) in leaf_ids]

        carried: Dict[str, List[np.ndarray]] = {
            "params": [s.param.data for s in specs],
            "opt_state": [a for s in specs for a in s.state
                          if a is not None],
            "leaves": [t.data for slot, t in body_prog.leaves
                       if id(t) not in leaf_ids],
        }
        loop = LoopNode(body=body_prog, epilogue=tail_prog, updates=specs,
                        carried=carried)
        program = epoch_program(loop, body_prog.dtype)

        if self.graph_exec == "source":
            from .codegen import SourceEpochRunner
            try:
                return SourceEpochRunner(
                    loop, program, body_runner, tail_runner, specs,
                    clip_params, self.grad_clip, self.clip_kernel,
                    self.vector_m, self.acc_index)
            except Exception as exc:  # lowering must never break training
                self.exec_fallbacks[key] = f"{type(exc).__name__}: {exc}"
        return _LoopRunner(loop, program, body_runner, tail_runner, specs,
                           clip_params, self.grad_clip, self.clip_kernel,
                           self.vector_m, self.acc_index)
