"""Optimization passes over a captured :class:`GraphProgram`.

PR 2's capture/replay executor replays the eager trace verbatim: one Python
dispatch and (for most ops) one fresh allocation per node per batch.  This
module rewrites the program the way a compiler would, while keeping replay
**bit-identical** to eager execution — the parity suite in
``tests/test_graph_executor.py`` is the contract every pass must honour.

The pipeline (level ``"default"``) runs four passes, in order:

1. **Constant folding** (:func:`fold_constants`) — ops whose inputs are all
   trace-time constants (non-gradient leaves: frozen PIT masks, Eq. 4
   matrices, scalar literals) are evaluated once at optimization time and
   their outputs bound as constant leaves.  Matters most in PIT phase 3,
   where freezing turns whole mask-product subgraphs constant.  Stateful
   ops (``dropout`` carries an ``rng`` attribute) are never folded.
2. **Dead-node elimination** (:func:`eliminate_dead_nodes`) — ops whose
   outputs feed neither a step output, the backward pass, nor a recorded
   side effect are dropped.  Side-effect nodes (BatchNorm running-stat
   updates) and everything they read always stay.
3. **Op fusion** (:func:`fuse_chains`) — maximal *contiguous linear chains*
   (each node's output consumed solely by the next schedule entry) collapse
   into one :class:`FusedOp` that runs the same kernels in the same order
   with one dispatch: conv+activation, bias+activation, BatchNorm affine
   tails, loss reductions (``sub→abs→mean``), softmax/log-softmax tails,
   mask cumulative products.  The fused backward replays the original
   backward sub-steps in their original order and routes interior
   gradients internally, so the global accumulation order — and therefore
   every bit of every gradient — is unchanged.
4. **Memory planning** (:func:`plan_memory`) — a liveness analysis over the
   slot IR assigns the outputs of ``fwd_out``-capable ops to a shared
   buffer *arena* (two slots reuse one buffer when their live ranges are
   disjoint), marks safe in-place ops (``relu``, ``add``/``sub``,
   scalar-``mul``, ``exp``/``tanh``/``sigmoid``) that overwrite a dying
   input, and keeps anything aliased by a numpy view (``reshape``,
   ``getitem`` slices) or read by a backward kernel alive.  All buffers are
   allocated once when the program is compiled, so steady-state replay
   performs no arena allocations (``CompiledStep.alloc_stats`` proves it).

Contiguity is what makes fusion trivially safe: nothing is reordered, so
recorded side effects and the dropout RNG stream fire in exactly the eager
order.  Chains whose backward steps are not a contiguous block of the
backward schedule are left unfused (gradient accumulation order into shared
slots could otherwise change, which is observable in floating point).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..tensor import Tensor
from .ir import BackwardStep, EffectNode, GraphProgram, OpNode

__all__ = [
    "ENV_GRAPH_OPT",
    "OPT_LEVELS",
    "FusedOp",
    "MemoryPlan",
    "OptStats",
    "graph_opt_default",
    "resolve_graph_opt",
    "optimize_program",
    "fold_constants",
    "eliminate_dead_nodes",
    "fuse_chains",
    "plan_memory",
    "loop_carried_safety",
]

ENV_GRAPH_OPT = "REPRO_GRAPH_OPT"
OPT_LEVELS = ("default", "none")


def graph_opt_default() -> str:
    """Process-wide default for ``graph_opt=None`` knobs.

    The ``REPRO_GRAPH_OPT`` environment variable when set (read per call so
    tests can flip it), else ``"default"`` — the optimizer is on unless
    explicitly disabled, because optimized replay is bit-identical.
    """
    return os.environ.get(ENV_GRAPH_OPT, "").strip().lower() or "default"


def resolve_graph_opt(level: Optional[str]) -> str:
    """Normalize a ``graph_opt`` knob: None defers to the environment."""
    if level is None:
        level = graph_opt_default()
    level = str(level).strip().lower()
    if level not in OPT_LEVELS:
        raise ValueError(
            f"unknown graph optimization level {level!r}; "
            f"choose from {OPT_LEVELS} (or set {ENV_GRAPH_OPT})")
    return level


@dataclass
class OptStats:
    """What the pipeline did to one program (introspection/tests/benches)."""

    folded: int = 0          # ops evaluated at optimization time
    removed: int = 0         # dead ops dropped
    fused_groups: int = 0    # chains collapsed
    fused_nodes: int = 0     # ops absorbed into fused groups
    arena_buffers: int = 0   # shared forward buffers allocated
    arena_bytes: int = 0
    arena_reuses: int = 0    # buffer grants served by recycling a live range
    inplace_ops: int = 0     # ops writing their output over a dying input

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


def _constant_leaf(value: np.ndarray) -> Tensor:
    """A detached leaf tensor binding ``value``'s exact bits (no coercion)."""
    t = Tensor(0.0)
    t.data = value
    return t


# ----------------------------------------------------------------------
# Pass 1: constant folding
# ----------------------------------------------------------------------

def fold_constants(program: GraphProgram) -> int:
    """Evaluate ops whose inputs are all trace-time constants.

    A slot is constant when it is a leaf without ``requires_grad`` (inline
    mask constants, frozen masks, scalar literals) or the output of an
    already-folded op.  Folded outputs are bound as new constant leaves —
    re-running the same pure kernels on the same constant inputs at replay
    time would reproduce the same bits, so pre-evaluating them once cannot
    change results.  Ops carrying an ``rng`` attribute (dropout) are
    stateful and never folded; ops with a backward step never qualify
    (their output requires grad, so some input was not constant).
    """
    inputs = set(program.input_slots)  # leaves list includes the step inputs
    const: Dict[int, np.ndarray] = {
        slot: t.data for slot, t in program.leaves
        if not t.requires_grad and slot not in inputs}
    has_step = {id(step.node) for step in program.backward_steps}
    dtype = program.dtype
    folded: List[Tuple[int, np.ndarray]] = []
    schedule = []
    for node in program.schedule:
        if (type(node) is OpNode and id(node) not in has_step
                and "rng" not in node.attrs
                and all(s in const for s in node.in_slots)):
            out, _ = node.op.fwd([const[s] for s in node.in_slots], node.attrs)
            # Mirror the Tensor() dtype coercion of eager dispatch.
            if not isinstance(out, np.ndarray) or out.dtype != dtype:
                out = np.asarray(out, dtype=dtype)
            const[node.out_slot] = out
            folded.append((node.out_slot, out))
            continue
        schedule.append(node)
    program.schedule = schedule
    for slot, value in folded:
        program.leaves.append((slot, _constant_leaf(value)))
        program.slot_meta[slot] = (value.shape, value.dtype)
    return len(folded)


# ----------------------------------------------------------------------
# Pass 2: dead-node elimination
# ----------------------------------------------------------------------

def eliminate_dead_nodes(program: GraphProgram) -> int:
    """Drop ops feeding nothing live.

    Live roots: the step outputs, the backward root, every slot a recorded
    side effect reads (BatchNorm running-stat updates must keep firing with
    the right values), and every slot the backward schedule touches.
    Side-effect nodes themselves are never dropped.
    """
    producer: Dict[int, OpNode] = {
        n.out_slot: n for n in program.schedule if type(n) is OpNode}
    stack: List[int] = list(program.output_slots)
    stack.append(program.root_slot)
    for node in program.schedule:
        if type(node) is EffectNode:
            stack.extend(node.in_slots)
    for step in program.backward_steps:
        stack.extend(step.node.in_slots)
        stack.append(step.node.out_slot)
    live: Set[int] = set()
    while stack:
        slot = stack.pop()
        if slot in live:
            continue
        live.add(slot)
        node = producer.get(slot)
        if node is not None:
            stack.extend(node.in_slots)
    before = len(program.schedule)
    program.schedule = [n for n in program.schedule
                        if type(n) is EffectNode or n.out_slot in live]
    return before - len(program.schedule)


# ----------------------------------------------------------------------
# Pass 3: op fusion
# ----------------------------------------------------------------------

class FusedOp:
    """An :class:`~repro.autograd.tensor.OpDef`-compatible fusion of a
    contiguous linear chain of recorded ops.

    The fused forward runs the member kernels in recorded order on interior
    scratch buffers (``fwd_out`` variants write into persistent per-chain
    buffers); the fused backward replays the member backward kernels in
    their original backward-schedule order, accumulating interior gradients
    internally and returning external gradients in the exact sequence the
    unfused accumulation loop would have processed them.  Both directions
    therefore cost one dispatch instead of one per member, with unchanged
    numerics.

    ``sub`` entries are ``(op, attrs, gather, meta)`` where ``gather`` maps
    kernel argument positions to fused inputs (index ``k >= 0`` reads
    ``ins[k]``) or interior results (``k < 0`` reads chain position ``~k``).

    Interior gradients replicate the runner's adopt-or-copy discipline
    (same ``first``/``sole`` flags, same ``np.add(g, 0.0, out=buf)`` copy)
    rather than passing kernel outputs through raw: a kernel may return a
    view or an oddly-strided array (``einsum`` products), and although the
    *values* are identical, a downstream reduction's pairwise summation
    order depends on memory layout — normalizing into contiguous buffers
    exactly as the unfused runner does keeps every bit equal.
    """

    # OpDef-compatible surface consumed by the executor / planner.  The
    # fused bwd manages its members' scratch dicts itself, so it exposes
    # bwd_scratch=None to the runner.
    fwd_out = None
    bwd_scratch = None
    inplace: Dict[int, Tuple[int, ...]] = {}

    # Forward sub-entry kinds (mirrors the runner's plan-entry encoding).
    _F_FWD, _F_OUT, _F_SCRATCH = 0, 1, 2

    def __init__(self, sub: Sequence[Tuple], dtype):
        self.sub = tuple(sub)
        self.dtype = dtype
        self.name = "fused:" + "+".join(entry[0].name for entry in sub)
        self.bwd_plan: Tuple = ()        # filled by _build_fused_backward
        self.ext_value_reads: Set[int] = set()   # fused-input indices read by bwd
        self.out_value_read = False      # fused output value read by bwd
        self.bwd_uses: Tuple[str, ...] = ()
        self.view_of: Optional[int] = None
        self._last = len(self.sub) - 1
        self._igbufs: Dict[int, np.ndarray] = {}  # interior copy buffers
        self._xbufs: Dict[Tuple[int, int], np.ndarray] = {}  # external copies
        # Flattened forward plan with buffers/scratch bound up front, so
        # the replay loop is as lean as the runner's own.
        plan = []
        for op, sattrs, gather, meta in self.sub:
            if op.fwd_out is not None:
                plan.append((self._F_OUT, op.fwd_out, sattrs, gather,
                             np.empty(*meta)))
            elif op.fwd_scratch is not None:
                plan.append((self._F_SCRATCH, op.fwd_scratch, sattrs, gather,
                             {}))
            else:
                plan.append((self._F_FWD, op.fwd, sattrs, gather, None))
        self._fwd_plan = tuple(plan)
        self._vals = [None] * len(self.sub)
        self._ctxs = [None] * len(self.sub)

    def __repr__(self) -> str:
        return f"FusedOp({self.name!r}, n={len(self.sub)})"

    # -- forward -------------------------------------------------------
    def fwd(self, ins, attrs):
        return self.fwd_scratch(ins, attrs, {})

    def fwd_scratch(self, ins, attrs, scratch):
        vals = self._vals
        ctxs = self._ctxs
        dtype = self.dtype
        j = 0
        for kind, fn, sattrs, gather, extra in self._fwd_plan:
            sins = [ins[k] if k >= 0 else vals[~k] for k in gather]
            if kind == 1:
                ctxs[j] = fn(sins, sattrs, extra)
                vals[j] = extra
            else:
                if kind == 2:
                    out, ctxs[j] = fn(sins, sattrs, extra)
                else:
                    out, ctxs[j] = fn(sins, sattrs)
                # Mirror the Tensor() dtype coercion of eager dispatch.
                if not isinstance(out, np.ndarray) or out.dtype != dtype:
                    out = np.asarray(out, dtype=dtype)
                vals[j] = out
            j += 1
        return vals[-1], (vals, ctxs)

    # -- backward ------------------------------------------------------
    def bwd(self, g, ins, out, ctx, attrs, needs):
        vals, ctxs = ctx
        igrads: list = [None] * len(self.sub)
        igrads[-1] = g
        igbufs = self._igbufs
        flat: List[Optional[np.ndarray]] = []
        append = flat.append
        for pos, fn, sattrs, gather, sneeds, int_routes, ext_routes, scratch \
                in self.bwd_plan:
            gnode = igrads[pos]
            sins = [ins[k] if k >= 0 else vals[~k] for k in gather]
            if scratch is None:
                grads = fn(gnode, sins, vals[pos], ctxs[pos], sattrs, sneeds)
            else:
                grads = fn(gnode, sins, vals[pos], ctxs[pos], sattrs, sneeds,
                           scratch)
            # Interior gradients: same adopt-or-copy the runner applies to
            # grad slots, so they match the unfused buffers bit for bit
            # *and* in memory layout.
            for gidx, target, first, sole, rdtype, rshape in int_routes:
                gp = grads[gidx]
                if gp is None:
                    continue
                if not first:
                    igrads[target] += gp
                elif (sole and gp.base is None and gp is not gnode
                      and gp.dtype == rdtype):
                    igrads[target] = gp
                else:
                    buf = igbufs.get(target)
                    if buf is None:
                        buf = igbufs[target] = np.empty(rshape, rdtype)
                    np.add(gp, 0.0, out=buf)
                    igrads[target] = buf
            # Never hand one array to two accumulation targets, nor the
            # sub-step's own gradient source (the runner may adopt returned
            # arrays as gradient buffers, and an alias — e.g. add's (g, g)
            # passthrough, or a persistent scratch buffer — would let one
            # slot scribble over another).  Duplicates can only come from
            # one kernel's own return tuple, so the check is per sub-step.
            # The copy goes into a per-route persistent buffer so
            # passthrough gradients do not reintroduce steady-state
            # allocations.
            prev = None
            for gidx in ext_routes:
                gp = grads[gidx]
                if gp is not None:
                    if gp is gnode or gp is prev:
                        key = (pos, gidx)
                        buf = self._xbufs.get(key)
                        if buf is None or buf.shape != gp.shape \
                                or buf.dtype != gp.dtype:
                            buf = self._xbufs[key] = np.empty(gp.shape,
                                                              gp.dtype)
                        np.copyto(buf, gp)
                        gp = buf
                    prev = gp
                append(gp)
        return flat


def _chain_runs(program: GraphProgram) -> List[List[int]]:
    """Maximal contiguous linear chains eligible for fusion."""
    schedule = program.schedule
    n = len(schedule)
    outputs = set(program.output_slots)
    effect_reads: Set[int] = set()
    consumers: Dict[int, List[int]] = {}
    for idx, node in enumerate(schedule):
        if type(node) is EffectNode:
            effect_reads.update(node.in_slots)
            continue
        for s in set(node.in_slots):
            consumers.setdefault(s, []).append(idx)
    runs: List[List[int]] = []
    i = 0
    while i < n:
        if type(schedule[i]) is EffectNode:
            i += 1
            continue
        run = [i]
        j = i
        while j + 1 < n and type(schedule[j + 1]) is not EffectNode:
            s = schedule[j].out_slot
            if (s in outputs or s in effect_reads
                    or consumers.get(s) != [j + 1]):
                break
            run.append(j + 1)
            j += 1
        if len(run) >= 2:
            runs.append(run)
        i = run[-1] + 1
    return runs


def _backward_block(run_nodes: List[OpNode], step_index: Dict[int, int]
                    ) -> Optional[List[int]]:
    """Backward-schedule indices of the chain's steps, verified fusable.

    Returns the indices (ascending) when they form one contiguous block
    that visits the chain nodes in exactly reverse chain order — the
    precondition for replacing them with a single fused step without
    changing the order of any gradient accumulation.  None otherwise.
    """
    indexed = [(step_index[id(nd)], pos) for pos, nd in enumerate(run_nodes)
               if id(nd) in step_index]
    if not indexed:
        return []
    indexed.sort()
    indices = [bi for bi, _ in indexed]
    positions = [pos for _, pos in indexed]
    contiguous = indices[-1] - indices[0] == len(indices) - 1
    reverse_order = all(a > b for a, b in zip(positions, positions[1:]))
    return indices if contiguous and reverse_order else None


def _alias_ext(sub, pos: int) -> Optional[int]:
    """Fused-input index whose storage chain position ``pos`` may alias,
    following view ops transitively; None when the value is chain-private."""
    while True:
        op, _attrs, gather, _meta = sub[pos]
        if op.view_of is None:
            return None
        k = gather[op.view_of]
        if k >= 0:
            return k
        pos = ~k


def _build_fused(program: GraphProgram, run: List[int],
                 step_index: Dict[int, int]):
    """Build the fused node + backward step for one verified run."""
    schedule = program.schedule
    nodes = [schedule[k] for k in run]
    pos_of_slot = {nd.out_slot: p for p, nd in enumerate(nodes)}

    ext_slots: List[int] = []
    sub: List[Tuple] = []
    for p, nd in enumerate(nodes):
        gather: List[int] = []
        for s in nd.in_slots:
            pp = pos_of_slot.get(s)
            if pp is not None and pp < p:
                gather.append(~pp)
            else:
                gather.append(len(ext_slots))
                ext_slots.append(s)
        sub.append((nd.op, nd.attrs, tuple(gather),
                    program.slot_meta[nd.out_slot]))

    fused = FusedOp(sub, program.dtype)
    fused.view_of = _alias_ext(sub, len(sub) - 1)
    fused_node = OpNode(fused, tuple(ext_slots), nodes[-1].out_slot, {})

    # Backward plan: the chain's steps in their original backward order.
    block = [program.backward_steps[bi]
             for bi in (_backward_block(nodes, step_index) or [])]
    bwd_plan: List[Tuple] = []
    flat_needs: List[bool] = []
    flat_acc: List = []
    for step in block:
        nd = step.node
        p = pos_of_slot[nd.out_slot]
        op, sattrs, gather, _meta = sub[p]
        # Value reads of the fused backward: externals this sub-step's
        # kernel reads, including storage reached through interior views.
        reads: Set[int] = set()
        if "ins" in op.bwd_uses:
            for k in gather:
                if k >= 0:
                    reads.add(k)
                else:
                    ak = _alias_ext(sub, ~k)
                    if ak is not None:
                        reads.add(ak)
        if "out" in op.bwd_uses:
            if p == len(sub) - 1:
                fused.out_value_read = True
            else:
                ak = _alias_ext(sub, p)
                if ak is not None:
                    reads.add(ak)
        fused.ext_value_reads.update(reads)
        int_routes: List[Tuple] = []
        ext_routes: List[int] = []
        for gidx, (s, acc_entry, need) in enumerate(
                zip(nd.in_slots, step.acc, step.needs)):
            pp = pos_of_slot.get(s)
            if pp is not None and pp < p:
                # Interior: keep the original first/sole flags so the fused
                # backward replicates the runner's adopt-or-copy exactly.
                if acc_entry is not None:
                    ishape, idtype = sub[pp][3]
                    int_routes.append((gidx, pp, acc_entry[1], acc_entry[2],
                                       idtype, ishape))
            elif acc_entry is not None:
                ext_routes.append(gidx)
                flat_needs.append(need)
                flat_acc.append(acc_entry)
        bwd_plan.append((p, op.bwd_scratch or op.bwd, sattrs, gather,
                         step.needs, tuple(int_routes), tuple(ext_routes),
                         {} if op.bwd_scratch is not None else None))
    fused.bwd_plan = tuple(bwd_plan)
    fused.bwd_uses = ("ins",) if fused.ext_value_reads else ()
    if fused.out_value_read:
        fused.bwd_uses = fused.bwd_uses + ("out",)

    fused_step = (BackwardStep(fused_node, tuple(flat_needs), tuple(flat_acc))
                  if block else None)
    interior = [nd.out_slot for nd in nodes[:-1]]
    return fused_node, fused_step, [id(st) for st in block], interior


def fuse_chains(program: GraphProgram) -> Tuple[int, int]:
    """Collapse contiguous linear chains into :class:`FusedOp` nodes.

    Returns ``(groups, nodes_absorbed)``.
    """
    step_index = {id(step.node): i
                  for i, step in enumerate(program.backward_steps)}
    replacements: Dict[int, Tuple] = {}   # first schedule idx -> build result
    skip_sched: Set[int] = set()
    groups = absorbed = 0
    for run in _chain_runs(program):
        nodes = [program.schedule[k] for k in run]
        if _backward_block(nodes, step_index) is None:
            continue  # fusing would reorder gradient accumulation
        replacements[run[0]] = _build_fused(program, run, step_index)
        skip_sched.update(run[1:])
        groups += 1
        absorbed += len(run)

    if not groups:
        return 0, 0

    new_schedule: List = []
    replaced_steps: Dict[int, BackwardStep] = {}   # old step id -> fused step
    dropped_steps: Set[int] = set()
    for idx, node in enumerate(program.schedule):
        if idx in skip_sched:
            continue
        built = replacements.get(idx)
        if built is None:
            new_schedule.append(node)
            continue
        fused_node, fused_step, block_ids, interior = built
        new_schedule.append(fused_node)
        if fused_step is not None:
            # block_ids is in backward-schedule order; the fused step takes
            # the block's first position, the rest are dropped.
            replaced_steps[block_ids[0]] = fused_step
            dropped_steps.update(block_ids[1:])
        for slot in interior:
            program.grad_slots.discard(slot)
    new_steps: List[BackwardStep] = []
    for step in program.backward_steps:
        sid = id(step)
        if sid in dropped_steps:
            continue
        new_steps.append(replaced_steps.get(sid, step))
    program.schedule = new_schedule
    program.backward_steps = new_steps
    return groups, absorbed - groups


# ----------------------------------------------------------------------
# Pass 4: memory planning
# ----------------------------------------------------------------------

@dataclass
class MemoryPlan:
    """Static buffer assignment for one program's forward sweep."""

    buffers: List[Tuple[Tuple[int, ...], object]] = field(default_factory=list)
    out_buffer: Dict[int, int] = field(default_factory=dict)  # sched idx -> buffer
    inplace: Dict[int, int] = field(default_factory=dict)     # sched idx -> arg pos
    arena_bytes: int = 0
    reuses: int = 0


class _AliasGroups:
    """Union-find over slots that may share storage (views, in-place)."""

    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._members: Dict[int, List[int]] = {}

    def find(self, s: int) -> int:
        parent = self._parent
        root = s
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(s, s) != s:
            parent[s], s = root, parent[s]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        merged = self.members(ra) + self.members(rb)
        self._parent[ra] = rb
        self._members.pop(ra, None)
        self._members[rb] = merged

    def members(self, s: int) -> List[int]:
        root = self.find(s)
        return self._members.setdefault(root, [root])


def plan_memory(program: GraphProgram) -> MemoryPlan:
    """Liveness analysis + arena assignment + in-place marking.

    Works on the post-fusion schedule.  A slot's value is *live* until its
    last forward read (including side-effect reads and step outputs) unless
    some backward kernel will read it, in which case it survives the whole
    replay.  View ops union their output with the aliased input so shared
    storage is never recycled while any alias is live.
    """
    schedule = program.schedule
    meta = program.slot_meta
    end = len(schedule)
    leafish = {s for s, _ in program.leaves} | set(program.input_slots)
    outputs = set(program.output_slots)
    producer_idx = {node.out_slot: idx for idx, node in enumerate(schedule)
                    if type(node) is OpNode}

    last_fwd: Dict[int, int] = {}
    for idx, node in enumerate(schedule):
        for s in node.in_slots:
            last_fwd[s] = idx
    for s in outputs:
        last_fwd[s] = end

    # Which slots some backward kernel will read the *value* of.
    has_step = {id(st.node): st for st in program.backward_steps}
    bwd_readers: Dict[int, Set[int]] = {}
    out_read: Set[int] = set()
    for idx, node in enumerate(schedule):
        if type(node) is not OpNode or id(node) not in has_step:
            continue
        op = node.op
        if isinstance(op, FusedOp):
            for k in op.ext_value_reads:
                bwd_readers.setdefault(node.in_slots[k], set()).add(idx)
            if op.out_value_read:
                out_read.add(node.out_slot)
        else:
            if "ins" in op.bwd_uses:
                for s in node.in_slots:
                    bwd_readers.setdefault(s, set()).add(idx)
            if "out" in op.bwd_uses:
                out_read.add(node.out_slot)

    groups = _AliasGroups()
    for node in schedule:
        if type(node) is OpNode and node.op.view_of is not None:
            groups.union(node.out_slot, node.in_slots[node.op.view_of])

    def group_stats(s: int):
        mem = groups.members(s)
        return (
            max(last_fwd.get(m, producer_idx.get(m, -1)) for m in mem),
            any(m in leafish for m in mem),
            any(m in outputs for m in mem),
            any(m in out_read for m in mem),
            set().union(*(bwd_readers.get(m, set()) for m in mem)),
        )

    plan = MemoryPlan()

    # -- in-place marking ----------------------------------------------
    for idx, node in enumerate(schedule):
        if type(node) is not OpNode:
            continue
        op = node.op
        if op.fwd_out is None or not op.inplace:
            continue
        step = has_step.get(id(node))
        needs = step.needs if step is not None else None
        oshape, odtype = meta[node.out_slot]
        for p in sorted(op.inplace):
            if p >= len(node.in_slots):
                continue
            guard = op.inplace[p]
            if needs is not None and any(q < len(needs) and needs[q]
                                         for q in guard):
                continue
            s = node.in_slots[p]
            if s not in producer_idx:
                continue  # never scribble on parameters or batch inputs
            g_last, g_leaf, g_out, g_outread, g_readers = group_stats(s)
            if g_leaf or g_out or g_outread or g_last > idx:
                continue
            # Backward reads are only tolerable from this very node (the
            # op declared its kernel alias-tolerant, e.g. relu's mask).
            if g_readers - {idx}:
                continue
            if meta[s] != (oshape, odtype):
                continue
            plan.inplace[idx] = p
            groups.union(s, node.out_slot)
            break

    # -- arena assignment ----------------------------------------------
    free: Dict[Tuple, List[int]] = {}
    release_at: Dict[int, List[int]] = {}
    for idx, node in enumerate(schedule):
        for b in release_at.pop(idx, ()):
            free.setdefault(plan.buffers[b], []).append(b)
        if type(node) is not OpNode or idx in plan.inplace:
            continue
        op = node.op
        if op.fwd_out is None or isinstance(op, FusedOp):
            continue
        s = node.out_slot
        g_last, g_leaf, g_out, g_outread, g_readers = group_stats(s)
        if g_leaf:
            continue
        shape, dtype = meta[s]
        key = (shape, np.dtype(dtype))
        pool = free.get(key)
        if pool:
            b = pool.pop()
            plan.reuses += 1
        else:
            b = len(plan.buffers)
            plan.buffers.append(key)
        plan.out_buffer[idx] = b
        if not (g_out or g_outread or g_readers) and g_last < end:
            # Free for reuse from the entry after the last reader: the
            # reader itself must not see its input buffer as its output
            # (that is exactly what the explicit in-place path is for).
            release_at.setdefault(g_last + 1, []).append(b)
    plan.arena_bytes = sum(
        int(np.prod(shape, dtype=np.int64)) * np.dtype(dt).itemsize
        for shape, dt in plan.buffers)
    return plan


# ----------------------------------------------------------------------
# Loop-carried liveness
# ----------------------------------------------------------------------

def loop_carried_safety(program: GraphProgram) -> Optional[str]:
    """Why this body cannot replay under a :class:`~.ir.LoopNode`, or None.

    A loop body's leaf slots are the loop-carried state (parameters, BN
    buffers, masks): they must survive every iteration bit-intact until
    the between-iteration update kernels rewrite them.  The memory planner
    is built never to scribble on leaves — this pass *proves* it for the
    concrete plan instead of assuming it, so carried slots are treated as
    liveness roots across iterations rather than per-replay temporaries.
    Everything else (op outputs, ``ctx``, gradient buffers) is recomputed
    or overwritten by the next iteration, so arena reuse across iterations
    is safe by construction once leaves are protected.
    """
    plan = program.mem_plan
    if plan is None:
        return None  # no buffer sharing, nothing can alias a carried slot
    leafish = {s for s, _ in program.leaves} | set(program.input_slots)
    groups = _AliasGroups()
    for node in program.schedule:
        if type(node) is OpNode and node.op.view_of is not None:
            groups.union(node.out_slot, node.in_slots[node.op.view_of])
    def touches_leaf(slot: int) -> bool:
        return any(m in leafish for m in groups.members(slot))
    for idx, p in plan.inplace.items():
        node = program.schedule[idx]
        if touches_leaf(node.in_slots[p]) or touches_leaf(node.out_slot):
            return (f"in-place op {node.op.name!r} overwrites storage "
                    "aliasing a loop-carried leaf slot")
    for idx in plan.out_buffer:
        if touches_leaf(program.schedule[idx].out_slot):
            return (f"arena buffer assigned to "
                    f"{program.schedule[idx].op.name!r} output aliasing a "
                    "loop-carried leaf slot")
    return None


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------

def optimize_program(program: GraphProgram,
                     level: str = "default") -> OptStats:
    """Run the pass pipeline in place; returns what it did.

    ``level="none"`` leaves the program untouched (verbatim PR 2 replay);
    ``"default"`` runs folding → DCE → fusion → memory planning.
    """
    stats = OptStats()
    if resolve_graph_opt(level) == "none":
        return stats
    stats.folded = fold_constants(program)
    stats.removed = eliminate_dead_nodes(program)
    stats.fused_groups, stats.fused_nodes = fuse_chains(program)
    plan = plan_memory(program)
    program.mem_plan = plan
    stats.arena_buffers = len(plan.buffers)
    stats.arena_bytes = plan.arena_bytes
    stats.arena_reuses = plan.reuses
    stats.inplace_ops = len(plan.inplace)
    return stats
