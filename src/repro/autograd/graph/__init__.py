"""Graph-capture executor: trace a training step once, replay it flat.

Eager autograd rebuilds the op graph in Python for every batch.  For the
static networks of this reproduction (TCNs, PIT supernets, unrolled RNNs)
that graph is identical batch after batch, so this subsystem records it
once and replays it as a flat schedule:

* :class:`GraphCapture` — thread-local tracer observing every
  :func:`repro.autograd.apply_op` dispatch during one eager step;
* :mod:`~repro.autograd.graph.ir` — the frozen program: topo-ordered nodes
  carrying op kind, static attrs (including the conv backend handle
  resolved at trace time) and input/output buffer slots;
* :class:`CompiledStep` — the replay executor: per-shape program cache,
  preallocated gradient buffers, bit-identical results, automatic eager
  fallback for anything value-dependent.

Entry points for training code: ``PITTrainer(compile_step=True)``,
``train_plain(compile_step=True)``, the ``--compile`` CLI flag, or the
``REPRO_COMPILE_STEP=1`` environment default.
"""

from .capture import GraphCapture, capture
from .executor import (
    ENV_COMPILE,
    CompiledStep,
    EagerStep,
    compile_step_default,
)
from .ir import GraphCaptureError, GraphProgram, build_program

__all__ = [
    "GraphCapture",
    "GraphCaptureError",
    "GraphProgram",
    "CompiledStep",
    "EagerStep",
    "build_program",
    "capture",
    "compile_step_default",
    "ENV_COMPILE",
]
