"""Graph-capture executor: trace a training step once, replay it flat.

Eager autograd rebuilds the op graph in Python for every batch.  For the
static networks of this reproduction (TCNs, PIT supernets, unrolled RNNs)
that graph is identical batch after batch, so this subsystem records it
once, optimizes it, and replays it as a flat schedule:

* :class:`GraphCapture` — thread-local tracer observing every
  :func:`repro.autograd.apply_op` dispatch during one eager step;
* :mod:`~repro.autograd.graph.ir` — the frozen program: topo-ordered nodes
  carrying op kind, static attrs (including the conv backend handle
  resolved at trace time) and input/output buffer slots;
* :mod:`~repro.autograd.graph.passes` — the optimization pipeline run on
  every captured program: constant folding, dead-node elimination,
  contiguous-chain op fusion and liveness-planned buffer reuse, all
  bit-identical to the unoptimized replay (``REPRO_GRAPH_OPT=none`` turns
  it off);
* :class:`CompiledStep` — the replay executor: per-shape program cache,
  preallocated gradient buffers and forward arena, bit-identical results,
  automatic eager fallback for anything value-dependent.

Entry points for training code: ``PITTrainer(compile_step=True)``,
``train_plain(compile_step=True)``, the ``--compile`` / ``--graph-opt``
CLI flags, or the ``REPRO_COMPILE_STEP=1`` / ``REPRO_GRAPH_OPT``
environment defaults.
"""

from .capture import GraphCapture, capture
from .executor import (
    ENV_COMPILE,
    ENV_GRAPH_EXEC,
    EXEC_MODES,
    CompiledStep,
    EagerStep,
    compile_step_default,
    graph_exec_default,
    resolve_graph_exec,
)
from .codegen import (
    LoweringError,
    SourceRunner,
    codegen_cache_stats,
    recorded_sources,
)
from .ir import GraphCaptureError, GraphProgram, build_program
from .passes import (
    ENV_GRAPH_OPT,
    OPT_LEVELS,
    OptStats,
    graph_opt_default,
    optimize_program,
    resolve_graph_opt,
)

__all__ = [
    "GraphCapture",
    "GraphCaptureError",
    "GraphProgram",
    "CompiledStep",
    "EagerStep",
    "LoweringError",
    "SourceRunner",
    "build_program",
    "capture",
    "compile_step_default",
    "codegen_cache_stats",
    "recorded_sources",
    "optimize_program",
    "graph_opt_default",
    "resolve_graph_opt",
    "graph_exec_default",
    "resolve_graph_exec",
    "OptStats",
    "ENV_COMPILE",
    "ENV_GRAPH_OPT",
    "ENV_GRAPH_EXEC",
    "OPT_LEVELS",
    "EXEC_MODES",
]
