"""Graph-capture executor: trace a training step once, replay it flat.

Eager autograd rebuilds the op graph in Python for every batch.  For the
static networks of this reproduction (TCNs, PIT supernets, unrolled RNNs)
that graph is identical batch after batch, so this subsystem records it
once, optimizes it, and replays it as a flat schedule:

* :class:`GraphCapture` — thread-local tracer observing every
  :func:`repro.autograd.apply_op` dispatch during one eager step;
* :mod:`~repro.autograd.graph.ir` — the frozen program: topo-ordered nodes
  carrying op kind, static attrs (including the conv backend handle
  resolved at trace time) and input/output buffer slots;
* :mod:`~repro.autograd.graph.passes` — the optimization pipeline run on
  every captured program: constant folding, dead-node elimination,
  contiguous-chain op fusion and liveness-planned buffer reuse, all
  bit-identical to the unoptimized replay (``REPRO_GRAPH_OPT=none`` turns
  it off);
* :class:`CompiledStep` — the replay executor: per-shape program cache,
  preallocated gradient buffers and forward arena, bit-identical results,
  automatic eager fallback for anything value-dependent.

Since PR 8 the subsystem also captures the *loop around* the step:
:class:`CompiledEpoch` closes a compiled batch body, the optimizer's
update kernels and the clip kernel into a :class:`LoopNode`, replaying a
whole training epoch (or PIT phase) as one single-node
:class:`GraphProgram` — interpreted, or emitted as a real ``for`` loop in
generated source.

Entry points for training code: a :class:`CompileConfig` passed as
``compile_config=`` to any trainer / search layer (the loose
``compile_step=`` / ``graph_opt=`` / ``graph_exec=`` / ``loop_capture=``
kwargs survive as a deprecated shim), the ``--compile`` / ``--graph-opt``
/ ``--graph-exec`` / ``--loop-capture`` CLI flags, or the
``REPRO_COMPILE_STEP`` / ``REPRO_GRAPH_OPT`` / ``REPRO_GRAPH_EXEC`` /
``REPRO_LOOP_CAPTURE`` environment defaults.
"""

from .capture import GraphCapture, capture
from .executor import (
    ENV_COMPILE,
    ENV_GRAPH_EXEC,
    EXEC_MODES,
    CompiledStep,
    EagerStep,
    compile_step_default,
    graph_exec_default,
    resolve_graph_exec,
)
from .codegen import (
    LoweringError,
    SourceEpochRunner,
    SourceRunner,
    codegen_cache_stats,
    recorded_sources,
)
from .config import ENV_LOOP_CAPTURE, CompileConfig, loop_capture_default
from .ir import (GraphCaptureError, GraphProgram, LoopNode, build_program,
                 epoch_program)
from .loop import CompiledEpoch
from .passes import (
    ENV_GRAPH_OPT,
    OPT_LEVELS,
    OptStats,
    graph_opt_default,
    loop_carried_safety,
    optimize_program,
    resolve_graph_opt,
)

__all__ = [
    "GraphCapture",
    "GraphCaptureError",
    "GraphProgram",
    "LoopNode",
    "CompiledStep",
    "CompiledEpoch",
    "CompileConfig",
    "EagerStep",
    "LoweringError",
    "SourceRunner",
    "SourceEpochRunner",
    "build_program",
    "epoch_program",
    "capture",
    "compile_step_default",
    "codegen_cache_stats",
    "recorded_sources",
    "optimize_program",
    "graph_opt_default",
    "resolve_graph_opt",
    "graph_exec_default",
    "resolve_graph_exec",
    "loop_capture_default",
    "loop_carried_safety",
    "OptStats",
    "ENV_COMPILE",
    "ENV_GRAPH_OPT",
    "ENV_GRAPH_EXEC",
    "ENV_LOOP_CAPTURE",
    "OPT_LEVELS",
    "EXEC_MODES",
]
