"""Replay executor: run a captured training step without building a graph.

:class:`CompiledStep` wraps a step function ``step_fn(x, y) -> (loss, ...)``
(tensors in, tensors out).  The first call per input shape *traces*: the
step runs eagerly under a :class:`GraphCapture` — producing real losses and
gradients — and is frozen into a :class:`GraphProgram`.  The program is then
rewritten by the optimization pass pipeline (:mod:`.passes`: constant
folding, dead-node elimination, op fusion, liveness-planned buffer reuse)
unless ``optimize="none"``.  Every later call with that shape *replays* the
optimized program: a flat loop over recorded kernels on slot-indexed numpy
buffers, with

* no ``Tensor`` objects, no parent tuples, no per-op bookkeeping;
* no topological sort — the backward schedule was precomputed from the same
  topo order the eager engine uses;
* preallocated gradient buffers and a shared forward buffer *arena*
  (liveness-disjoint intermediates reuse one buffer; safe ops write over a
  dying input in place), so steady-state replay performs no arena
  allocations — :attr:`CompiledStep.alloc_stats` proves it.

Because replay invokes the *same* kernels in the *same* order on the same
values as eager execution would — fused regions run their member kernels
internally, folded constants were produced by those very kernels at trace
time — results (losses, every parameter gradient, entire training
trajectories) are bit-identical to eager mode; ``tests/test_graph_executor.py``
and ``tests/test_graph_passes.py`` lock this.

Shape changes (e.g. a short final batch) transparently re-trace: programs
are cached per ``(x.shape, y.shape, default dtype)``, so each distinct
signature pays one eager step and replays thereafter — and with
``graph_exec="source"`` the re-trace reuses the compiled code object from
the process-wide codegen cache (:mod:`.codegen`), which also serves
same-architecture steps across DSE points.  Captures that fail — legacy closure
ops, value-dependent control flow announced via ``mark_capture_unsafe`` —
poison the step permanently and it runs eagerly, which is always correct;
see :attr:`CompiledStep.fallback_reason`.

A ``CompiledStep`` is single-threaded (per-replay scratch lives in the
program nodes); concurrent trainers — e.g. parallel DSE workers — each
compile their own step.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor, get_default_dtype
from .capture import capture
from .ir import GraphCaptureError, GraphProgram, OpNode, build_program
from .passes import FusedOp, OptStats, optimize_program, resolve_graph_opt

__all__ = [
    "CompiledStep",
    "EagerStep",
    "compile_step_default",
    "graph_exec_default",
    "resolve_graph_exec",
    "ENV_COMPILE",
    "ENV_GRAPH_EXEC",
    "EXEC_MODES",
]

ENV_COMPILE = "REPRO_COMPILE_STEP"
ENV_GRAPH_EXEC = "REPRO_GRAPH_EXEC"
EXEC_MODES = ("interp", "source")


def compile_step_default() -> bool:
    """Process-wide default for ``compile_step=None`` knobs.

    True when the ``REPRO_COMPILE_STEP`` environment variable is a truthy
    flag (``1``/``true``/``yes``/``on``); read per call so tests can flip it.
    """
    return os.environ.get(ENV_COMPILE, "").strip().lower() in ("1", "true", "yes", "on")


def graph_exec_default() -> str:
    """Process-wide default for ``graph_exec=None`` knobs.

    The ``REPRO_GRAPH_EXEC`` environment variable when set (read per call
    so tests can flip it), else ``"interp"`` — the interpreted replay loop
    stays the default; ``"source"`` lowers each optimized program to one
    specialized generated function (:mod:`.codegen`), bit-identical and
    faster on interpreter-bound steps.
    """
    return os.environ.get(ENV_GRAPH_EXEC, "").strip().lower() or "interp"


def resolve_graph_exec(mode: Optional[str]) -> str:
    """Normalize a ``graph_exec`` knob: None defers to the environment."""
    if mode is None:
        mode = graph_exec_default()
    mode = str(mode).strip().lower()
    if mode not in EXEC_MODES:
        raise ValueError(
            f"unknown graph executor {mode!r}; "
            f"choose from {EXEC_MODES} (or set {ENV_GRAPH_EXEC})")
    return mode


def _scalarize(array: np.ndarray) -> Union[float, np.ndarray]:
    return float(array) if array.size == 1 else np.array(array, copy=True)


class EagerStep:
    """Uniform step interface over plain eager execution.

    ``step(x, y)`` builds input tensors, runs the step function, calls
    ``backward()`` on its first output (leaving ``.grad`` populated), and
    returns the outputs as floats/arrays — the exact contract of
    :class:`CompiledStep`, so trainers can hold either interchangeably.
    """

    def __init__(self, step_fn: Callable):
        self.step_fn = step_fn

    def __call__(self, x, y) -> Tuple:
        outs = self.step_fn(Tensor(x), Tensor(y))
        outs = outs if isinstance(outs, tuple) else (outs,)
        outs[0].backward()
        return tuple(_scalarize(o.data) for o in outs)


# Forward-plan entry kinds (first tuple element), chosen so the replay loop
# is one integer compare away from the right call shape.
_K_FWD, _K_OUT, _K_SCRATCH, _K_EFFECT, _K_INPLACE = 0, 1, 2, 3, 4


class _ProgramRunner:
    """Replays one :class:`GraphProgram` with preallocated buffers.

    The program is flattened further at construction into plain-tuple
    *plans* (no attribute lookups, no isinstance checks in the replay
    loop); all per-replay scratch — gradient buffers, the forward buffer
    arena, op scratch dicts — is allocated here once.  When the program
    carries a memory plan (optimizer on), ``fwd_out``-capable ops write
    into liveness-shared arena buffers or, for planner-approved in-place
    ops, straight over a dying input.
    """

    def __init__(self, program: GraphProgram):
        self.program = program
        self.values: list = [None] * program.n_slots
        # Gradient buffers: one per slot that receives gradients, allocated
        # once from the traced shapes and reused for every replay.
        meta = program.slot_meta
        self.grad_bufs = {slot: np.empty(*meta[slot])
                          for slot in program.grad_slots}
        plan = program.mem_plan
        self.arena = ([np.empty(shape, dtype) for shape, dtype in plan.buffers]
                      if plan is not None else [])

        fwd_plan = []
        for idx, node in enumerate(program.schedule):
            if type(node) is not OpNode:
                fwd_plan.append((_K_EFFECT, node.fn, None,
                                 node.in_slots, -1, None, None))
                continue
            op = node.op
            if plan is not None and idx in plan.inplace:
                fwd_plan.append((_K_INPLACE, op.fwd_out, node.attrs,
                                 node.in_slots, node.out_slot, node,
                                 plan.inplace[idx]))
            elif op.fwd_out is not None:
                if plan is not None and idx in plan.out_buffer:
                    buf = self.arena[plan.out_buffer[idx]]
                else:
                    buf = np.empty(*meta[node.out_slot])
                fwd_plan.append((_K_OUT, op.fwd_out, node.attrs,
                                 node.in_slots, node.out_slot, node, buf))
            elif op.fwd_scratch is not None:
                fwd_plan.append((_K_SCRATCH, op.fwd_scratch, node.attrs,
                                 node.in_slots, node.out_slot, node, {}))
            else:
                fwd_plan.append((_K_FWD, op.fwd, node.attrs,
                                 node.in_slots, node.out_slot, node, None))
        self._fwd_plan = fwd_plan
        # Steps whose op has a scratch-aware backward get a persistent
        # work-buffer dict (conv adjoints, reduction broadcasts).
        self._bwd_plan = [
            (step.node.op.bwd_scratch or step.node.op.bwd,
             step.node.attrs, step.node.in_slots,
             step.node.out_slot, step.node, step.needs, step.acc,
             {} if step.node.op.bwd_scratch is not None else None)
            for step in program.backward_steps]
        self._out_plan = [(slot, int(np.prod(meta[slot][0], dtype=np.int64)) == 1)
                          for slot in program.output_slots]

    # ------------------------------------------------------------------
    def persistent_buffers(self) -> int:
        """Count of long-lived replay buffers (arena, grads, op scratch).

        Re-counted on demand; a steady-state replay must not grow it —
        ``CompiledStep.alloc_stats`` exposes the delta between calls.
        """
        count = len(self.arena) + len(self.grad_bufs)
        for kind, _fn, _attrs, _ins, _out, node, extra in self._fwd_plan:
            if kind == _K_OUT:
                count += 1
            elif kind == _K_SCRATCH:
                op = node.op
                if isinstance(op, FusedOp):
                    for skind, _f, _a, _g, sextra in op._fwd_plan:
                        if skind == FusedOp._F_OUT:
                            count += 1
                        elif skind == FusedOp._F_SCRATCH:
                            count += len(sextra)
                    count += len(op._igbufs) + len(op._xbufs)
                    for entry in op.bwd_plan:
                        if entry[-1] is not None:
                            count += len(entry[-1])
                else:                  # plain op scratch (e.g. conv xp)
                    count += len(extra)
        for *_rest, scratch in self._bwd_plan:
            if scratch is not None:
                count += len(scratch)
        return count

    def run(self, inputs: Tuple[np.ndarray, ...]) -> Tuple:
        program = self.program
        values = self.values
        dtype = program.dtype

        # Bind leaves live (the optimizer mutates parameter storage in
        # place) and the fresh batch arrays.
        for slot, t in program.leaves:
            values[slot] = t.data
        for slot, array in zip(program.input_slots, inputs):
            if array.dtype != dtype:
                array = array.astype(dtype)
            values[slot] = array

        # Forward sweep in recorded program order (effects interleaved).
        for kind, fn, attrs, in_slots, out_slot, node, extra in self._fwd_plan:
            ins = [values[s] for s in in_slots]
            if kind == _K_FWD:
                out, node.ctx = fn(ins, attrs)
                # Mirror the Tensor() dtype coercion of eager dispatch.
                if not isinstance(out, np.ndarray) or out.dtype != dtype:
                    out = np.asarray(out, dtype=dtype)
                values[out_slot] = out
            elif kind == _K_OUT:
                node.ctx = fn(ins, attrs, extra)
                values[out_slot] = extra
            elif kind == _K_SCRATCH:
                out, node.ctx = fn(ins, attrs, extra)
                if not isinstance(out, np.ndarray) or out.dtype != dtype:
                    out = np.asarray(out, dtype=dtype)
                values[out_slot] = out
            elif kind == _K_INPLACE:
                # Planner-approved: the overwritten input is dead and the
                # op's backward is alias-tolerant for it.
                buf = ins[extra]
                node.ctx = fn(ins, attrs, buf)
                values[out_slot] = buf
            else:
                fn(*ins)

        # Backward sweep: precomputed schedule, preallocated buffers.
        grad_bufs = self.grad_bufs
        grad_bufs[program.root_slot].fill(1.0)
        for bwd, attrs, in_slots, out_slot, node, needs, acc, scratch \
                in self._bwd_plan:
            gsrc = grad_bufs[out_slot]
            ins = [values[s] for s in in_slots]
            if scratch is None:
                grads = bwd(gsrc, ins, values[out_slot], node.ctx, attrs, needs)
            else:
                grads = bwd(gsrc, ins, values[out_slot], node.ctx, attrs,
                            needs, scratch)
            for target, g in zip(acc, grads):
                if target is None or g is None:
                    continue
                slot, first, sole = target
                if not first:
                    grad_bufs[slot] += g
                elif (sole and g.base is None and g is not gsrc
                      and g.dtype == grad_bufs[slot].dtype):
                    # Adopt a fresh kernel-owned array as this slot's
                    # gradient: the slot has exactly one contribution, so
                    # nothing accumulates into (or re-reads) the adopted
                    # buffer, and a full copy pass is saved.  Views and the
                    # upstream grad itself are excluded — adopting those
                    # would alias another slot's buffer.
                    grad_bufs[slot] = g
                else:
                    # 0.0 + g: identical to eager's zeros-then-add, without
                    # the zeroing.
                    np.add(g, 0.0, out=grad_bufs[slot])

        for slot, t in program.grad_leaves:
            t.grad = grad_bufs[slot]
        return tuple(float(values[slot]) if scalar
                     else np.array(values[slot], copy=True)
                     for slot, scalar in self._out_plan)


class CompiledStep:
    """Trace a training step once per input shape, then replay it.

    Parameters
    ----------
    step_fn:
        ``step_fn(x, y) -> Tensor | tuple`` building loss (first output)
        from input tensors.  It must construct its graph from module
        parameters, inline constants and the given inputs only; anything
        value-dependent must call
        :func:`repro.autograd.mark_capture_unsafe`, which turns this step
        into a permanent (correct) eager fallback.
    optimize:
        Graph-optimization level applied to each traced program:
        ``"default"`` (fold/DCE/fuse + memory planning — bit-identical,
        faster) or ``"none"`` (replay the trace verbatim).  None defers to
        the ``REPRO_GRAPH_OPT`` environment variable, falling back to
        ``"default"``.
    graph_exec:
        Executor for the optimized program: ``"interp"`` (default — the
        plan-tuple replay loop) or ``"source"`` (lower each program to one
        specialized generated Python function via :mod:`.codegen`: slots
        as locals, kernels bound in the closure, the backward schedule
        unrolled — bit-identical, no per-node dispatch).  None defers to
        ``REPRO_GRAPH_EXEC``.  A program that fails to lower falls back to
        the interpreter (see :attr:`exec_fallbacks`); correctness never
        depends on codegen.

    Calls return the step outputs as floats (scalars) / arrays, with
    parameter ``.grad`` populated — the same contract as
    :class:`EagerStep`.
    """

    def __init__(self, step_fn: Callable, optimize: Optional[str] = None,
                 graph_exec: Optional[str] = None):
        self.step_fn = step_fn
        self.optimize = resolve_graph_opt(optimize)
        self.graph_exec = resolve_graph_exec(graph_exec)
        self._runners: Dict[Tuple, _ProgramRunner] = {}
        self._opt_stats: Dict[Tuple, OptStats] = {}
        self._buffer_mark: Optional[int] = None
        self._eager = EagerStep(step_fn)  # fallback path, built once
        self.fallback_reason: Optional[str] = None
        # Per-program lowering failures (source executor only): key -> why
        # that program replays through the interpreter instead.
        self.exec_fallbacks: Dict[Tuple, str] = {}

    # ------------------------------------------------------------------
    @property
    def compiled_shapes(self) -> Tuple[Tuple, ...]:
        """Input-shape keys with a compiled program (introspection/tests)."""
        return tuple(self._runners)

    @property
    def opt_stats(self) -> Dict[Tuple, Dict[str, int]]:
        """Per-shape pass-pipeline statistics (folded/removed/fused/...)."""
        return {key: stats.as_dict() for key, stats in self._opt_stats.items()}

    @property
    def alloc_stats(self) -> Dict[str, int]:
        """Replay allocation accounting across all compiled shapes.

        ``persistent_buffers`` counts every long-lived buffer (gradient
        buffers, the forward arena, fused/conv scratch);
        ``steady_state_growth`` is the change since the previous
        ``alloc_stats`` read — after a warm-up replay per shape it must be
        zero, which is the "replay allocates nothing" guarantee the perf
        smoke asserts.
        """
        stats = {
            "programs": len(self._runners),
            "arena_buffers": 0,
            "arena_bytes": 0,
            "grad_buffers": 0,
            "inplace_ops": 0,
            "persistent_buffers": 0,
        }
        for key, runner in self._runners.items():
            plan = runner.program.mem_plan
            if plan is not None:
                stats["arena_buffers"] += len(plan.buffers)
                stats["arena_bytes"] += plan.arena_bytes
                stats["inplace_ops"] += len(plan.inplace)
            stats["grad_buffers"] += len(runner.grad_bufs)
            stats["persistent_buffers"] += runner.persistent_buffers()
        previous = self._buffer_mark
        self._buffer_mark = stats["persistent_buffers"]
        stats["steady_state_growth"] = (0 if previous is None
                                        else stats["persistent_buffers"] - previous)
        return stats

    @property
    def executors(self) -> Dict[Tuple, str]:
        """Per-program executor actually in use: ``"interp"`` / ``"source"``.

        With ``graph_exec="source"`` every entry should read ``"source"``;
        an ``"interp"`` entry means that program failed to lower and its
        reason is in :attr:`exec_fallbacks`.
        """
        return {key: runner.exec_mode
                for key, runner in self._runners.items()}

    def dump_source(self) -> Dict[Tuple, str]:
        """Generated source per compiled program (source executor only).

        Keys match :attr:`compiled_shapes`; programs running interpreted
        (including every program when ``graph_exec="interp"``) are absent.
        The text is the exact code the step replays — diffable across runs,
        greppable for dispatch regressions, pasteable into a repro script.
        """
        return {key: runner.source for key, runner in self._runners.items()
                if getattr(runner, "source", None) is not None}

    def diagnostics(self) -> Dict[str, object]:
        """One JSON-able report of what compilation did (CLI ``--verbose``).

        Bundles the knobs in effect, per-program executor selection and
        lowering fallbacks, the pass-pipeline statistics, the allocation
        accounting (note: reading it re-arms the steady-state marker, like
        :attr:`alloc_stats`), and the process-wide codegen cache counters.
        """
        from .codegen import codegen_cache_stats
        return {
            "optimize": self.optimize,
            "graph_exec": self.graph_exec,
            "fallback_reason": self.fallback_reason,
            "executors": {str(key): mode
                          for key, mode in self.executors.items()},
            "exec_fallbacks": {str(key): reason
                               for key, reason in self.exec_fallbacks.items()},
            "opt_stats": {str(key): stats
                          for key, stats in self.opt_stats.items()},
            "alloc_stats": self.alloc_stats,
            "codegen_cache": codegen_cache_stats(),
        }

    def __call__(self, x, y) -> Tuple:
        if self.fallback_reason is not None:
            return self._eager(x, y)
        x = np.asarray(x)
        y = np.asarray(y)
        # Programs are cached per (shapes, dtype): a short final batch
        # re-traces once per shape, and a set_default_dtype() flip re-traces
        # instead of silently replaying at the stale trace dtype.  The conv
        # backend is deliberately *not* in the key — a program keeps its
        # trace-time kernels (locked by the executor parity suite).  Re-trace
        # cost is amortized further by the codegen source cache, which
        # reuses compiled code objects across shapes, dtypes and
        # same-architecture steps (DSE points) within the process.
        runner = self._runners.get((x.shape, y.shape, get_default_dtype()))
        if runner is not None:
            return runner.run((x, y))
        return self._trace(x, y)

    # ------------------------------------------------------------------
    def _trace(self, x: np.ndarray, y: np.ndarray) -> Tuple:
        """Run one step eagerly under capture; freeze it if possible.

        The traced execution is itself a valid step (real loss, real
        gradients), so tracing never wastes a batch — and a failed capture
        simply leaves its eager results as the step's results.  The frozen
        program is optimized before its first replay.
        """
        with capture() as tracer:
            tx, ty = Tensor(x), Tensor(y)
            tracer.add_input(tx)
            tracer.add_input(ty)
            outs = self.step_fn(tx, ty)
            outs = outs if isinstance(outs, tuple) else (outs,)
            outs[0].backward()
        values = tuple(_scalarize(o.data) for o in outs)
        if tracer.failure is not None:
            self.fallback_reason = tracer.failure
            return values
        try:
            program = build_program(tracer, outs[0], outs)
        except GraphCaptureError as exc:
            self.fallback_reason = str(exc)
            return values
        key = (x.shape, y.shape, get_default_dtype())
        self._opt_stats[key] = optimize_program(program, self.optimize)
        self._runners[key] = self._build_runner(program, key)
        return values

    def _build_runner(self, program: GraphProgram, key: Tuple) -> _ProgramRunner:
        """Instantiate the selected executor; lowering failures fall back.

        The interpreter is always correct, so a program the source lowerer
        cannot handle replays interpreted — recorded per key in
        :attr:`exec_fallbacks`, never raised to the training loop.
        """
        if self.graph_exec == "source":
            from .codegen import SourceRunner
            try:
                return SourceRunner(program)
            except Exception as exc:  # lowering must never break training
                self.exec_fallbacks[key] = f"{type(exc).__name__}: {exc}"
        return _ProgramRunner(program)
