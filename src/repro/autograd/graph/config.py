"""One consolidated configuration object for the graph-execution knobs.

Before this module, every trainer / search entry point threaded three (now
four) loose keyword arguments — ``compile_step`` / ``graph_opt`` /
``graph_exec`` / ``loop_capture`` — through eight layers of plumbing.
:class:`CompileConfig` replaces that with a single frozen, picklable value
(safe to ship to DSE pool workers) that still defers any ``None`` field to
the corresponding ``REPRO_*`` environment variable at use time.

The loose kwargs keep working everywhere as a deprecation shim:
:meth:`CompileConfig.resolve` merges them under an explicit ``config``
(config fields win) and warns once per process.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace
from typing import Optional

from .executor import (ENV_COMPILE, EXEC_MODES, compile_step_default,
                       graph_exec_default, resolve_graph_exec)
from .passes import resolve_graph_opt

__all__ = [
    "ENV_LOOP_CAPTURE",
    "CompileConfig",
    "loop_capture_default",
]

ENV_LOOP_CAPTURE = "REPRO_LOOP_CAPTURE"
_TRUTHY = ("1", "true", "yes", "on")


def loop_capture_default() -> bool:
    """Process-wide default for ``loop_capture=None`` knobs.

    The ``REPRO_LOOP_CAPTURE`` environment variable when set (read per
    call so tests can flip it), else False — whole-loop capture is opt-in
    for now, mirroring how ``REPRO_COMPILE_STEP`` was introduced.
    """
    return os.environ.get(ENV_LOOP_CAPTURE, "").strip().lower() in _TRUTHY


_warned_legacy = False


def _warn_legacy_kwargs() -> None:
    global _warned_legacy
    if _warned_legacy:
        return
    _warned_legacy = True
    warnings.warn(
        "the loose compile_step=/graph_opt=/graph_exec=/loop_capture= "
        "keyword arguments are deprecated; pass a single "
        "compile_config=CompileConfig(...) instead",
        DeprecationWarning, stacklevel=4)


@dataclass(frozen=True)
class CompileConfig:
    """The four graph-execution knobs as one immutable, picklable value.

    Every field defaults to None, meaning "defer to the environment at use
    time" (``REPRO_COMPILE_STEP`` / ``REPRO_GRAPH_OPT`` /
    ``REPRO_GRAPH_EXEC`` / ``REPRO_LOOP_CAPTURE``), so a default-constructed
    config is behavior-identical to passing no knobs at all.
    """

    compile_step: Optional[bool] = None
    graph_opt: Optional[str] = None
    graph_exec: Optional[str] = None
    loop_capture: Optional[bool] = None

    @classmethod
    def resolve(cls, config: Optional["CompileConfig"] = None, *,
                compile_step: Optional[bool] = None,
                graph_opt: Optional[str] = None,
                graph_exec: Optional[str] = None,
                loop_capture: Optional[bool] = None) -> "CompileConfig":
        """Merge an explicit config with legacy loose kwargs.

        Config fields win over the loose kwargs; any loose kwarg actually
        supplied triggers a once-per-process :class:`DeprecationWarning`.
        This is the single entry point every trainer / search layer uses to
        normalize its knobs.
        """
        legacy = dict(compile_step=compile_step, graph_opt=graph_opt,
                      graph_exec=graph_exec, loop_capture=loop_capture)
        if any(v is not None for v in legacy.values()):
            _warn_legacy_kwargs()
        if config is None:
            return cls(**legacy)
        if not isinstance(config, CompileConfig):
            raise TypeError(
                f"compile_config must be a CompileConfig, got {config!r}")
        merged = {k: v for k, v in legacy.items()
                  if v is not None and getattr(config, k) is None}
        return replace(config, **merged) if merged else config

    # -- resolved views (environment applied) --------------------------

    def _loop_flag(self) -> bool:
        if self.loop_capture is not None:
            return bool(self.loop_capture)
        return loop_capture_default()

    def want_compile(self) -> bool:
        """Whether step compilation is enabled (env-defaulted).

        Loop capture implies compilation — an epoch loop is built from
        compiled step bodies — so the loop flag turns the compiler on when
        ``compile_step`` was left *unset*.  Anything explicit about
        compilation wins over the loop flag: a ``compile_step=False``
        kwarg, or a ``REPRO_COMPILE_STEP`` variable actually present in
        the environment (so ``REPRO_COMPILE_STEP=0 REPRO_LOOP_CAPTURE=1``
        still means eager).
        """
        if self.compile_step is not None:
            return bool(self.compile_step)
        if os.environ.get(ENV_COMPILE, "").strip():
            return compile_step_default()
        return compile_step_default() or self._loop_flag()

    def want_loop(self) -> bool:
        """Whether whole-loop capture is enabled (env-defaulted).

        False whenever :meth:`want_compile` is False: loops replay
        compiled bodies, so disabling compilation disables the loop too.
        """
        return self._loop_flag() and self.want_compile()

    def resolved_opt(self) -> str:
        """The optimization level, validated against ``OPT_LEVELS``."""
        return resolve_graph_opt(self.graph_opt)

    def resolved_exec(self) -> str:
        """The executor mode, validated against ``EXEC_MODES``."""
        return resolve_graph_exec(self.graph_exec)

    def validate(self) -> "CompileConfig":
        """Eagerly validate the string fields; returns self for chaining."""
        if self.graph_opt is not None:
            resolve_graph_opt(self.graph_opt)
        if self.graph_exec is not None:
            resolve_graph_exec(self.graph_exec)
        return self
