"""The :class:`GraphCapture` tracer.

Capturing is *tracing by execution*: the step function runs eagerly exactly
once while a thread-local tracer, installed at the :func:`apply_op` dispatch
point, records every op into :class:`~repro.autograd.graph.ir.OpNode`
entries.  The traced execution is a fully valid training step (its loss and
gradients are used), so capture costs one eager step, nothing more.

A capture can be *poisoned* — by a legacy closure op (``Tensor._make``), or
by code that declares itself value-dependent via
:func:`repro.autograd.tensor.mark_capture_unsafe` (sampled supernet paths,
data-dependent gathers, rescue branches).  A poisoned capture produces no
program; the executor then permanently falls back to eager execution, which
is always correct.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Tuple

from ..tensor import Tensor, pop_tracer, push_tracer
from .ir import EffectNode, GraphCaptureError, OpNode

__all__ = ["GraphCapture", "GraphCaptureError", "capture"]


class GraphCapture:
    """Records one eager execution into a static op schedule.

    Holds strong references to every tensor it assigns a slot — slot
    identity is ``id()``-based, so recorded tensors must stay alive for the
    whole capture (ids of collected objects get reused).
    """

    def __init__(self):
        self.tensors: List[Tensor] = []      # slot -> tensor (strong refs)
        self.slot_of: Dict[int, int] = {}    # id(tensor) -> slot
        self.records: List = []              # OpNode | EffectNode, program order
        self.input_slots: List[int] = []
        self.failure: Optional[str] = None

    # ------------------------------------------------------------------
    def _slot(self, t: Tensor) -> int:
        slot = self.slot_of.get(id(t))
        if slot is None:
            slot = len(self.tensors)
            self.tensors.append(t)
            self.slot_of[id(t)] = slot
        return slot

    def add_input(self, t: Tensor) -> None:
        """Declare a step input (rebound to fresh batch data per replay)."""
        self.input_slots.append(self._slot(t))

    # -- tracer protocol (called from repro.autograd.tensor) -------------
    def record(self, op, inputs: Tuple[Tensor, ...], out: Tensor, attrs) -> None:
        if self.failure is not None:
            return
        in_slots = tuple(self._slot(t) for t in inputs)
        self.records.append(OpNode(op, in_slots, self._slot(out), attrs))

    def record_effect(self, inputs: Tuple[Tensor, ...], fn) -> None:
        if self.failure is not None:
            return
        self.records.append(EffectNode(fn, tuple(self._slot(t) for t in inputs)))

    def poison(self, reason: str) -> None:
        """Mark the capture unusable (first reason wins)."""
        if self.failure is None:
            self.failure = reason


@contextlib.contextmanager
def capture():
    """Install a fresh :class:`GraphCapture` for the calling thread.

    The traced code runs eagerly as usual; on exit the tracer is removed
    whether or not the capture succeeded.
    """
    tracer = GraphCapture()
    push_tracer(tracer)
    try:
        yield tracer
    finally:
        pop_tracer()
