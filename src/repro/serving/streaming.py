"""Streaming execution of exported causal TCNs: O(K) MACs per tick.

The training/evaluation path of this repo runs a whole window through the
network for every prediction — a ``CausalConv1d`` left-pads ``(K-1)*d``
zeros and convolves the full receptive field again even though only one
new sample arrived.  :class:`StreamingExecutor` converts a fixed-dilation
network (anything :func:`repro.core.export.deployable_network` accepts)
into *per-layer ring-buffer state*:

* every convolution keeps its last ``(K-1)*d + 1`` input samples in a
  circular buffer; one new sample gathers the ``K`` dilated taps and runs
  a single ``(C_out, C_in*K)`` contraction
  (:meth:`repro.autograd.backends.base.ConvBackend.forward_step`);
* pools keep their last ``k`` frames and emit on the valid-window
  schedule (``count >= k``, every ``stride`` thereafter);
* ``Flatten``/``GlobalAvgPool1d`` keep a sliding window of the temporal
  extent they saw in the full-window network (measured by a one-shot
  shape probe);
* ``BatchNorm1d``, activations, ``Dropout`` (eval) and calibrated
  ``FakeQuant`` nodes are stateless per time step and are reused as-is;
* ``Linear`` heads are applied per emitted frame.

Because a zero-initialized ring is indistinguishable from the causal zero
padding of the full forward, a *fresh* stream's outputs are exactly the
full-window forward of the samples seen so far.  Numerically the match is
last-ulp rather than bitwise: the per-tick kernel issues a different GEMM
shape than the full-window kernel, so BLAS may sum the same products in a
different order (observed ~1e-14 in float64, often exactly 0).
``tests/test_serving_streaming.py`` pins the tolerance per dtype.

All streaming modules map ``(N, C, T)`` input chunks to ``(N, C', T')``
output chunks with ``T' <= T`` (possibly 0 while downstream layers
accumulate), so container modules with custom ``forward`` code — residual
blocks, ``Sequential`` — run unchanged on the converted children.  The
batch axis ``N`` is the multi-tenant axis: :mod:`repro.serving.server`
parks one client per row and advances all of them with one batched kernel
call per tick.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from ..autograd import Tensor, get_backend, get_default_dtype, no_grad
from ..core.channel_mask import PITChannelConv1d
from ..core.export import deployable_network
from ..core.pit_conv import PITConv1d
from ..hw.quantization import FakeQuant
from ..nn.layers import (
    AvgPool1d,
    BatchNorm1d,
    CausalConv1d,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    Identity,
    Linear,
    MaxPool1d,
    ReLU,
    Sigmoid,
    Tanh,
)
from ..nn.module import Module

__all__ = [
    "StreamingUnsupported",
    "StreamingExecutor",
    "register_streaming",
    "stream_module",
]


class StreamingUnsupported(RuntimeError):
    """Raised when a module has no streaming conversion rule."""


class StreamContext:
    """Bookkeeping threaded through one conversion pass.

    Accumulates the composed receptive field / total stride with the same
    jump recursion as :func:`repro.core.export.network_receptive_field`
    (window layers included, since the probe gives their extents), and
    carries the batch width, the resolved conv backend and the probed
    per-module shapes.
    """

    def __init__(self, batch: int, backend: Optional[str],
                 shapes: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]]):
        self.batch = batch
        self.backend = backend
        self.shapes = shapes
        self.rf = 1
        self.jump = 1

    def add_layer(self, span: int, stride: int) -> None:
        self.rf += (span - 1) * self.jump
        self.jump *= stride

    def _probed_in_shape(self, module: Module) -> Tuple[int, ...]:
        shapes = self.shapes.get(id(module))
        if shapes is None:
            raise StreamingUnsupported(
                f"{type(module).__name__} was never reached by the shape "
                "probe; cannot size its streaming window")
        in_shape = shapes[0]
        if len(in_shape) != 3:
            raise StreamingUnsupported(
                f"{type(module).__name__} consumed a {len(in_shape)}-D "
                "tensor in the full-window network; streaming needs a "
                "(N, C, T) input to window over")
        return in_shape

    def probed_extent(self, module: Module) -> int:
        """Temporal extent of ``module``'s input in the full-window run."""
        return self._probed_in_shape(module)[2]

    def probed_channels(self, module: Module) -> int:
        """Channel count of ``module``'s input in the full-window run."""
        return self._probed_in_shape(module)[1]


# ----------------------------------------------------------------------
# Conversion registry
# ----------------------------------------------------------------------

_STREAM_FACTORIES: Dict[Type[Module],
                        Callable[[Module, StreamContext], Module]] = {}


def register_streaming(*types: Type[Module]):
    """Register a streaming conversion factory for exact module types.

    Mirrors ``repro.nn.stacked.register_stacked``: the factory receives
    ``(module, ctx)`` and returns the streaming replacement.  Matching is
    exact (no subclass dispatch) so a subclass with different semantics
    fails loudly instead of inheriting the wrong conversion.
    """
    def decorator(factory):
        for t in types:
            _STREAM_FACTORIES[t] = factory
        return factory
    return decorator


def stream_module(module: Module, ctx: StreamContext) -> Module:
    """Convert one module (recursively) into its streaming form."""
    factory = _STREAM_FACTORIES.get(type(module))
    if factory is not None:
        return factory(module, ctx)
    if module._parameters or module._buffers:
        raise StreamingUnsupported(
            f"{type(module).__name__} owns parameters/buffers but has no "
            "registered streaming conversion (register_streaming)")
    # Container with only child modules: shallow-clone it, keep its
    # forward() logic, convert the children in declaration order — the
    # same generic-clone idiom as repro.nn.stacked.stack_module.
    clone = copy.copy(module)
    object.__setattr__(clone, "_parameters", OrderedDict())
    object.__setattr__(clone, "_buffers", OrderedDict())
    object.__setattr__(clone, "_modules", OrderedDict())
    for name, child in module._modules.items():
        setattr(clone, name, stream_module(child, ctx))
    return clone


# ----------------------------------------------------------------------
# Streaming layers
# ----------------------------------------------------------------------

def _ring_indices(length: int, taps: int, dilation: int) -> np.ndarray:
    """``(length, taps)`` gather table: row ``p`` holds the ring positions
    of the ``taps`` dilated samples ending at write position ``p``."""
    pos = np.arange(length)[:, None]
    lag = (taps - 1 - np.arange(taps))[None, :] * dilation
    return (pos - lag) % length


class _RingState:
    """A circular ``(N, C, L)`` buffer shared by the windowed layers."""

    def __init__(self, batch: int, channels: int, length: int, taps: int,
                 dilation: int = 1):
        self.length = length
        self.ring = np.zeros((batch, channels, length),
                             dtype=get_default_dtype())
        self.indices = _ring_indices(length, taps, dilation)
        self.pos = 0
        self.count = 0

    def push(self, frame: np.ndarray) -> np.ndarray:
        """Write one ``(N, C)`` frame; return the ``(N, C, taps)`` window
        ending at it (oldest tap first)."""
        self.ring[:, :, self.pos] = frame
        self.count += 1
        window = self.ring[:, :, self.indices[self.pos]]
        self.pos = (self.pos + 1) % self.length
        return window

    def reset(self) -> None:
        self.ring[...] = 0
        self.pos = 0
        self.count = 0

    def reset_slots(self, rows) -> None:
        self.ring[rows] = 0

    @property
    def nbytes(self) -> int:
        return self.ring.nbytes


class StreamingConv1d(Module):
    """Ring-buffered :class:`CausalConv1d`: one O(K·C_in·C_out) kernel
    call per input sample (per emitted sample when ``stride > 1``)."""

    def __init__(self, conv: CausalConv1d, ctx: StreamContext):
        super().__init__()
        self.conv = conv  # owns weight/bias; registered as a child
        self.stride = conv.stride
        self.out_channels = conv.out_channels
        self._kernels = get_backend(conv.backend or ctx.backend)
        self.state = _RingState(ctx.batch, conv.in_channels,
                                conv.receptive_field, conv.kernel_size,
                                conv.dilation)

    def forward(self, x: Tensor) -> Tensor:
        frames = x.data
        n, _, t = frames.shape
        outs: List[np.ndarray] = []
        w = self.conv.weight.data
        b = self.conv.bias.data if self.conv.bias is not None else None
        for i in range(t):
            window = self.state.push(frames[:, :, i])
            if (self.state.count - 1) % self.stride == 0:
                y = self._kernels.forward_step(window, w)
                if b is not None:
                    y += b[None, :, None]
                outs.append(y)
        if not outs:
            return Tensor(np.zeros((n, self.out_channels, 0)))
        return Tensor(np.concatenate(outs, axis=2))

    def __repr__(self) -> str:
        return f"StreamingConv1d({self.conv!r})"


class StreamingLinear(Module):
    """A :class:`Linear` head applied to each frame of a chunk."""

    def __init__(self, linear: Linear):
        super().__init__()
        self.linear = linear

    def forward(self, x: Tensor) -> Tensor:
        frames = x.data
        n, _, t = frames.shape
        if t == 0:
            return Tensor(np.zeros((n, self.linear.out_features, 0)))
        outs = [self.linear(Tensor(frames[:, :, i])).data[:, :, None]
                for i in range(t)]
        return Tensor(np.concatenate(outs, axis=2))

    def __repr__(self) -> str:
        return f"StreamingLinear({self.linear!r})"


class _StatelessStreaming(Module):
    """Reuses a per-timestep module (activation, eval BatchNorm,
    calibrated FakeQuant, eval Dropout) on streaming chunks unchanged —
    the module's own ops run column-wise, so values match the full-window
    forward bit for bit."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return self.inner(x)

    def __repr__(self) -> str:
        return f"Streaming({self.inner!r})"


class _WindowedStreaming(Module):
    """Base for layers that emit a function of their last ``k`` frames on
    the valid-window schedule: first output at ``count == k``, then every
    ``stride`` frames."""

    def __init__(self, ctx: StreamContext, channels: int, window: int,
                 stride: int):
        super().__init__()
        self.window = window
        self.stride = stride
        self.state = _RingState(ctx.batch, channels, window, window)

    def _emit(self, window: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _out_channels(self, in_channels: int) -> int:
        return in_channels

    def forward(self, x: Tensor) -> Tensor:
        frames = x.data
        n, c, t = frames.shape
        outs: List[np.ndarray] = []
        for i in range(t):
            win = self.state.push(frames[:, :, i])
            if (self.state.count >= self.window
                    and (self.state.count - self.window) % self.stride == 0):
                outs.append(self._emit(win)[:, :, None])
        if not outs:
            return Tensor(np.zeros((n, self._out_channels(c), 0)))
        return Tensor(np.concatenate(outs, axis=2))


class StreamingAvgPool1d(_WindowedStreaming):
    """Valid-window average pool, replicating the sequential per-offset
    accumulation of the full-window op (float64 accumulator, then /= k)."""

    def _emit(self, window: np.ndarray) -> np.ndarray:
        acc = np.zeros(window.shape[:2])
        for offset in range(self.window):
            acc += window[:, :, offset]
        acc /= self.window
        return acc


class StreamingMaxPool1d(_WindowedStreaming):
    def _emit(self, window: np.ndarray) -> np.ndarray:
        return window.max(axis=2)


class StreamingFlatten(_WindowedStreaming):
    """Sliding ``Flatten``: emits the channel-major flattening of the last
    ``F`` frames, where ``F`` is the temporal extent the probe saw at this
    point of the full-window network."""

    def _emit(self, window: np.ndarray) -> np.ndarray:
        return window.reshape(window.shape[0], -1)

    def _out_channels(self, in_channels: int) -> int:
        return in_channels * self.window


class StreamingGlobalAvgPool1d(_WindowedStreaming):
    """Sliding mean over the probed full-window extent."""

    def _emit(self, window: np.ndarray) -> np.ndarray:
        return window.mean(axis=2)


# ----------------------------------------------------------------------
# Registered conversions
# ----------------------------------------------------------------------

@register_streaming(CausalConv1d)
def _stream_conv(conv: CausalConv1d, ctx: StreamContext) -> Module:
    layer = StreamingConv1d(conv, ctx)
    ctx.add_layer(conv.receptive_field, conv.stride)
    return layer


@register_streaming(Linear)
def _stream_linear(linear: Linear, ctx: StreamContext) -> Module:
    return StreamingLinear(linear)


@register_streaming(ReLU, Sigmoid, Tanh, Identity, Dropout, BatchNorm1d)
def _stream_stateless(module: Module, ctx: StreamContext) -> Module:
    return _StatelessStreaming(module)


@register_streaming(FakeQuant)
def _stream_fakequant(module: FakeQuant, ctx: StreamContext) -> Module:
    if module.calibrating:
        raise StreamingUnsupported(
            "FakeQuant is still calibrating; finish quantize_network "
            "before streaming (a calibrating node would mutate its range "
            "on live traffic and pass floats through)")
    return _StatelessStreaming(module)


@register_streaming(AvgPool1d)
def _stream_avg_pool(pool: AvgPool1d, ctx: StreamContext) -> Module:
    layer = StreamingAvgPool1d(ctx, channels=ctx.probed_channels(pool),
                               window=pool.kernel_size, stride=pool.stride)
    ctx.add_layer(pool.kernel_size, pool.stride)
    return layer


@register_streaming(MaxPool1d)
def _stream_max_pool(pool: MaxPool1d, ctx: StreamContext) -> Module:
    layer = StreamingMaxPool1d(ctx, channels=ctx.probed_channels(pool),
                               window=pool.kernel_size, stride=pool.stride)
    ctx.add_layer(pool.kernel_size, pool.stride)
    return layer


@register_streaming(Flatten)
def _stream_flatten(module: Flatten, ctx: StreamContext) -> Module:
    extent = ctx.probed_extent(module)
    layer = StreamingFlatten(ctx, channels=ctx.probed_channels(module),
                             window=extent, stride=1)
    ctx.add_layer(extent, 1)
    return layer


@register_streaming(GlobalAvgPool1d)
def _stream_gap(module: GlobalAvgPool1d, ctx: StreamContext) -> Module:
    extent = ctx.probed_extent(module)
    layer = StreamingGlobalAvgPool1d(
        ctx, channels=ctx.probed_channels(module),
        window=extent, stride=1)
    ctx.add_layer(extent, 1)
    return layer


@register_streaming(PITConv1d, PITChannelConv1d)
def _stream_pit(module: Module, ctx: StreamContext) -> Module:
    raise StreamingUnsupported(
        f"{type(module).__name__} is a searchable supernet layer; export "
        "the network first (StreamingExecutor does this via "
        "deployable_network, so reaching this means the export missed it)")


def _stream_temponet(model, ctx: StreamContext) -> Module:
    # TEMPONet.forward asserts the full window length; stream its two
    # sequential stages directly instead.
    from ..nn.layers import Sequential
    return Sequential(stream_module(model.features, ctx),
                      stream_module(model.head, ctx))


def _register_model_factories() -> None:
    from ..models.temponet import TEMPONet
    _STREAM_FACTORIES.setdefault(TEMPONet, _stream_temponet)


# ----------------------------------------------------------------------
# Shape probe
# ----------------------------------------------------------------------

def _probe_shapes(net: Module, x_shape: Tuple[int, ...]
                  ) -> Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Run one full-window forward recording every module's (in, out)
    shapes, via a temporarily instrumented ``Module.__call__``."""
    shapes: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    original = Module.__call__

    def recording(self, *args, **kwargs):
        out = original(self, *args, **kwargs)
        if (len(args) == 1 and not kwargs and isinstance(args[0], Tensor)
                and isinstance(out, Tensor)):
            shapes[id(self)] = (args[0].shape, out.shape)
        return out

    Module.__call__ = recording
    try:
        with no_grad():
            net(Tensor(np.zeros(x_shape)))
    finally:
        Module.__call__ = original
    return shapes


def _input_channels(net: Module) -> int:
    for module in net.modules():
        if isinstance(module, CausalConv1d):
            return module.in_channels
        if isinstance(module, Linear):
            return module.in_features
    raise StreamingUnsupported("no conv/linear layer found to infer the "
                               "input channel count from")


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

class StreamingExecutor:
    """Per-tick inference over a fixed-dilation network.

    Parameters
    ----------
    model:
        A fixed network, or a searched supernet (exported automatically
        via :func:`repro.core.export.deployable_network`).  The executor
        deep-copies it, so later mutation of ``model`` does not affect
        the stream (and vice versa), and forces eval mode.
    batch:
        Number of independent streams advanced in lockstep — the
        multi-tenant axis of :class:`repro.serving.StreamingPool`.
    backend:
        Conv-backend name for the per-tick kernels (default: each layer's
        own setting, else the process default).
    input_length:
        Temporal extent for the one-shot shape probe that sizes
        ``Flatten``/``GlobalAvgPool1d`` windows.  Defaults to
        ``model.input_length`` when present, else the composed receptive
        field.

    Attributes
    ----------
    warmup_ticks:
        Ticks from reset until the first output frame of a fresh stream
        (measured by a dry run at build time).  Outputs of a mid-stream
        attached slot are fresh-stream-equal only from this age on.
    period:
        Ticks between consecutive output frames once warmed up (the
        product of all temporal strides).
    receptive_field:
        Composed input span of one output frame, window layers included —
        outputs additionally stop depending on the zero initial state
        after this many ticks.
    """

    def __init__(self, model: Module, batch: int = 1,
                 backend: Optional[str] = None,
                 input_length: Optional[int] = None):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        _register_model_factories()
        net = copy.deepcopy(deployable_network(model))
        net.eval()
        self.batch = batch
        self.channels = _input_channels(net)
        self.input_length = input_length or getattr(model, "input_length",
                                                    None)
        from ..core.export import network_receptive_field
        probe_len = self.input_length or max(network_receptive_field(net), 1)
        shapes = _probe_shapes(net, (1, self.channels, probe_len))
        ctx = StreamContext(batch=batch, backend=backend, shapes=shapes)
        self.net = stream_module(net, ctx)
        self.net.eval()
        self.receptive_field = ctx.rf
        self.total_stride = ctx.jump
        self._states = [m.state for m in self.net.modules()
                        if isinstance(m, (StreamingConv1d,
                                          _WindowedStreaming))]
        self.out_channels, self.warmup_ticks, self.period = self._dry_run()

    def _dry_run(self) -> Tuple[int, int, int]:
        """Measure first-emission tick, period and output width by
        streaming zeros from reset; leaves the executor reset."""
        cap = 4 * max(self.receptive_field,
                      self.input_length or 1) + 64
        zeros = np.zeros((self.batch, self.channels, 1))
        first = second = None
        out_channels = 0
        for tick in range(1, cap + 1):
            out = self.push(zeros)
            if out.shape[2]:
                out_channels = out.shape[1]
                if first is None:
                    first = tick
                else:
                    second = tick
                    break
        self.reset()
        if first is None:
            raise StreamingUnsupported(
                f"network emitted no output within {cap} ticks; it does "
                "not look like a causal streaming network")
        return out_channels, first, (second - first) if second else \
            self.total_stride

    def push(self, frames) -> np.ndarray:
        """Advance every stream by the ``(batch, channels, T)`` chunk;
        returns the ``(batch, out_channels, T_out)`` frames emitted
        (``T_out`` may be 0 while downstream windows fill)."""
        frames = np.asarray(frames)
        if frames.ndim != 3 or frames.shape[0] != self.batch \
                or frames.shape[1] != self.channels:
            raise ValueError(
                f"expected ({self.batch}, {self.channels}, T) frames, got "
                f"{frames.shape}")
        with no_grad():
            return self.net(Tensor(frames)).data

    @property
    def ticks(self) -> int:
        """Input samples consumed since the last full reset."""
        return self._states[0].count if self._states else 0

    def reset(self) -> None:
        """Zero all ring state: every stream starts fresh."""
        for state in self._states:
            state.reset()

    def reset_slots(self, rows) -> None:
        """Zero the ring rows of selected streams only.

        The shared phase counters keep running, so a reset row behaves
        exactly like a fresh stream only when this is called at a tick
        that is a multiple of ``total_stride`` — the alignment
        :class:`repro.serving.StreamingPool` enforces on attach.
        """
        for state in self._states:
            state.reset_slots(rows)

    def state_bytes(self) -> int:
        """Total ring-buffer footprint (all streams)."""
        return sum(state.nbytes for state in self._states)

    def __repr__(self) -> str:
        return (f"StreamingExecutor(batch={self.batch}, "
                f"channels={self.channels}->{self.out_channels}, "
                f"warmup={self.warmup_ticks}, period={self.period}, "
                f"state={self.state_bytes()}B)")
