"""Streaming inference serving (ROADMAP item 4).

* :mod:`repro.serving.streaming` — ring-buffer streaming executor:
  O(K) MACs per new sample instead of re-running the receptive field;
* :mod:`repro.serving.pool` — multi-tenant slot pool advancing many
  client streams with one batched kernel call per tick;
* :mod:`repro.serving.server` — asyncio TCP server (newline-JSON
  protocol, per-client attach/detach, warm-up flags, backpressure);
* :mod:`repro.serving.client` — matching test/smoke client.
"""

from .client import stream_samples
from .pool import SlotOutput, StreamingPool
from .server import StreamServer, serve
from .streaming import (
    StreamingExecutor,
    StreamingUnsupported,
    register_streaming,
    stream_module,
)

__all__ = [
    "SlotOutput",
    "StreamServer",
    "StreamingExecutor",
    "StreamingPool",
    "StreamingUnsupported",
    "register_streaming",
    "serve",
    "stream_module",
    "stream_samples",
]
