"""Multi-tenant slot management over one batched streaming executor.

A :class:`StreamingPool` owns a :class:`repro.serving.StreamingExecutor`
built with ``batch == capacity`` and parks one client stream per batch
row.  Every :meth:`tick` advances *all* attached clients with a single
batched kernel call per layer — the amortization that makes one core
serve many low-rate sensor streams (the paper's 32 Hz PPG use case).

Attach/detach semantics
-----------------------

The executor's phase counters (conv-stride phases, pool-window fills) are
shared across the batch, so a row zeroed mid-stream behaves exactly like
a fresh stream only when its first sample lands on a tick that is a
multiple of ``total_stride``.  :meth:`attach` therefore reserves a slot
immediately but *activates* it (zeroes the row, starts consuming samples)
only at the next aligned tick; until then the slot is ``pending``.

Each output carries a ``warm`` flag: ``True`` once the slot has seen at
least ``warmup_ticks`` of its own samples, i.e. from the tick where a
fresh stream would have produced its first output.  Pre-warm frames of a
mid-stream attach are window-straddling mixtures of the zeroed history
and real samples — delivered (some applications want early estimates) but
flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..nn.module import Module
from .streaming import StreamingExecutor

__all__ = ["StreamingPool", "SlotOutput"]


@dataclass
class SlotOutput:
    """One emitted frame of one client."""
    slot: int
    frame: np.ndarray  # (out_channels,)
    tick: int          # global tick the frame was emitted at
    warm: bool


class StreamingPool:
    """Fixed-capacity multi-tenant wrapper around a batched executor."""

    def __init__(self, model: Module, capacity: int = 8,
                 backend: Optional[str] = None,
                 input_length: Optional[int] = None):
        self.executor = StreamingExecutor(model, batch=capacity,
                                          backend=backend,
                                          input_length=input_length)
        self.capacity = capacity
        self.ticks = 0
        self._free: List[int] = list(range(capacity))
        self._active: Dict[int, int] = {}   # slot -> age (own ticks seen)
        self._pending: List[int] = []

    # -- session management ---------------------------------------------

    @property
    def aligned(self) -> bool:
        """True when a stream starting this tick is phase-aligned."""
        return self.ticks % self.executor.total_stride == 0

    @property
    def active_slots(self) -> List[int]:
        return sorted(self._active)

    @property
    def pending_slots(self) -> List[int]:
        return list(self._pending)

    @property
    def free_slots(self) -> int:
        return len(self._free)

    @property
    def warmup_ticks(self) -> int:
        return self.executor.warmup_ticks

    @property
    def period(self) -> int:
        return self.executor.period

    def attach(self) -> int:
        """Reserve a slot for a new client.

        The slot activates at the next phase-aligned tick on which its
        first sample is supplied; until then it is pending and consumes
        nothing.
        """
        if not self._free:
            raise RuntimeError(
                f"pool is full ({self.capacity} slots); detach a client "
                "first or raise the capacity")
        slot = self._free.pop(0)
        self._pending.append(slot)
        return slot

    def detach(self, slot: int) -> None:
        """Release a slot (active or pending).  Its ring rows keep stale
        data until the next attach zeroes them."""
        if slot in self._active:
            del self._active[slot]
        elif slot in self._pending:
            self._pending.remove(slot)
        else:
            raise KeyError(f"slot {slot} is not attached")
        self._free.append(slot)
        self._free.sort()

    # -- the tick --------------------------------------------------------

    def tick(self, samples: Mapping[int, np.ndarray]) -> List[SlotOutput]:
        """Advance every stream by one sample.

        ``samples`` must hold one ``(channels,)`` sample for **every**
        active slot — the pool is barrier-synchronous, and enforcing the
        barrier here (instead of silently feeding zeros) is what lets the
        server apply backpressure per client.  A sample for a *pending*
        slot is consumed only if the tick is aligned (the slot activates
        and this is its first sample); supplying it on an unaligned tick
        is an error, since the pool cannot accept it yet.
        """
        active = set(self._active)
        supplied = set(samples)
        if self.aligned:
            # Pending slots whose first sample arrived activate now.
            for slot in list(self._pending):
                if slot in supplied:
                    self._pending.remove(slot)
                    self.executor.reset_slots([slot])
                    self._active[slot] = 0
                    active.add(slot)
        missing = active - supplied
        extra = supplied - active
        if missing:
            raise ValueError(f"missing samples for active slots "
                             f"{sorted(missing)} (barrier tick)")
        if extra:
            raise ValueError(f"samples supplied for slots {sorted(extra)} "
                             "which are not active this tick")

        batch = np.zeros((self.capacity, self.executor.channels, 1))
        for slot in active:
            batch[slot, :, 0] = np.asarray(samples[slot], dtype=np.float64)
        out = self.executor.push(batch)
        self.ticks += 1
        for slot in active:
            self._active[slot] += 1

        outputs: List[SlotOutput] = []
        if out.shape[2]:
            for slot in sorted(active):
                age = self._active[slot]
                outputs.append(SlotOutput(
                    slot=slot, frame=out[slot, :, -1].copy(),
                    tick=self.ticks,
                    warm=age >= self.executor.warmup_ticks))
        return outputs

    def __repr__(self) -> str:
        return (f"StreamingPool(capacity={self.capacity}, "
                f"active={len(self._active)}, pending={len(self._pending)}, "
                f"ticks={self.ticks})")
