"""Multi-tenant streaming inference server (stdlib asyncio, TCP + JSON).

One :class:`StreamServer` owns a :class:`repro.serving.StreamingPool` and
advances it with a barrier-synchronous tick loop: a tick runs only when
every *active* client has a sample queued, so all attached streams move
in lockstep and each tick is one batched kernel call per layer.

Protocol (newline-delimited JSON over TCP):

* on connect the server sends a hello::

      {"type": "hello", "slot": 3, "channels": 4,
       "warmup_ticks": 256, "period": 16, "pending": true}

* the client sends samples — either one ``(channels,)`` list per line, a
  ``(T, channels)`` list of lists, or ``{"type": "samples", "data": ...}``
  with the same payloads;
* the server answers with one line per emitted frame::

      {"type": "frame", "tick": 272, "warm": false, "data": [...]}

* ``{"type": "detach"}`` (or EOF) ends the session; queued samples are
  flushed through the pool first, then the connection closes.

Backpressure: each session buffers at most ``queue_size`` samples.  A
client that produces faster than the slowest co-tenant consumes fills its
queue, the server stops reading its socket, and TCP flow control pushes
back to the producer — no unbounded buffering anywhere.

Robustness: the barrier makes co-tenants each other's problem — one stuck
client stalls every aligned stream — so the server defends the barrier.
``client_timeout`` disconnects (with an error line) any client whose
socket stays silent longer than the budget, freeing its pool slot for the
waiting queue; oversized input lines (beyond ``max_line`` bytes) draw an
error instead of silently killing the reader task; and a client that dies
mid-tick is flushed and detached like a clean EOF, so the survivors'
barrier advances on the next sample.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

import numpy as np

from ..nn.module import Module
from ..testing import faults
from .pool import StreamingPool

__all__ = ["StreamServer", "serve"]


class _Session:
    def __init__(self, slot: int, queue_size: int,
                 writer: asyncio.StreamWriter):
        self.slot = slot
        self.queue: asyncio.Queue = asyncio.Queue(queue_size)
        self.writer = writer
        self.closing = False
        self.done = asyncio.Event()


def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write((json.dumps(payload) + "\n").encode())


class StreamServer:
    """Serve a model to many concurrent streaming clients.

    Parameters
    ----------
    model:
        Fixed-dilation (or searched; exported automatically) network.
    capacity:
        Batch rows = maximum concurrent clients; further connections are
        refused with an error line.
    queue_size:
        Per-client sample buffer (the backpressure bound).
    max_sessions:
        When set, the server stops once this many sessions have fully
        detached and no client remains — a deterministic exit for tests
        and batch jobs.
    client_timeout:
        Idle budget in seconds: a client whose socket produces nothing for
        this long is sent an error line and disconnected, freeing its pool
        slot (an idle *active* client otherwise stalls the barrier for
        every co-tenant).  None (default) waits forever.
    max_line:
        Maximum input line length in bytes (the asyncio stream limit).  An
        oversized line draws an error line and a disconnect instead of the
        default behaviour (``LimitOverrunError`` silently killing the
        reader task while the connection lingers).
    """

    def __init__(self, model: Module, capacity: int = 8,
                 backend: Optional[str] = None,
                 input_length: Optional[int] = None,
                 queue_size: int = 64,
                 max_sessions: Optional[int] = None,
                 client_timeout: Optional[float] = None,
                 max_line: int = 1 << 16):
        if client_timeout is not None and client_timeout <= 0:
            raise ValueError("client_timeout must be positive (or None)")
        self.pool = StreamingPool(model, capacity=capacity, backend=backend,
                                  input_length=input_length)
        self.queue_size = queue_size
        self.max_sessions = max_sessions
        self.client_timeout = client_timeout
        self.max_line = max_line
        self._sessions: Dict[int, _Session] = {}
        self._served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._ticker: Optional[asyncio.Task] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, host, port,
                                                  limit=self.max_line)
        self._ticker = asyncio.ensure_future(self._tick_loop())
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def wait_closed(self) -> None:
        """Block until the server stops (only happens with max_sessions)."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def close(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stopped is not None:
            self._stopped.set()

    # -- per-connection reader -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            slot = self.pool.attach()
        except RuntimeError as exc:
            _send(writer, {"type": "error", "error": str(exc)})
            await writer.drain()
            writer.close()
            return
        session = _Session(slot, self.queue_size, writer)
        self._sessions[slot] = session
        executor = self.pool.executor
        _send(writer, {"type": "hello", "slot": slot,
                       "channels": executor.channels,
                       "out_channels": executor.out_channels,
                       "warmup_ticks": executor.warmup_ticks,
                       "period": executor.period,
                       "receptive_field": executor.receptive_field,
                       "pending": not self.pool.aligned})
        await writer.drain()
        try:
            while True:
                try:
                    if self.client_timeout is not None:
                        line = await asyncio.wait_for(reader.readline(),
                                                      self.client_timeout)
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    _send(writer, {"type": "error",
                                   "error": f"idle timeout: no input for "
                                            f"{self.client_timeout:g}s"})
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # readline() wraps LimitOverrunError in ValueError; an
                    # unhandled one would kill this reader task silently
                    # while the connection lingered un-detached.
                    _send(writer, {"type": "error",
                                   "error": f"input line exceeds "
                                            f"{self.max_line} bytes"})
                    break
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except json.JSONDecodeError:
                    _send(writer, {"type": "error",
                                   "error": "malformed JSON line"})
                    break
                if isinstance(msg, dict):
                    if msg.get("type") == "detach":
                        break
                    data = msg.get("data")
                else:
                    data = msg
                frames = np.atleast_2d(np.asarray(data, dtype=np.float64))
                if frames.shape[1] != executor.channels:
                    _send(writer, {"type": "error",
                                   "error": f"expected {executor.channels} "
                                            f"channels, got {frames.shape[1]}"})
                    break
                for frame in frames:
                    await session.queue.put(frame)  # backpressure bound
                    self._kick()
        except ConnectionError:
            pass
        finally:
            session.closing = True
            self._kick()
            await session.done.wait()  # tick loop flushed + detached us
            try:
                await writer.drain()
                writer.close()
            except ConnectionError:
                pass

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # -- the barrier-synchronous tick loop --------------------------------

    def _collect(self):
        """Decide whether a tick can run; returns the samples to feed or
        None to wait.  Never consumes a sample it cannot feed."""
        pool = self.pool
        active = set(pool.active_slots)
        samples = {}
        for slot in active:
            session = self._sessions.get(slot)
            if session is None or session.queue.empty():
                return None  # barrier: an active client has nothing queued
            samples[slot] = session.queue.get_nowait()
        # Pending clients join at aligned ticks; their queued first sample
        # is consumed only then (the pool refuses it otherwise).
        progress = bool(samples)
        if pool.aligned:
            for slot in pool.pending_slots:
                session = self._sessions.get(slot)
                if session is not None and not session.queue.empty():
                    samples[slot] = session.queue.get_nowait()
                    progress = True
        elif not progress:
            # No active consumption this tick: advancing with zeros is
            # useful only to rotate phase toward alignment for a pending
            # client that already has data waiting.
            progress = any(
                self._sessions[slot].queue.qsize() > 0
                for slot in pool.pending_slots if slot in self._sessions)
        return samples if progress else None

    async def _tick_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                # Flush-and-detach sessions whose socket ended and whose
                # queue has drained.
                for session in list(self._sessions.values()):
                    if session.closing and session.queue.empty():
                        self.pool.detach(session.slot)
                        del self._sessions[session.slot]
                        self._served += 1
                        session.done.set()
                if (self.max_sessions is not None
                        and self._served >= self.max_sessions
                        and not self._sessions):
                    asyncio.ensure_future(self._shutdown())
                    return
                if not self._sessions:
                    break
                samples = self._collect()
                if samples is None:
                    break
                outputs = self.pool.tick(samples)
                fault = faults.fire("conn_drop", tick=self.pool.ticks)
                if fault is not None and self._sessions:
                    # Injected mid-tick connection loss: abort the chosen
                    # client's transport so its reader sees a reset — the
                    # exact failure mode of a client dying between ticks.
                    slot = fault.param("slot")
                    if slot not in self._sessions:
                        slot = min(self._sessions)
                    self._sessions[slot].writer.transport.abort()
                touched = set()
                for out in outputs:
                    session = self._sessions.get(out.slot)
                    if session is None:
                        continue
                    _send(session.writer,
                          {"type": "frame", "tick": out.tick,
                           "warm": out.warm, "data": out.frame.tolist()})
                    touched.add(out.slot)
                for slot in touched:
                    try:
                        await self._sessions[slot].writer.drain()
                    except (ConnectionError, KeyError):
                        pass
                # Yield so readers can refill queues between ticks.
                await asyncio.sleep(0)

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._ticker = None
        if self._stopped is not None:
            self._stopped.set()


async def serve(model: Module, host: str = "127.0.0.1", port: int = 0,
                **kwargs) -> None:
    """Convenience entry point: start a server and run until it stops."""
    server = StreamServer(model, **kwargs)
    address = await server.start(host, port)
    print(f"serving on {address[0]}:{address[1]} "
          f"(capacity {server.pool.capacity}, "
          f"warmup {server.pool.warmup_ticks} ticks, "
          f"period {server.pool.period})", flush=True)
    try:
        await server.wait_closed()
    finally:
        await server.close()
