"""Minimal asyncio client for :class:`repro.serving.StreamServer`.

Speaks the newline-JSON protocol: reads the hello, streams samples with
periodic drains (so server backpressure propagates), sends ``detach`` and
collects every emitted frame until the server closes the connection.
Used by the CLI smoke path and the serving tests; real deployments would
keep the connection open and interleave reads/writes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional

import numpy as np

__all__ = ["stream_samples"]


async def stream_samples(host: str, port: int, samples,
                         chunk: int = 8,
                         timeout: Optional[float] = 30.0) -> Dict:
    """Stream ``(T, channels)`` samples; return the session transcript.

    Returns ``{"hello": ..., "frames": [...], "error": ...}`` where
    ``frames`` are the emitted-frame messages in order.  Reading and
    writing run concurrently so a bounded server queue never deadlocks
    the client.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    reader, writer = await asyncio.open_connection(host, port)
    result: Dict = {"hello": None, "frames": [], "error": None}

    first = json.loads(await asyncio.wait_for(reader.readline(), timeout))
    if first.get("type") == "error":
        result["error"] = first.get("error")
        writer.close()
        return result
    result["hello"] = first

    async def produce() -> None:
        for start in range(0, len(samples), chunk):
            block = samples[start: start + chunk]
            writer.write((json.dumps(block.tolist()) + "\n").encode())
            await writer.drain()
        writer.write((json.dumps({"type": "detach"}) + "\n").encode())
        await writer.drain()

    async def consume() -> None:
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                return
            msg = json.loads(line)
            if msg.get("type") == "frame":
                result["frames"].append(msg)
            elif msg.get("type") == "error":
                result["error"] = msg.get("error")
                return

    await asyncio.gather(produce(), consume())
    writer.close()
    return result
