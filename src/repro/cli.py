"""Command-line interface for the PIT reproduction.

Subcommands::

    python -m repro.cli info   --benchmark ppg
    python -m repro.cli train  --benchmark ppg --dilations 2 2 1 4 4 8 8
    python -m repro.cli search --benchmark ppg --lam 0.02 --width 0.25
    python -m repro.cli sweep  --benchmark music --lambdas 0 1e-3 1e-2
    python -m repro.cli deploy --benchmark ppg --dilations 2 2 1 4 4 8 8
    python -m repro.cli serve  --benchmark ppg --dilations 2 2 1 4 4 8 8 --port 7707

* ``info``   — seed statistics: parameters, search-space size, layer budgets;
* ``train``  — plain (no-NAS) training of a fixed-dilation network, the
  Fig. 5 reference flow;
* ``search`` — one full PIT run (Algorithm 1); optionally saves a checkpoint;
* ``sweep``  — the λ design-space exploration (Fig. 4 workflow); ``--hw``
  additionally deploys every trained grid point (int8 fake-quantization +
  GAP8 estimate) and annotates it with latency/energy/quantized-loss
  metrics, printing the 3-D (params, latency, loss) Pareto front;
* ``deploy`` — the full deployment flow on a fixed-dilation network
  (optionally loaded from a checkpoint): int8 quantization, quantized
  accuracy, GAP8 latency/energy — rendered as a paper-style Table III row;
* ``serve``  — multi-tenant streaming inference server: converts the
  network to O(K)-per-tick ring-buffer execution and serves concurrent
  sample streams over TCP (see README "Streaming inference serving").

Every command accepts ``--benchmark {music, ppg}`` selecting the
ResTCN/Nottingham or TEMPONet/PPG-Dalia pairing, ``--width`` to scale the
experiment (1.0 = paper width), and ``--conv-backend`` to pick the
convolution kernels (``einsum`` reference or ``im2col`` GEMM fast path;
also settable via the ``REPRO_CONV_BACKEND`` environment variable).

The training commands (``train``, ``search``, ``sweep``) accept
``--compile``, which traces each training step once and replays it through
the graph-capture executor (see README "Compiled training step"); the
``REPRO_COMPILE_STEP=1`` environment variable is the equivalent default.
``--graph-opt {default,none}`` picks the optimization level the executor
applies to each traced program (constant folding, dead-node elimination,
op fusion, buffer-arena planning — bit-identical results either way;
``REPRO_GRAPH_OPT`` is the environment equivalent).
``--graph-exec {interp,source}`` picks the replay executor: ``interp``
walks the precomputed plan, ``source`` runs specialized generated code
(see README "Codegen executor"; ``REPRO_GRAPH_EXEC`` is the environment
equivalent).  ``--loop-capture`` (implies ``--compile``;
``REPRO_LOOP_CAPTURE`` is the environment equivalent) replays each whole
training epoch as one loop program — optimizer update kernels, gradient
clipping and loss accounting inside, flat-packed optimizer state —
degrading to per-step replay whenever a loop-level condition fails (see
README "Whole-loop capture").  ``--dump-graph-source PATH`` writes the
generated programs out for inspection and ``--verbose`` prints the
compile diagnostics (executor selection, pass statistics, allocation
accounting, codegen cache hits, loop replay counts and fallbacks).

``sweep`` additionally exposes the DSE engine knobs: ``--workers`` /
``--executor`` parallelize the grid, ``--stack N`` trains up to N
same-warmup grid points as one weight-stacked model (vmap-style batched
execution; ``REPRO_DSE_STACK`` is the environment equivalent), and
``--cache`` memoizes completed (λ, warmup) points — including ``--hw``
deployment metrics (cache format v2) — to a JSON file so interrupted
sweeps resume where they left off.  Stack width, like ``--compile``,
never enters cache keys: stacked and sequential sweeps share entries.

The training commands also accept ``--checkpoint-dir PATH`` and
``--checkpoint-every N`` (environment equivalents ``REPRO_CKPT_DIR`` /
``REPRO_CKPT_EVERY``): mid-run trainer checkpoints snapshot the complete
training state at epoch boundaries, so a run killed by a crash, timeout
or preemption can continue from its last finished epoch with bit-exact
results (see README "Checkpointing & resume").  ``train`` and ``search``
opt into continuing from an existing checkpoint with ``--resume`` (a
fresh invocation otherwise starts over and rewrites the file); ``sweep``
always resumes in-flight grid points, mirroring how ``--cache`` always
skips finished ones.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _loaders(benchmark: str, seed: int, batch: Optional[int] = None):
    from .data import (
        DataLoader,
        NottinghamConfig,
        PPGDaliaConfig,
        make_nottingham,
        make_ppg_dalia,
        train_val_test_split,
    )
    if benchmark == "music":
        dataset = make_nottingham(NottinghamConfig(num_tunes=24, seq_len=48),
                                  seed=seed)
        batch = batch or 4
    else:
        dataset = make_ppg_dalia(PPGDaliaConfig(num_subjects=3,
                                                seconds_per_subject=60),
                                 seed=seed)
        batch = batch or 16
    train, val, test = train_val_test_split(
        dataset, rng=np.random.default_rng(seed))
    return (DataLoader(train, batch, shuffle=True,
                       rng=np.random.default_rng(seed + 1)),
            DataLoader(val, batch), DataLoader(test, batch))


def _seed_model(benchmark: str, width: float, seed: int):
    from .models import restcn_seed, temponet_seed
    if benchmark == "music":
        return restcn_seed(width_mult=width, seed=seed)
    return temponet_seed(width_mult=width, seed=seed)


def _loss(benchmark: str):
    from .nn import mae_loss, polyphonic_nll
    return polyphonic_nll if benchmark == "music" else mae_loss


def _input_shape(benchmark: str):
    return (1, 88, 128) if benchmark == "music" else (1, 4, 256)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_info(args: argparse.Namespace) -> int:
    from .core import layer_choices, parameter_range, pit_layers, search_space_size
    model = _seed_model(args.benchmark, args.width, args.seed)
    layers = pit_layers(model)
    print(f"benchmark      : {args.benchmark}")
    print(f"seed parameters: {model.count_parameters()}")
    print(f"searchable convs: {len(layers)}")
    for i, layer in enumerate(layers):
        print(f"  conv{i}: rf_max={layer.rf_max:>3d} "
              f"choices={layer_choices(layer)}")
    print(f"search space   : {search_space_size(model)} configurations")
    ranges = parameter_range(model)
    print(f"parameter range: {ranges['min_params']} .. {ranges['max_params']}")
    return 0


def _fixed_model(benchmark: str, dilations, width: float, seed: int):
    from .models import restcn_fixed, temponet_fixed
    if benchmark == "music":
        return restcn_fixed(dilations, width_mult=width, seed=seed)
    return temponet_fixed(dilations, width_mult=width, seed=seed)


def _checkpoint_args(args: argparse.Namespace) -> dict:
    """The mid-run checkpoint knobs of this invocation as trainer kwargs.

    Absent flags defer to the ``REPRO_CKPT_*`` environment, so a cluster
    job can set the directory once for every command it launches.
    """
    from .core.checkpoint import checkpoint_dir_default
    directory = getattr(args, "checkpoint_dir", None)
    if directory is None:
        directory = checkpoint_dir_default()
    out = dict(checkpoint_dir=directory,
               checkpoint_every=getattr(args, "checkpoint_every", None))
    if hasattr(args, "resume"):
        out["checkpoint_resume"] = bool(args.resume)
    return out


def _compile_config(args: argparse.Namespace):
    """The graph-execution knobs of this invocation as one CompileConfig.

    store_true flags map to True-or-None (None lets the matching REPRO_*
    environment variable decide, same as before the flag existed).
    """
    from .autograd.graph import CompileConfig
    return CompileConfig(
        compile_step=True if getattr(args, "compile", False) else None,
        graph_opt=getattr(args, "graph_opt", None),
        graph_exec=getattr(args, "graph_exec", None),
        loop_capture=True if getattr(args, "loop_capture", False) else None)


def _dump_graph_source(args: argparse.Namespace) -> None:
    """Write every generated program of this run to --dump-graph-source."""
    path = getattr(args, "dump_graph_source", None)
    if not path:
        return
    from .autograd.graph import recorded_sources
    sources = recorded_sources()
    with open(path, "w") as handle:
        if not sources:
            handle.write("# no graph programs were lowered to source in "
                         "this run (use --compile --graph-exec source)\n")
        for label, source in sources.items():
            handle.write(f"# === program {label} ===\n{source}\n\n")
    print(f"graph source: {path} ({len(sources)} program(s))")


def _print_compile_stats(stats, phase: Optional[str] = None) -> None:
    """Render one CompiledStep.diagnostics() dict (cli --verbose)."""
    prefix = f"[compile{':' + phase if phase else ''}]"
    if stats is None:
        print(f"{prefix} step ran eagerly (pass --compile or set "
              "REPRO_COMPILE_STEP=1)")
        return
    if stats.get("fallback_reason"):
        print(f"{prefix} eager fallback: {stats['fallback_reason']}")
        return
    print(f"{prefix} graph_opt={stats['optimize']} "
          f"graph_exec={stats['graph_exec']}")
    for key, mode in stats.get("executors", {}).items():
        line = f"{prefix}   program {key}: executor={mode}"
        reason = stats.get("exec_fallbacks", {}).get(key)
        if reason:
            line += f" (lowering fell back: {reason})"
        print(line)
    for key, opt in stats.get("opt_stats", {}).items():
        rendered = " ".join(f"{name}={value}" for name, value in opt.items())
        print(f"{prefix}   opt {key}: {rendered}")
    alloc = stats.get("alloc_stats", {})
    if alloc:
        rendered = " ".join(f"{name}={value}"
                            for name, value in alloc.items())
        print(f"{prefix}   alloc: {rendered}")
    cache = stats.get("codegen_cache", {})
    if cache:
        print(f"{prefix}   codegen cache: entries={cache.get('entries', 0)} "
              f"hits={cache.get('hits', 0)} misses={cache.get('misses', 0)}")
    loop = stats.get("loop")
    if loop:
        print(f"{prefix}   loop: replayed={loop.get('replayed_epochs', 0)} "
              f"driven={loop.get('driven_epochs', 0)} "
              f"exec={loop.get('graph_exec')}")
        reason = loop.get("loop_fallback_reason")
        if reason:
            print(f"{prefix}   loop fallback: {reason}")
        for key, mode in loop.get("executors", {}).items():
            line = f"{prefix}   loop program {key}: executor={mode}"
            fell = loop.get("exec_fallbacks", {}).get(key)
            if fell:
                line += f" (lowering fell back: {fell})"
            print(line)


def cmd_train(args: argparse.Namespace) -> int:
    from .core import train_plain
    train_loader, val_loader, test_loader = _loaders(args.benchmark, args.seed)
    dilations = tuple(args.dilations) if args.dilations else None
    model = _fixed_model(args.benchmark, dilations, args.width, args.seed)
    result = train_plain(model, _loss(args.benchmark), train_loader, val_loader,
                         epochs=args.epochs, lr=args.lr,
                         patience=args.patience,
                         compile_config=_compile_config(args),
                         **_checkpoint_args(args))
    from .core import evaluate
    test_loss = evaluate(model, _loss(args.benchmark), test_loader)
    print(f"network   : {args.benchmark} dilations={dilations or 'all-1'}")
    print(f"params    : {model.count_parameters()}")
    print(f"epochs    : {result.epochs}")
    if result.resumed_epochs:
        print(f"resumed   : {result.resumed_epochs} epoch(s) from checkpoint")
    print(f"val loss  : {result.best_val:.4f}")
    print(f"test loss : {test_loss:.4f}")
    print(f"time      : {result.seconds:.1f} s")
    if args.verbose:
        _print_compile_stats(result.compile_stats)
    _dump_graph_source(args)
    if args.save:
        from .nn.serialization import save_model
        save_model(model, args.save, metadata={
            "benchmark": args.benchmark,
            "dilations": list(dilations) if dilations else None,
            "val_loss": result.best_val})
        print(f"checkpoint: {args.save}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    from .core import PITTrainer, export_network
    train_loader, val_loader, _ = _loaders(args.benchmark, args.seed)
    model = _seed_model(args.benchmark, args.width, args.seed)
    trainer = PITTrainer(
        model, _loss(args.benchmark), lam=args.lam, gamma_lr=args.gamma_lr,
        warmup_epochs=args.warmup, max_prune_epochs=args.epochs,
        prune_patience=args.patience, finetune_epochs=args.finetune,
        finetune_patience=args.patience, verbose=not args.quiet,
        compile_config=_compile_config(args), checkpoint_tag="search",
        **_checkpoint_args(args))
    result = trainer.fit(train_loader, val_loader)
    print(f"dilations : {result.dilations}")
    if result.resumed_epochs:
        print(f"resumed   : {result.resumed_epochs} epoch(s) from checkpoint")
    print(f"val loss  : {result.best_val:.4f}")
    print(f"params    : {result.effective_params}")
    print(f"time      : {result.total_seconds:.1f} s")
    if args.verbose:
        for phase in ("warmup", "prune", "finetune"):
            _print_compile_stats(result.compile_stats.get(phase), phase=phase)
    _dump_graph_source(args)
    if args.save:
        from .nn.serialization import save_model
        save_model(model, args.save, metadata={
            "benchmark": args.benchmark, "lam": args.lam,
            "dilations": list(result.dilations),
            "val_loss": result.best_val})
        print(f"checkpoint: {args.save}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .evaluation import run_dse
    train_loader, val_loader, test_loader = _loaders(args.benchmark, args.seed)

    # functools.partial of a module-level function (not a closure) so the
    # factory survives pickling under --executor process.
    factory = functools.partial(_seed_model, args.benchmark, args.width,
                                args.seed)

    evaluators = []
    if args.hw:
        from .hw import gap8_evaluator
        # Validation data calibrates the activation ranges; held-out test
        # data measures the int8 accuracy column.
        evaluators.append(gap8_evaluator(
            _loss(args.benchmark), val_loader, test_loader,
            _input_shape(args.benchmark), bits=args.bits))

    result = run_dse(factory, _loss(args.benchmark), train_loader, val_loader,
                     lambdas=args.lambdas, warmups=tuple(args.warmups),
                     trainer_kwargs=dict(gamma_lr=args.gamma_lr,
                                         max_prune_epochs=args.epochs,
                                         prune_patience=args.patience,
                                         finetune_epochs=args.finetune,
                                         finetune_patience=args.patience),
                     verbose=not args.quiet, workers=args.workers,
                     executor=args.executor, cache_path=args.cache,
                     cache_tag=f"{args.benchmark}|width={args.width}"
                               f"|seed={args.seed}",
                     compile_config=_compile_config(args),
                     stack=args.stack,
                     point_evaluators=evaluators,
                     retries=args.retries,
                     point_timeout=args.point_timeout,
                     checkpoint_dir=getattr(args, "checkpoint_dir", None),
                     checkpoint_every=getattr(args, "checkpoint_every", None))
    header = f"{'lambda':>10s} {'warmup':>6s} {'params':>8s} {'loss':>9s}"
    if args.hw:
        header += f" {'int8 loss':>9s} {'lat ms':>8s} {'mJ':>7s}"
    print(header + "  dilations")
    for p in sorted(result.ok_points, key=lambda q: q.params):
        line = (f"{p.lam:>10g} {p.warmup_epochs:>6d} {p.params:>8d} "
                f"{p.loss:>9.4f}")
        if args.hw:
            nan = float("nan")
            line += (f" {p.metrics.get('quantized_loss', nan):>9.4f} "
                     f"{p.metrics.get('latency_ms', nan):>8.1f} "
                     f"{p.metrics.get('energy_mj', nan):>7.2f}")
        print(line + f"  {p.dilations}")
    failed = result.failed_points
    if failed:
        from .evaluation import format_failures
        print(f"\n{len(failed)} grid point(s) FAILED:")
        print(format_failures(failed))
    _dump_graph_source(args)
    front = result.pareto()
    print(f"pareto front: {[(p.params, round(p.loss, 4)) for p in front]}")
    if args.hw:
        front3 = result.pareto(objectives=("params", "latency_ms", "loss"))
        print("hw pareto front (params, latency_ms, loss): "
              f"{[(p.params, round(p.metrics['latency_ms'], 1), round(p.loss, 4)) for p in front3]}")
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    from .hw import deploy, format_table_iii
    dilations = tuple(args.dilations) if args.dilations else None
    network = _fixed_model(args.benchmark, dilations, args.width, args.seed)
    if args.load:
        from .nn.serialization import load_model
        metadata = load_model(network, args.load) or {}
        print(f"loaded    : {args.load} "
              f"(val loss {metadata.get('val_loss', 'n/a')})")
    _, val_loader, test_loader = _loaders(args.benchmark, args.seed)
    report = deploy(network, _loss(args.benchmark), val_loader, test_loader,
                    _input_shape(args.benchmark),
                    name=f"{args.benchmark}-w{args.width:g}",
                    quantize=not args.no_quantize, bits=args.bits)
    print(f"network  : {args.benchmark} dilations={dilations or 'all-1'}")
    print(f"params   : {network.count_parameters()}")
    print(f"estimate : {report.gap8.summary()}")
    print(format_table_iii([report]))
    if args.layers:
        print(f"{'layer':<28s} {'kind':<10s} {'MACs':>10s} {'kcycles':>9s}")
        for layer in report.gap8.layers:
            print(f"{layer.name:<28s} {layer.kind:<10s} {layer.macs:>10d} "
                  f"{layer.cycles / 1e3:>9.1f}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    dilations = tuple(args.dilations) if args.dilations else None
    network = _fixed_model(args.benchmark, dilations, args.width, args.seed)
    if args.load:
        from .nn.serialization import load_model
        metadata = load_model(network, args.load) or {}
        print(f"loaded    : {args.load} "
              f"(val loss {metadata.get('val_loss', 'n/a')})")
    if args.quantize:
        from .hw import quantize_network
        _, val_loader, _ = _loaders(args.benchmark, args.seed)
        network = quantize_network(network, val_loader, bits=args.bits)
        print(f"quantized : int{args.bits} "
              "(activation ranges calibrated on validation data)")
    from .serving import serve
    try:
        asyncio.run(serve(network, host=args.host, port=args.port,
                          capacity=args.capacity,
                          queue_size=args.queue_size,
                          max_sessions=args.max_sessions,
                          client_timeout=args.client_timeout))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PIT (DAC 2021) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    from .autograd import available_backends

    def common(p):
        p.add_argument("--benchmark", choices=("music", "ppg"), default="ppg")
        p.add_argument("--width", type=float, default=0.25,
                       help="width multiplier (1.0 = paper scale)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--quiet", action="store_true")
        p.add_argument("--conv-backend", choices=available_backends(),
                       default=None,
                       help="convolution kernel backend (default: "
                            "REPRO_CONV_BACKEND or 'einsum')")

    p_info = sub.add_parser("info", help="seed and search-space statistics")
    common(p_info)
    p_info.set_defaults(func=cmd_info)

    def training(p):
        p.add_argument("--gamma-lr", type=float, default=0.03)
        p.add_argument("--warmup", type=int, default=2)
        p.add_argument("--epochs", type=int, default=6,
                       help="max pruning epochs")
        p.add_argument("--finetune", type=int, default=4)
        p.add_argument("--patience", type=int, default=4)
        compile_flag(p)

    def checkpoint_flags(p, resumable=False):
        p.add_argument("--checkpoint-dir", type=str, default=None,
                       dest="checkpoint_dir", metavar="PATH",
                       help="write mid-run trainer checkpoints (complete "
                            "training state at every epoch boundary) into "
                            "this directory, so a killed run can continue "
                            "bit-exactly (default: REPRO_CKPT_DIR; unset = "
                            "no checkpointing)")
        p.add_argument("--checkpoint-every", type=int, default=None,
                       dest="checkpoint_every", metavar="N",
                       help="snapshot every Nth epoch boundary (default: "
                            "REPRO_CKPT_EVERY or 1)")
        if resumable:
            p.add_argument("--resume", action="store_true",
                           help="continue from the checkpoint in "
                                "--checkpoint-dir instead of starting "
                                "over; results are bit-identical to the "
                                "uninterrupted run")

    def compile_flag(p):
        p.add_argument("--compile", action="store_true",
                       help="trace the training step once and replay it "
                            "through the graph executor (default: "
                            "REPRO_COMPILE_STEP)")
        p.add_argument("--graph-opt", choices=("default", "none"),
                       default=None, dest="graph_opt",
                       help="optimization level for compiled steps: "
                            "'default' runs the pass pipeline (fold/DCE/"
                            "fusion/memory planning), 'none' replays the "
                            "trace verbatim; results are bit-identical "
                            "(default: REPRO_GRAPH_OPT)")
        p.add_argument("--graph-exec", choices=("interp", "source"),
                       default=None, dest="graph_exec",
                       help="replay executor for compiled steps: 'interp' "
                            "walks the precomputed plan, 'source' runs "
                            "specialized generated code (automatic interp "
                            "fallback on lowering failure); results are "
                            "bit-identical (default: REPRO_GRAPH_EXEC)")
        p.add_argument("--loop-capture", action="store_true",
                       dest="loop_capture",
                       help="capture the whole training loop: replay each "
                            "epoch (and each PIT phase) as one loop "
                            "program over the compiled step body, "
                            "optimizer update kernels included; implies "
                            "--compile, degrades to per-step replay when "
                            "the loop cannot capture; results are "
                            "bit-identical (default: REPRO_LOOP_CAPTURE)")
        p.add_argument("--dump-graph-source", type=str, default=None,
                       dest="dump_graph_source", metavar="PATH",
                       help="after the run, write every program the source "
                            "executor generated to PATH (inspectable/"
                            "diffable Python)")
        p.add_argument("--verbose", action="store_true",
                       help="print compile diagnostics after training: "
                            "executor per program, pass statistics, "
                            "allocation accounting, codegen cache hits")

    p_train = sub.add_parser(
        "train", help="plain (no-NAS) training of a fixed-dilation network")
    common(p_train)
    compile_flag(p_train)
    p_train.add_argument("--dilations", type=int, nargs="+", default=None,
                         help="per-layer dilations (default: all 1)")
    p_train.add_argument("--epochs", type=int, default=6)
    p_train.add_argument("--lr", type=float, default=1e-3)
    p_train.add_argument("--patience", type=int, default=4)
    p_train.add_argument("--save", type=str, default=None,
                         help="write an npz checkpoint here")
    checkpoint_flags(p_train, resumable=True)
    p_train.set_defaults(func=cmd_train)

    p_search = sub.add_parser("search", help="run one PIT search")
    common(p_search)
    training(p_search)
    p_search.add_argument("--lam", type=float, default=0.02)
    p_search.add_argument("--save", type=str, default=None,
                          help="write an npz checkpoint here")
    checkpoint_flags(p_search, resumable=True)
    p_search.set_defaults(func=cmd_search)

    p_sweep = sub.add_parser("sweep", help="λ design-space exploration")
    common(p_sweep)
    training(p_sweep)
    p_sweep.add_argument("--lambdas", type=float, nargs="+",
                         default=[0.0, 0.02, 0.2])
    p_sweep.add_argument("--warmups", type=int, nargs="+", default=[2])
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="DSE worker pool size (0/1 = serial; default: "
                              "REPRO_DSE_WORKERS or 0)")
    p_sweep.add_argument("--executor", choices=("thread", "process"),
                         default=None,
                         help="worker pool flavour for parallel sweeps "
                              "(default: REPRO_DSE_EXECUTOR or thread)")
    p_sweep.add_argument("--cache", type=str, default=None,
                         help="JSON results cache; completed (lambda, warmup) "
                              "points are skipped on re-runs")
    p_sweep.add_argument("--stack", type=int, default=None,
                         help="stacked-model execution: train up to N "
                              "same-warmup grid points as one weight-stacked "
                              "model (1 = sequential; default: "
                              "REPRO_DSE_STACK or 1).  A speed knob like "
                              "--compile: results match sequential within "
                              "fp tolerance and cache entries are shared")
    p_sweep.add_argument("--hw", action="store_true",
                         help="hardware-in-the-loop: after each grid point "
                              "trains, export + int8-quantize it and "
                              "annotate the point with GAP8 latency/energy/"
                              "quantized-loss metrics")
    p_sweep.add_argument("--bits", type=int, default=8,
                         help="quantization bit width for --hw")
    p_sweep.add_argument("--retries", type=int, default=0,
                         help="retry a failing grid point up to N times with "
                              "exponential backoff before marking it failed "
                              "(diverged points are never retried)")
    p_sweep.add_argument("--point-timeout", type=float, default=None,
                         help="per-point training budget in seconds; a chunk "
                              "that exceeds it is cancelled and its points "
                              "marked failed (default: no timeout)")
    # Sweeps always resume in-flight points from their checkpoints (like
    # --cache always skips finished ones), so no --resume flag here.
    checkpoint_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_deploy = sub.add_parser(
        "deploy", help="full deployment flow of a fixed network: int8 "
                       "quantization + GAP8 cost (a Table III row)")
    common(p_deploy)
    p_deploy.add_argument("--dilations", type=int, nargs="+", default=None)
    p_deploy.add_argument("--load", type=str, default=None,
                          help="npz checkpoint from `train --save` to load "
                               "into the network; --dilations/--width must "
                               "match it.  (`search --save` checkpoints "
                               "hold the searchable supernet and do not "
                               "fit — retrain the found dilations with "
                               "`train --dilations ... --save` first)")
    p_deploy.add_argument("--bits", type=int, default=8,
                          help="quantization bit width")
    p_deploy.add_argument("--no-quantize", action="store_true",
                          help="skip int8 fake-quantization (float estimate)")
    p_deploy.add_argument("--layers", action="store_true",
                          help="print the per-layer breakdown")
    p_deploy.set_defaults(func=cmd_deploy)

    p_serve = sub.add_parser(
        "serve", help="multi-tenant streaming inference server (ring-buffer "
                      "O(K)-per-tick execution over TCP)")
    common(p_serve)
    p_serve.add_argument("--dilations", type=int, nargs="+", default=None)
    p_serve.add_argument("--load", type=str, default=None,
                         help="npz checkpoint from `train --save` to load "
                              "into the network before serving")
    p_serve.add_argument("--quantize", action="store_true",
                         help="serve the int8 fake-quantized network "
                              "(activation ranges calibrated on the "
                              "benchmark's validation split)")
    p_serve.add_argument("--bits", type=int, default=8,
                         help="quantization bit width for --quantize")
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = pick a free one, printed on "
                              "startup)")
    p_serve.add_argument("--capacity", type=int, default=8,
                         help="batch rows = maximum concurrent clients")
    p_serve.add_argument("--queue-size", type=int, default=64,
                         help="per-client sample buffer (backpressure bound)")
    p_serve.add_argument("--max-sessions", type=int, default=None,
                         help="stop after this many sessions have detached "
                              "(default: serve forever)")
    p_serve.add_argument("--client-timeout", type=float, default=None,
                         help="disconnect a client whose socket stays idle "
                              "for this many seconds, freeing its pool slot "
                              "(an idle active client stalls the barrier "
                              "for every co-tenant; default: wait forever)")
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "conv_backend", None):
        from .autograd import set_backend
        from .autograd.backends import ENV_VAR
        set_backend(args.conv_backend)
        # Also export the choice so worker *processes* (spawn start method
        # re-imports the backends module) inherit it, not just this process.
        os.environ[ENV_VAR] = args.conv_backend
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
