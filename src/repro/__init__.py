"""repro — reproduction of "Pruning In Time (PIT)" (Risso et al., DAC 2021).

PIT is a lightweight DMaskingNAS that learns the dilation factors of every
temporal convolution in a TCN during a single training run, by modeling
dilation selection as structured weight pruning along the time axis.

Package map (one subpackage per subsystem, see DESIGN.md):

* :mod:`repro.autograd`   — numpy reverse-mode autodiff (the DL substrate);
* :mod:`repro.nn`         — layers, losses, module system;
* :mod:`repro.optim`      — SGD/Adam, schedulers, early stopping;
* :mod:`repro.data`       — synthetic Nottingham & PPG-Dalia generators;
* :mod:`repro.core`       — PIT itself: masks, PITConv1d, regularizers,
  the 3-phase trainer, export, search-space accounting;
* :mod:`repro.models`     — ResTCN and TEMPONet seeds;
* :mod:`repro.baselines`  — ProxylessNAS (dilation supernet), random search;
* :mod:`repro.hw`         — int8 quantization + GAP8 SoC deployment model;
* :mod:`repro.evaluation` — metrics, Pareto analysis, DSE driver.

Quickstart::

    from repro import PITTrainer, export_network
    from repro.models import temponet_seed
    from repro.data import make_ppg_dalia, DataLoader, train_val_test_split
    from repro.nn import mae_loss

    seed = temponet_seed(width_mult=0.25)
    train, val, test = train_val_test_split(make_ppg_dalia())
    trainer = PITTrainer(seed, mae_loss, lam=1e-6)
    result = trainer.fit(DataLoader(train, 32, shuffle=True), DataLoader(val, 32))
    deployable = export_network(seed)
"""

from .autograd import (
    CompiledStep,
    available_backends,
    current_backend,
    get_default_dtype,
    set_backend,
    set_default_dtype,
    use_backend,
)
from .core import (
    PITConv1d,
    PITTrainer,
    PITResult,
    StackedPITTrainer,
    TimeMask,
    export_network,
    network_dilations,
    effective_parameters,
    size_regularizer,
    flops_regularizer,
    search_space_size,
    train_plain,
    evaluate,
    make_training_step,
)

__version__ = "1.1.0"

__all__ = [
    "CompiledStep",
    "available_backends",
    "current_backend",
    "get_default_dtype",
    "set_backend",
    "set_default_dtype",
    "use_backend",
    "make_training_step",
    "PITConv1d",
    "PITTrainer",
    "PITResult",
    "StackedPITTrainer",
    "TimeMask",
    "export_network",
    "network_dilations",
    "effective_parameters",
    "size_regularizer",
    "flops_regularizer",
    "search_space_size",
    "train_plain",
    "evaluate",
    "__version__",
]
