"""Synthetic PPG-Dalia: wrist PPG + 3-axis accelerometer with golden HR.

The real PPG-Dalia dataset [20] (15 subjects, 37.5 h) cannot be downloaded
offline; this generator reproduces the signal structure the heart-rate
task actually depends on:

* a photoplethysmogram (PPG) channel: quasi-periodic cardiac pulses at the
  instantaneous heart rate, with a systolic peak + dicrotic notch shape,
  respiratory amplitude modulation and baseline wander;
* three accelerometer channels: mostly quiet with bursts of periodic motion
  (walking/cycling-like), whose harmonics *leak into the PPG channel* —
  the motion-artifact problem that makes PPG-based HR estimation hard;
* a golden HR label per window, drifting smoothly over time (bounded random
  walk in 50–150 BPM), following the dataset's protocol: 8-second windows
  with 2-second shift, 32 Hz virtual sampling rate (256 samples/window).

The supervised task is window -> HR (BPM), evaluated in MAE — exactly the
protocol the paper uses for TEMPONet.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .dataset import ArrayDataset

__all__ = ["PPGDaliaConfig", "generate_subject", "make_ppg_dalia"]

SAMPLE_RATE_HZ = 32
WINDOW_SECONDS = 8
SHIFT_SECONDS = 2
WINDOW_SAMPLES = SAMPLE_RATE_HZ * WINDOW_SECONDS   # 256
SHIFT_SAMPLES = SAMPLE_RATE_HZ * SHIFT_SECONDS     # 64
NUM_CHANNELS = 4  # PPG + 3-axis accelerometer


class PPGDaliaConfig:
    """Generation parameters for the synthetic recordings.

    Parameters
    ----------
    num_subjects:
        Independent recordings (the real dataset has 15 subjects).
    seconds_per_subject:
        Length of each recording.
    hr_low, hr_high:
        Heart-rate bounds for the drifting golden signal (BPM).
    motion_prob:
        Per-second probability a motion burst is active.
    artifact_strength:
        How strongly accelerometer motion leaks into the PPG channel.
    noise_std:
        White sensor-noise level on all channels.
    """

    def __init__(self, num_subjects: int = 6, seconds_per_subject: int = 120,
                 hr_low: float = 50.0, hr_high: float = 150.0,
                 motion_prob: float = 0.25, artifact_strength: float = 0.6,
                 noise_std: float = 0.05):
        self.num_subjects = num_subjects
        self.seconds_per_subject = seconds_per_subject
        self.hr_low = hr_low
        self.hr_high = hr_high
        self.motion_prob = motion_prob
        self.artifact_strength = artifact_strength
        self.noise_std = noise_std


def _pulse_shape(phase: np.ndarray) -> np.ndarray:
    """Cardiac pulse waveform: systolic peak plus a smaller dicrotic notch."""
    systolic = np.exp(-0.5 * ((phase - 0.25) / 0.08) ** 2)
    dicrotic = 0.35 * np.exp(-0.5 * ((phase - 0.55) / 0.07) ** 2)
    return systolic + dicrotic


def generate_subject(config: PPGDaliaConfig,
                     rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """One recording: ``(signals, hr)`` with ``signals`` of shape ``(4, T)``.

    ``hr`` is the instantaneous golden heart rate, one value per sample.
    """
    n = config.seconds_per_subject * SAMPLE_RATE_HZ
    t = np.arange(n) / SAMPLE_RATE_HZ

    # --- golden heart rate: bounded random walk, smoothed -----------------
    hr = np.empty(n)
    hr[0] = rng.uniform(config.hr_low + 10, config.hr_high - 10)
    steps = rng.normal(0.0, 0.35, size=n)
    for i in range(1, n):
        hr[i] = np.clip(hr[i - 1] + steps[i], config.hr_low, config.hr_high)
    kernel = np.ones(SAMPLE_RATE_HZ * 2) / (SAMPLE_RATE_HZ * 2)
    hr = np.convolve(hr, kernel, mode="same")
    hr = np.clip(hr, config.hr_low, config.hr_high)

    # --- cardiac phase & PPG ------------------------------------------------
    inst_freq = hr / 60.0
    phase = np.cumsum(inst_freq) / SAMPLE_RATE_HZ
    respiration = 1.0 + 0.15 * np.sin(2 * np.pi * 0.25 * t + rng.uniform(0, 2 * np.pi))
    baseline = 0.3 * np.sin(2 * np.pi * 0.05 * t + rng.uniform(0, 2 * np.pi))
    ppg = respiration * _pulse_shape(np.mod(phase, 1.0)) + baseline

    # --- accelerometer with motion bursts -----------------------------------
    accel = rng.normal(0.0, 0.02, size=(3, n))
    second_starts = np.arange(0, n, SAMPLE_RATE_HZ)
    active = rng.random(len(second_starts)) < config.motion_prob
    # Make bursts persist: dilate the active pattern so motion lasts a few s.
    for i in range(1, len(active)):
        if active[i - 1] and rng.random() < 0.6:
            active[i] = True
    motion = np.zeros(n)
    for start, is_active in zip(second_starts, active):
        if not is_active:
            continue
        stop = min(start + SAMPLE_RATE_HZ, n)
        step_freq = rng.uniform(1.2, 2.5)  # walking cadence, Hz
        segment_t = t[start:stop]
        burst = np.sin(2 * np.pi * step_freq * segment_t + rng.uniform(0, 2 * np.pi))
        motion[start:stop] = burst
    for axis in range(3):
        gain = rng.uniform(0.4, 1.0)
        accel[axis] += gain * motion
    # Motion artifacts leak into the PPG channel (the hard part of the task).
    ppg = ppg + config.artifact_strength * motion

    signals = np.vstack([ppg[None, :], accel])
    signals += rng.normal(0.0, config.noise_std, size=signals.shape)
    # Per-channel standardization, as done by the DeepPPG pipeline.
    signals = (signals - signals.mean(axis=1, keepdims=True)) / (
        signals.std(axis=1, keepdims=True) + 1e-8)
    return signals, hr


def make_ppg_dalia(config: Optional[PPGDaliaConfig] = None,
                   seed: int = 0) -> ArrayDataset:
    """Windowed dataset: inputs ``(N, 4, 256)``, targets ``(N, 1)`` in BPM."""
    config = config or PPGDaliaConfig()
    rng = np.random.default_rng(seed)
    inputs, targets = [], []
    for _ in range(config.num_subjects):
        signals, hr = generate_subject(config, rng)
        n = signals.shape[1]
        for start in range(0, n - WINDOW_SAMPLES + 1, SHIFT_SAMPLES):
            stop = start + WINDOW_SAMPLES
            inputs.append(signals[:, start:stop])
            targets.append([hr[start:stop].mean()])
    return ArrayDataset(np.stack(inputs), np.asarray(targets))
