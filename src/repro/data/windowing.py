"""Sliding-window utilities and time-series augmentation.

The PPG-Dalia protocol slices continuous recordings into overlapping
windows (8 s window, 2 s shift); :func:`sliding_windows` implements that
generically.  The augmentation transforms are the standard label-preserving
ones for sensor time series (jitter, scaling, channel dropout, time
masking) — used to regularize the small-data trainings in the examples.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "sliding_windows",
    "window_count",
    "jitter",
    "scale_channels",
    "time_mask_augment",
    "channel_dropout",
    "Augmenter",
]


def window_count(length: int, window: int, shift: int) -> int:
    """Number of complete windows a sequence of ``length`` yields."""
    if window < 1 or shift < 1:
        raise ValueError("window and shift must be >= 1")
    if length < window:
        return 0
    return (length - window) // shift + 1


def sliding_windows(signal: np.ndarray, window: int, shift: int) -> np.ndarray:
    """Slice ``(C, T)`` into ``(N, C, window)`` with hop ``shift``.

    Incomplete trailing windows are dropped (the PPG-Dalia convention).
    """
    if signal.ndim != 2:
        raise ValueError(f"expected (C, T), got {signal.shape}")
    count = window_count(signal.shape[1], window, shift)
    if count == 0:
        return np.zeros((0, signal.shape[0], window))
    return np.stack([signal[:, i * shift: i * shift + window]
                     for i in range(count)])


def jitter(x: np.ndarray, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Additive Gaussian sensor noise."""
    return x + rng.normal(0.0, sigma, size=x.shape)


def scale_channels(x: np.ndarray, sigma: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Per-channel multiplicative gain drift, ``gain ~ N(1, sigma)``."""
    if x.ndim != 2:
        raise ValueError(f"expected (C, T), got {x.shape}")
    gains = rng.normal(1.0, sigma, size=(x.shape[0], 1))
    return x * gains


def time_mask_augment(x: np.ndarray, max_fraction: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Zero a random contiguous time span (sensor-dropout simulation)."""
    if not 0.0 <= max_fraction <= 1.0:
        raise ValueError("max_fraction must be in [0, 1]")
    out = x.copy()
    t = x.shape[-1]
    span = int(rng.integers(0, max(1, int(t * max_fraction)) + 1))
    if span > 0:
        start = int(rng.integers(0, t - span + 1))
        out[..., start: start + span] = 0.0
    return out


def channel_dropout(x: np.ndarray, p: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Zero whole channels independently with probability ``p``.

    At least one channel always survives.
    """
    if x.ndim != 2:
        raise ValueError(f"expected (C, T), got {x.shape}")
    keep = rng.random(x.shape[0]) >= p
    if not keep.any():
        keep[int(rng.integers(0, x.shape[0]))] = True
    return x * keep[:, None]


class Augmenter:
    """Composable augmentation pipeline for ``(C, T)`` windows.

    Parameters mirror the individual transforms; any set to 0 disables
    that transform.  Deterministic given its generator.
    """

    def __init__(self, jitter_sigma: float = 0.0, scale_sigma: float = 0.0,
                 time_mask_fraction: float = 0.0, channel_drop_p: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        self.jitter_sigma = jitter_sigma
        self.scale_sigma = scale_sigma
        self.time_mask_fraction = time_mask_fraction
        self.channel_drop_p = channel_drop_p
        self.rng = rng or np.random.default_rng()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x
        if self.scale_sigma > 0:
            out = scale_channels(out, self.scale_sigma, self.rng)
        if self.jitter_sigma > 0:
            out = jitter(out, self.jitter_sigma, self.rng)
        if self.time_mask_fraction > 0:
            out = time_mask_augment(out, self.time_mask_fraction, self.rng)
        if self.channel_drop_p > 0:
            out = channel_dropout(out, self.channel_drop_p, self.rng)
        return out

    def batch(self, xs: np.ndarray) -> np.ndarray:
        """Apply independently to every window of an ``(N, C, T)`` batch."""
        return np.stack([self(x) for x in xs])
