"""Datasets and loading utilities.

Both of the paper's benchmarks are provided as seeded synthetic generators
(see DESIGN.md §4 for the substitution rationale): ``make_nottingham`` for
the polyphonic-music task and ``make_ppg_dalia`` for heart-rate estimation.
"""

from .dataset import (
    Dataset,
    ArrayDataset,
    DataLoader,
    EpochReplayLoader,
    clone_loader,
    train_val_test_split,
)
from .nottingham import (
    NottinghamConfig,
    generate_tune,
    make_nottingham,
    next_frame_pairs,
    NUM_KEYS,
)
from .windowing import (
    sliding_windows,
    window_count,
    jitter,
    scale_channels,
    time_mask_augment,
    channel_dropout,
    Augmenter,
)
from .ppg_dalia import (
    PPGDaliaConfig,
    generate_subject,
    make_ppg_dalia,
    WINDOW_SAMPLES,
    SAMPLE_RATE_HZ,
    NUM_CHANNELS,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "EpochReplayLoader",
    "clone_loader",
    "train_val_test_split",
    "NottinghamConfig",
    "generate_tune",
    "make_nottingham",
    "next_frame_pairs",
    "NUM_KEYS",
    "PPGDaliaConfig",
    "generate_subject",
    "make_ppg_dalia",
    "WINDOW_SAMPLES",
    "SAMPLE_RATE_HZ",
    "NUM_CHANNELS",
    "sliding_windows",
    "window_count",
    "jitter",
    "scale_channels",
    "time_mask_augment",
    "channel_dropout",
    "Augmenter",
]
