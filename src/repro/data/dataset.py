"""Dataset / DataLoader abstractions.

A :class:`Dataset` is an indexable collection of ``(input, target)`` numpy
pairs; :class:`DataLoader` batches and (optionally) shuffles it with an
explicit seeded generator so every experiment is reproducible.
"""

from __future__ import annotations

import copy
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import get_default_dtype

__all__ = ["Dataset", "ArrayDataset", "DataLoader", "clone_loader",
           "EpochReplayLoader", "train_val_test_split"]


class Dataset:
    """Minimal dataset protocol: ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over pre-materialized input/target arrays (first axis = sample)."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        if len(inputs) != len(targets):
            raise ValueError(f"inputs ({len(inputs)}) and targets ({len(targets)}) "
                             f"must have the same length")
        dtype = get_default_dtype()
        self.inputs = np.asarray(inputs, dtype=dtype)
        self.targets = np.asarray(targets, dtype=dtype)

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]


class DataLoader:
    """Batched iteration over a dataset.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Samples per batch; the last partial batch is kept (``drop_last=False``)
        or dropped.
    shuffle:
        Reshuffle indices at the start of every epoch using ``rng``.
    rng:
        Seeded generator; when None a default (non-deterministic) one is used.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = False,
                 drop_last: bool = False, rng: Optional[np.random.Generator] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        yield from self._iter_batches(indices)

    def _iter_batches(self, indices: np.ndarray
                      ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Emit batches for a fixed index order.

        Shared with :class:`EpochReplayLoader`, whose bit-identical-replay
        contract depends on using *this* assembly code, not a copy.
        """
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                return
            xs, ys = zip(*(self.dataset[int(i)] for i in batch))
            yield np.stack(xs), np.stack(ys)


def clone_loader(loader: DataLoader) -> DataLoader:
    """Deep-copy a loader while sharing its (read-only) sample arrays.

    Every piece of mutable iteration state — the shuffle RNG, augmentation
    RNGs, cursors in loader subclasses — becomes private to the clone, so
    concurrent consumers (parallel DSE grid points, per-point deployment
    evaluators) never thread RNG state through each other.  The
    materialized sample arrays, however, are never mutated by training, so
    they are seeded into the deepcopy memo and stay shared: N clones cost
    O(N) loader state, not N copies of the dataset.
    """
    memo = {}
    dataset = getattr(loader, "dataset", None)
    for name in ("inputs", "targets"):
        array = getattr(dataset, name, None)
        if isinstance(array, np.ndarray):
            memo[id(array)] = array
    return copy.deepcopy(loader, memo)


class EpochReplayLoader:
    """Random-access view over a :class:`DataLoader`'s epoch sequence.

    A plain ``DataLoader`` is a *stream*: epoch ``e``'s batch order depends
    on the shuffle RNG having advanced through epochs ``0 .. e-1``.  The
    stacked DSE trainer needs random access instead — models early-stop at
    different epochs, so during fine-tuning model ``m`` must see exactly
    the batches its sequential run would have seen at *its own* epoch
    index, not the stack's.  This view replays the deterministic shuffle
    sequence from a private clone of the loader and memoizes each epoch's
    index order, so ``epoch(e)`` yields bit-identical batches to the
    ``e``-th iteration of a fresh :func:`clone_loader` copy — in any order,
    any number of times.

    Only exact ``DataLoader`` instances are supported: a subclass may hold
    additional per-batch mutable state (augmentation RNGs) that cannot be
    replayed out of order.  Callers (the stacked trainer) catch the
    ``TypeError`` and fall back to sequential training.
    """

    def __init__(self, loader: DataLoader):
        if type(loader) is not DataLoader:
            raise TypeError(
                f"EpochReplayLoader requires a plain DataLoader, got "
                f"{type(loader).__name__} (subclasses may carry per-batch "
                f"state that cannot be replayed out of order)")
        self._loader = clone_loader(loader)
        self._orders: List[np.ndarray] = []

    @property
    def batch_size(self) -> int:
        return self._loader.batch_size

    def __len__(self) -> int:
        """Batches per epoch (constant across epochs)."""
        return len(self._loader)

    def _order(self, epoch: int) -> np.ndarray:
        while len(self._orders) <= epoch:
            indices = np.arange(len(self._loader.dataset))
            if self._loader.shuffle:
                self._loader.rng.shuffle(indices)
            self._orders.append(indices)
        return self._orders[epoch]

    def epoch(self, epoch: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield epoch ``epoch``'s batches, bit-identical to the stream."""
        return self._loader._iter_batches(self._order(epoch))


def train_val_test_split(dataset: ArrayDataset, val_fraction: float = 0.15,
                         test_fraction: float = 0.15,
                         rng: Optional[np.random.Generator] = None
                         ) -> Tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
    """Random split into train/val/test ``ArrayDataset`` views."""
    if val_fraction + test_fraction >= 1.0:
        raise ValueError("val + test fractions must leave room for training data")
    rng = rng or np.random.default_rng()
    n = len(dataset)
    order = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    n_test = max(1, int(round(n * test_fraction)))
    val_idx = order[:n_val]
    test_idx = order[n_val:n_val + n_test]
    train_idx = order[n_val + n_test:]
    if len(train_idx) == 0:
        raise ValueError("dataset too small for the requested split")

    def subset(idx: np.ndarray) -> ArrayDataset:
        return ArrayDataset(dataset.inputs[idx], dataset.targets[idx])

    return subset(train_idx), subset(val_idx), subset(test_idx)
