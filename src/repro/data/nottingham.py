"""Synthetic Nottingham: an 88-key piano-roll folk-tune generator.

The real Nottingham dataset (1200 American/British folk tunes, used by the
paper via Bai et al. [6]) is not shipped offline, so this module generates
sequences with the same interface and matching statistics:

* each frame is an 88-bit binary vector (the 88 piano keys);
* music is polyphonic: a *chord* (triad in the left hand, low register)
  plus a *melody* line (single notes, high register) — the dominant
  structure of folk-tune piano rolls;
* harmonic state evolves slowly (chords held for whole/half measures) while
  the melody moves per beat, giving the multi-time-scale temporal
  correlations that dilation tuning exploits;
* the task is next-frame prediction, scored with the per-frame Bernoulli
  NLL summed over keys — exactly the metric of paper Fig. 4 / Table III.

The generator is a first-order Markov chain over scale degrees (the classic
I-IV-V-vi folk progression with realistic transition probabilities) plus a
stepwise random-walk melody constrained to the current chord's scale.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .dataset import ArrayDataset

__all__ = ["NottinghamConfig", "generate_tune", "make_nottingham", "next_frame_pairs"]

NUM_KEYS = 88

# Major-scale intervals and the folk-progression transition matrix over the
# degrees I, ii, IV, V, vi (row = current, column = next).
_SCALE = np.array([0, 2, 4, 5, 7, 9, 11])
_DEGREES = [0, 1, 3, 4, 5]  # I, ii, IV, V, vi as scale-degree indices
_TRANSITIONS = np.array([
    # I     ii    IV    V     vi
    [0.30, 0.10, 0.25, 0.25, 0.10],   # from I
    [0.10, 0.10, 0.20, 0.50, 0.10],   # from ii
    [0.35, 0.05, 0.15, 0.35, 0.10],   # from IV
    [0.55, 0.05, 0.10, 0.15, 0.15],   # from V
    [0.20, 0.15, 0.30, 0.25, 0.10],   # from vi
])


class NottinghamConfig:
    """Generation parameters for the synthetic corpus.

    Parameters
    ----------
    num_tunes:
        Number of independent sequences (the real corpus has 1200).
    seq_len:
        Frames per tune (each frame ≈ an eighth note).
    chord_hold:
        Frames a chord is held before the Markov chain may move.
    root_low:
        Lowest MIDI-style key index (0 = A0) for chord roots.
    rest_prob:
        Probability a melody frame is silent.
    """

    def __init__(self, num_tunes: int = 60, seq_len: int = 64, chord_hold: int = 8,
                 root_low: int = 20, rest_prob: float = 0.08):
        self.num_tunes = num_tunes
        self.seq_len = seq_len
        self.chord_hold = chord_hold
        self.root_low = root_low
        self.rest_prob = rest_prob


def _chord_keys(tonic: int, degree_index: int) -> List[int]:
    """Keys of the triad on a scale degree (root position)."""
    keys = []
    for step in (0, 2, 4):  # root, third, fifth in scale steps
        scale_pos = _DEGREES[degree_index] + step
        octave, pos = divmod(scale_pos, len(_SCALE))
        keys.append(tonic + 12 * octave + int(_SCALE[pos]))
    return keys


def generate_tune(config: NottinghamConfig, rng: np.random.Generator) -> np.ndarray:
    """One synthetic tune as an ``(88, seq_len)`` binary roll."""
    roll = np.zeros((NUM_KEYS, config.seq_len))
    tonic = int(rng.integers(config.root_low, config.root_low + 12))
    degree = 0  # start on the tonic chord
    melody_offset = int(rng.integers(24, 36))  # melody register above the root
    melody_pos = int(rng.integers(0, len(_SCALE)))
    for frame in range(config.seq_len):
        if frame % config.chord_hold == 0 and frame > 0:
            degree = int(rng.choice(len(_DEGREES), p=_TRANSITIONS[degree]))
        for key in _chord_keys(tonic, degree):
            if 0 <= key < NUM_KEYS:
                roll[key, frame] = 1.0
        # Melody: stepwise random walk on the scale, occasionally resting.
        if rng.random() >= config.rest_prob:
            melody_pos = int(np.clip(melody_pos + rng.integers(-2, 3), 0, 13))
            octave, pos = divmod(melody_pos, len(_SCALE))
            key = tonic + melody_offset + 12 * octave + int(_SCALE[pos])
            if 0 <= key < NUM_KEYS:
                roll[key, frame] = 1.0
    return roll


def next_frame_pairs(roll: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Input/target pair for next-frame prediction: ``x[.. :-1] -> x[.. 1:]``."""
    return roll[:, :-1], roll[:, 1:]


def make_nottingham(config: Optional[NottinghamConfig] = None,
                    seed: int = 0) -> ArrayDataset:
    """Build the synthetic corpus as an :class:`ArrayDataset`.

    Inputs have shape ``(N, 88, seq_len-1)``; targets are the same rolls
    shifted one frame left (the next-frame prediction task).
    """
    config = config or NottinghamConfig()
    rng = np.random.default_rng(seed)
    inputs, targets = [], []
    for _ in range(config.num_tunes):
        roll = generate_tune(config, rng)
        x, y = next_frame_pairs(roll)
        inputs.append(x)
        targets.append(y)
    return ArrayDataset(np.stack(inputs), np.stack(targets))
