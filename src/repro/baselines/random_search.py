"""Random-search baseline over the dilation space.

Not part of the paper's tables, but the standard sanity baseline for any
NAS method: sample K dilation assignments uniformly, train each briefly,
and keep the Pareto-optimal ones.  Used by the ablation benches and tests
to verify PIT finds points at least as good as random sampling at equal
training budget.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.graph import CompileConfig
from ..core.export import export_network
from ..core.regularizer import pit_layers
from ..core.search_space import layer_choices
from ..core.trainer import train_plain
from ..nn import Module

__all__ = ["RandomSearchResult", "random_configurations", "random_search",
           "exhaustive_search"]


@dataclass
class RandomSearchResult:
    dilations: Tuple[int, ...]
    best_val: float
    params: int


def random_configurations(model: Module, count: int,
                          rng: Optional[np.random.Generator] = None
                          ) -> List[Tuple[int, ...]]:
    """Sample ``count`` distinct dilation assignments uniformly."""
    rng = rng or np.random.default_rng()
    choices = [layer_choices(layer) for layer in pit_layers(model)]
    seen = set()
    configs: List[Tuple[int, ...]] = []
    attempts = 0
    while len(configs) < count and attempts < count * 20:
        config = tuple(int(rng.choice(options)) for options in choices)
        attempts += 1
        if config not in seen:
            seen.add(config)
            configs.append(config)
    return configs


def _train_configuration(seed_model: Module, config, loss_fn, train_loader,
                         val_loader, epochs: int, lr: float,
                         patience: int,
                         compile_config: Optional[CompileConfig] = None
                         ) -> RandomSearchResult:
    candidate = copy.deepcopy(seed_model)
    for layer, dilation in zip(pit_layers(candidate), config):
        layer.set_dilation(dilation)
        layer.freeze()
    network = export_network(candidate)
    outcome = train_plain(network, loss_fn, train_loader, val_loader,
                          epochs=epochs, lr=lr, patience=patience,
                          compile_config=compile_config)
    return RandomSearchResult(dilations=tuple(config),
                              best_val=outcome.best_val,
                              params=network.count_parameters())


def exhaustive_search(seed_model: Module, loss_fn: Callable, train_loader,
                      val_loader, epochs: int = 6, lr: float = 1e-3,
                      patience: int = 4,
                      max_configs: int = 64,
                      compile_step: Optional[bool] = None,
                      graph_opt: Optional[str] = None,
                      graph_exec: Optional[str] = None,
                      loop_capture: Optional[bool] = None,
                      compile_config: Optional[CompileConfig] = None
                      ) -> List[RandomSearchResult]:
    """Train *every* dilation assignment (ground truth for tiny spaces).

    This is the oracle PIT approximates in a single training run; the test
    suite uses it to check that PIT's outputs land on (or near) the true
    accuracy-size Pareto front of small search spaces.  Refuses spaces
    larger than ``max_configs``.
    """
    from ..core.search_space import enumerate_configurations, search_space_size

    size = search_space_size(seed_model)
    if size > max_configs:
        raise ValueError(f"search space has {size} configurations; exhaustive "
                         f"search is capped at {max_configs}")
    cfg = CompileConfig.resolve(compile_config, compile_step=compile_step,
                                graph_opt=graph_opt, graph_exec=graph_exec,
                                loop_capture=loop_capture)
    return [_train_configuration(seed_model, config, loss_fn, train_loader,
                                 val_loader, epochs, lr, patience,
                                 compile_config=cfg)
            for config in enumerate_configurations(seed_model)]


def random_search(seed_model: Module, loss_fn: Callable, train_loader, val_loader,
                  count: int = 8, epochs: int = 10, lr: float = 1e-3,
                  patience: int = 5,
                  rng: Optional[np.random.Generator] = None,
                  compile_step: Optional[bool] = None,
                  graph_opt: Optional[str] = None,
                  graph_exec: Optional[str] = None,
                  loop_capture: Optional[bool] = None,
                  compile_config: Optional[CompileConfig] = None
                  ) -> List[RandomSearchResult]:
    """Train ``count`` random fixed-dilation networks; return all results.

    Each candidate is a fixed (static) network, so the graph-execution
    tiers selected by ``compile_config`` all apply: step compilation
    traces each candidate's training step once and replays it per batch,
    and ``loop_capture`` replays each whole epoch as one loop program.
    """
    rng = rng or np.random.default_rng()
    cfg = CompileConfig.resolve(compile_config, compile_step=compile_step,
                                graph_opt=graph_opt, graph_exec=graph_exec,
                                loop_capture=loop_capture)
    results = []
    for config in random_configurations(seed_model, count, rng):
        results.append(_train_configuration(
            seed_model, config, loss_fn, train_loader, val_loader,
            epochs, lr, patience, compile_config=cfg))
    return results
