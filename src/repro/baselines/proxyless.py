"""ProxylessNAS baseline adapted to dilation search (paper Sec. IV-C).

The paper compares PIT against ProxylessNAS [12], "adapted to search over
different dilation factors in a 1D-CNN by manually including all layer
variants in the supernet".  This module reproduces that adaptation:

* :class:`ProxylessDilatedConv1d` — a supernet layer holding one causal
  convolution *branch per candidate dilation* (same receptive field, so
  the search space matches PIT's exactly), plus architecture parameters α.
* Single-path training: each forward samples one branch from softmax(α)
  (so only one path's weights/activations are computed per batch — the
  memory trick of ProxylessNAS), with a straight-through factor that lets
  gradients reach α through the sampled path.
* An expected-size regularizer ``Σ_j p_j · size_j`` steers the search
  toward small networks, mirroring PIT's Eq. 6 objective.
* :class:`ProxylessTrainer` — warmup, alternating weight/architecture
  updates, argmax-derivation and fine-tuning.

The deliberate inefficiency this reproduces (and that Fig. 5 measures): the
supernet stores ``L`` weight sets per layer and each batch improves only
one of them, so reaching a given accuracy needs many more epochs than PIT's
concurrent training of a single weight set.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, mark_capture_unsafe, softmax
from ..autograd.graph import CompileConfig
from ..core.masks import kept_lags, num_gamma
from ..core.pit_conv import PITConv1d
from ..core.trainer import TrainResult, evaluate, train_plain
from ..nn import CausalConv1d, Module, Parameter, Sequential
from ..optim import Adam, EarlyStopping

__all__ = [
    "ProxylessDilatedConv1d",
    "proxylessify",
    "proxyless_layers",
    "export_proxyless",
    "expected_size",
    "ProxylessResult",
    "ProxylessTrainer",
]


class ProxylessDilatedConv1d(Module):
    """Supernet layer: one conv branch per power-of-two dilation.

    All branches keep the layer's receptive field ``rf_max`` (kernel size
    shrinks as dilation grows), exactly matching the per-layer choices of a
    PIT layer with the same ``rf_max``.
    """

    def __init__(self, in_channels: int, out_channels: int, rf_max: int,
                 stride: int = 1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.rf_max = rf_max
        self.stride = stride
        self.dilations: Tuple[int, ...] = tuple(
            2 ** i for i in range(num_gamma(rf_max)))
        branches = []
        for d in self.dilations:
            kernel = len(kept_lags(rf_max, d))
            branches.append(CausalConv1d(in_channels, out_channels, kernel,
                                         dilation=d, stride=stride, rng=rng))
        self.branches = Sequential(*branches)
        self.alpha = Parameter(np.zeros(len(self.dilations)), name="proxyless.alpha")
        self._rng = rng
        self._sample_paths = True
        self._last_index: Optional[int] = None

    # -- path selection -------------------------------------------------
    def probabilities(self) -> np.ndarray:
        exp = np.exp(self.alpha.data - self.alpha.data.max())
        return exp / exp.sum()

    def chosen_index(self) -> int:
        return int(np.argmax(self.alpha.data))

    def chosen_dilation(self) -> int:
        return self.dilations[self.chosen_index()]

    def branch_sizes(self) -> np.ndarray:
        """Parameter count of each branch (the size regularizer weights)."""
        return np.array([b.count_parameters() for b in self.branches],
                        dtype=np.float64)

    def set_sampling(self, enabled: bool) -> None:
        """Sampling on = training supernet; off = deterministic argmax path."""
        self._sample_paths = enabled

    def forward(self, x: Tensor) -> Tensor:
        # Path choice is sampled per batch: a replayed static graph would
        # train only the trace-time branch, so supernet steps stay eager.
        mark_capture_unsafe("ProxylessNAS samples a supernet path per batch")
        if self._sample_paths and self.training:
            probs = self.probabilities()
            index = int(self._rng.choice(len(self.dilations), p=probs))
        else:
            index = self.chosen_index()
        self._last_index = index
        out = self.branches[index](x)
        # Straight-through factor: value 1, but ∂/∂α flows through p_index,
        # approximating ProxylessNAS's binary-gate gradient restricted to
        # the sampled path.
        p = softmax(self.alpha, axis=0)[index]
        gate = p - Tensor(p.data) + 1.0
        return out * gate

    def __repr__(self) -> str:
        return (f"ProxylessDilatedConv1d({self.in_channels}, {self.out_channels}, "
                f"rf_max={self.rf_max}, d*={self.chosen_dilation()})")


def proxylessify(model: Module, rng: Optional[np.random.Generator] = None) -> Module:
    """Copy a PIT-searchable model, replacing PIT layers by supernet layers.

    Guarantees the two methods search the same space (paper Sec. IV-C: the
    supernet variants were specified "so to match exactly the search space
    explored by PIT").
    """
    rng = rng or np.random.default_rng()
    supernet = copy.deepcopy(model)
    for module in supernet.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, PITConv1d):
                setattr(module, name, ProxylessDilatedConv1d(
                    child.in_channels, child.out_channels, child.rf_max,
                    stride=child.stride, rng=rng))
    return supernet


def proxyless_layers(model: Module) -> List[ProxylessDilatedConv1d]:
    return [m for m in model.modules() if isinstance(m, ProxylessDilatedConv1d)]


def expected_size(model: Module) -> Tensor:
    """Differentiable expected parameter count ``Σ_layers Σ_j p_j size_j``."""
    total = Tensor(np.zeros(()))
    for layer in proxyless_layers(model):
        probs = softmax(layer.alpha, axis=0)
        total = total + (probs * Tensor(layer.branch_sizes())).sum()
    return total


def export_proxyless(model: Module) -> Module:
    """Collapse a supernet to its argmax-α network (deep copy)."""
    exported = copy.deepcopy(model)
    for module in exported.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, ProxylessDilatedConv1d):
                setattr(module, name, copy.deepcopy(child.branches[child.chosen_index()]))
    return exported


@dataclass
class ProxylessResult:
    """Outcome of one ProxylessNAS search + fine-tune."""
    dilations: Tuple[int, ...]
    best_val: float
    params: int
    search_seconds: float
    finetune_seconds: float
    search_epochs: int
    finetune_epochs: int
    history: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.search_seconds + self.finetune_seconds


class ProxylessTrainer:
    """Search loop of the ProxylessNAS baseline.

    Each epoch trains the sampled-path weights on the training set, then
    updates α on the validation set with the task loss plus
    ``lam * expected_size``.  After convergence (early stopping on the
    validation task loss) the argmax network is derived and fine-tuned.
    """

    def __init__(self, supernet: Module, loss_fn: Callable, lam: float,
                 lr: float = 1e-3, alpha_lr: float = 1e-2,
                 warmup_epochs: int = 3, max_search_epochs: int = 50,
                 search_patience: int = 5, finetune_epochs: int = 30,
                 finetune_patience: int = 10, verbose: bool = False,
                 compile_step: Optional[bool] = None,
                 graph_opt: Optional[str] = None,
                 graph_exec: Optional[str] = None,
                 loop_capture: Optional[bool] = None,
                 compile_config: Optional[CompileConfig] = None):
        if not proxyless_layers(supernet):
            raise ValueError("model contains no ProxylessDilatedConv1d layers")
        self.supernet = supernet
        self.loss_fn = loss_fn
        self.lam = lam
        self.lr = lr
        self.alpha_lr = alpha_lr
        self.warmup_epochs = warmup_epochs
        self.max_search_epochs = max_search_epochs
        self.search_patience = search_patience
        self.finetune_epochs = finetune_epochs
        self.finetune_patience = finetune_patience
        self.verbose = verbose
        # Applies to the fine-tuning of the derived (static) network only:
        # supernet search epochs sample a path per batch, which the
        # graph-capture executor cannot replay, so they always run eagerly
        # (the layers mark themselves capture-unsafe as a backstop).
        self.compile_config = CompileConfig.resolve(
            compile_config, compile_step=compile_step, graph_opt=graph_opt,
            graph_exec=graph_exec, loop_capture=loop_capture)
        self.compile_step = self.compile_config.compile_step
        self.graph_opt = self.compile_config.graph_opt
        self.graph_exec = self.compile_config.graph_exec
        self.loop_capture = self.compile_config.loop_capture
        self.derived: Optional[Module] = None

    def _split_params(self):
        alpha_params, weight_params = [], []
        for name, p in self.supernet.named_parameters():
            (alpha_params if name.endswith("alpha") else weight_params).append(p)
        return weight_params, alpha_params

    def _epoch(self, loader, optimizer, include_size: bool) -> float:
        self.supernet.train()
        total, batches = 0.0, 0
        for x, y in loader:
            optimizer.zero_grad()
            pred = self.supernet(Tensor(x))
            loss = self.loss_fn(pred, Tensor(y))
            objective = loss + expected_size(self.supernet) * self.lam if include_size else loss
            objective.backward()
            optimizer.step()
            total += loss.item()
            batches += 1
        return total / max(batches, 1)

    def fit(self, train_loader, val_loader) -> ProxylessResult:
        weight_params, alpha_params = self._split_params()
        weight_opt = Adam(weight_params, lr=self.lr)
        alpha_opt = Adam(alpha_params, lr=self.alpha_lr)
        history = {"search_val": []}

        start = time.perf_counter()
        # Warmup: weights only, uniformly sampled paths.
        for _ in range(self.warmup_epochs):
            self._epoch(train_loader, weight_opt, include_size=False)

        stopper = EarlyStopping(patience=self.search_patience, mode="min")
        search_ran = self.warmup_epochs
        for _ in range(self.max_search_epochs):
            self._epoch(train_loader, weight_opt, include_size=False)
            # Architecture step on validation data (ProxylessNAS alternation).
            self._epoch(val_loader, alpha_opt, include_size=True)
            val_loss = evaluate(self.supernet, self.loss_fn, val_loader)
            history["search_val"].append(val_loss)
            search_ran += 2
            stopper.update(val_loss)
            if stopper.should_stop:
                break
        search_seconds = time.perf_counter() - start

        # Derive and fine-tune the argmax network.
        for layer in proxyless_layers(self.supernet):
            layer.set_sampling(False)
        self.derived = export_proxyless(self.supernet)
        result = train_plain(self.derived, self.loss_fn, train_loader, val_loader,
                             epochs=self.finetune_epochs, lr=self.lr,
                             patience=self.finetune_patience,
                             compile_config=self.compile_config)
        dilations = tuple(layer.chosen_dilation()
                          for layer in proxyless_layers(self.supernet))
        if self.verbose:
            print(f"[Proxyless] derived dilations={dilations}, "
                  f"val={result.best_val:.4f}")
        return ProxylessResult(
            dilations=dilations,
            best_val=result.best_val,
            params=self.derived.count_parameters(),
            search_seconds=search_seconds,
            finetune_seconds=result.seconds,
            search_epochs=search_ran,
            finetune_epochs=result.epochs,
            history=history,
        )
