"""NAS baselines: ProxylessNAS (paper Table II / Fig. 5) and random search."""

from .proxyless import (
    ProxylessDilatedConv1d,
    proxylessify,
    proxyless_layers,
    export_proxyless,
    expected_size,
    ProxylessResult,
    ProxylessTrainer,
)
from .random_search import (
    RandomSearchResult,
    random_configurations,
    random_search,
    exhaustive_search,
)

__all__ = [
    "ProxylessDilatedConv1d",
    "proxylessify",
    "proxyless_layers",
    "export_proxyless",
    "expected_size",
    "ProxylessResult",
    "ProxylessTrainer",
    "RandomSearchResult",
    "random_configurations",
    "random_search",
    "exhaustive_search",
]
