"""Quickstart: search dilations for a TCN with PIT in under a minute.

Runs the full PIT pipeline at toy scale on the synthetic PPG-Dalia task:

1. build a searchable TEMPONet seed (all dilations = 1, maximal filters);
2. run the 3-phase search (warmup -> pruning -> fine-tuning, Algorithm 1);
3. export the discovered architecture as a plain dilated TCN;
4. estimate its deployment cost on the GAP8 SoC model.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import PITTrainer, export_network
from repro.data import DataLoader, PPGDaliaConfig, make_ppg_dalia, train_val_test_split
from repro.hw import GAP8Model
from repro.models import temponet_seed
from repro.nn import mae_loss


def main():
    # ------------------------------------------------------------------ data
    config = PPGDaliaConfig(num_subjects=3, seconds_per_subject=60)
    dataset = make_ppg_dalia(config, seed=0)
    train, val, test = train_val_test_split(dataset, rng=np.random.default_rng(0))
    train_loader = DataLoader(train, 16, shuffle=True, rng=np.random.default_rng(1))
    val_loader = DataLoader(val, 16)
    print(f"dataset: {len(train)} train / {len(val)} val / {len(test)} test windows")

    # ------------------------------------------------------------------ seed
    seed = temponet_seed(width_mult=0.25, seed=0)
    print(f"seed network: {seed.count_parameters()} parameters, "
          f"all dilations = 1")

    # ----------------------------------------------------------------- search
    trainer = PITTrainer(
        seed, mae_loss,
        lam=0.02,            # size-regularization strength (Eq. 6)
        gamma_lr=0.03,       # learning rate of the dilation parameters
        warmup_epochs=2,     # phase 1
        max_prune_epochs=6,  # phase 2 cap (early-stops on val loss)
        prune_patience=4,
        finetune_epochs=4,   # phase 3
        finetune_patience=4,
        verbose=True,
    )
    result = trainer.fit(train_loader, val_loader)

    print(f"\ndiscovered dilations: {result.dilations}")
    print(f"validation MAE:       {result.best_val:.2f} BPM")
    print(f"effective parameters: {result.effective_params} "
          f"({seed.count_parameters()} in the seed supernet)")
    print(f"search time:          {result.total_seconds:.1f} s "
          f"(warmup {result.warmup_seconds:.1f} / prune {result.prune_seconds:.1f} "
          f"/ finetune {result.finetune_seconds:.1f})")

    # ----------------------------------------------------------------- export
    network = export_network(seed)
    print(f"\nexported network: {network.count_parameters()} parameters")

    # ----------------------------------------------------------- deploy model
    report = GAP8Model().estimate(network, (1, 4, 256))
    print(f"GAP8 estimate:    {report.summary()}")


if __name__ == "__main__":
    main()
