"""Polyphonic music modeling: PIT on the ResTCN seed (Nottingham task).

Reproduces the Fig. 4 (top) workflow: next-frame prediction on 88-key
piano rolls, comparing the undilated ResTCN seed, the hand-tuned dilation
schedule of Bai et al. (1,1,2,2,4,4,8,8), and a PIT search.

Run with::

    python examples/music_modeling.py
"""

import numpy as np

from repro import PITTrainer, export_network
from repro.core import evaluate, train_plain
from repro.data import DataLoader, NottinghamConfig, make_nottingham, train_val_test_split
from repro.models import RESTCN_HAND_DILATIONS, restcn_fixed, restcn_seed
from repro.nn import polyphonic_nll

WIDTH = 0.08


def main():
    config = NottinghamConfig(num_tunes=24, seq_len=48)
    dataset = make_nottingham(config, seed=0)
    train, val, test = train_val_test_split(dataset, rng=np.random.default_rng(0))
    train_loader = DataLoader(train, 4, shuffle=True, rng=np.random.default_rng(1))
    val_loader = DataLoader(val, 4)
    test_loader = DataLoader(test, 4)
    print(f"dataset: {len(train)} train / {len(val)} val / {len(test)} test tunes "
          f"({config.seq_len} frames each)")

    rows = []

    # --- reference trainings -------------------------------------------
    for name, dilations in [("ResTCN seed (d=1)", None),
                            ("ResTCN hand-tuned", RESTCN_HAND_DILATIONS)]:
        model = restcn_fixed(dilations, width_mult=WIDTH, seed=0)
        train_plain(model, polyphonic_nll, train_loader, val_loader,
                    epochs=8, patience=4)
        nll = evaluate(model, polyphonic_nll, test_loader)
        rows.append((name, model.count_parameters(), nll, dilations or "d=1"))

    # --- PIT search ------------------------------------------------------
    seed = restcn_seed(width_mult=WIDTH, seed=0)
    trainer = PITTrainer(seed, polyphonic_nll, lam=1e-3, gamma_lr=0.03,
                         warmup_epochs=1, max_prune_epochs=5, prune_patience=4,
                         finetune_epochs=4, finetune_patience=4, verbose=True)
    result = trainer.fit(train_loader, val_loader)
    network = export_network(seed)
    nll = evaluate(network, polyphonic_nll, test_loader)
    rows.append(("PIT ResTCN", network.count_parameters(), nll, result.dilations))

    print(f"\n{'network':<20s} {'params':>8s} {'test NLL':>9s}  dilations")
    for name, params, nll, dilations in rows:
        print(f"{name:<20s} {params:>8d} {nll:>9.3f}  {dilations}")


if __name__ == "__main__":
    main()
