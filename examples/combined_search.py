"""Combined dilation + channel search (the paper's Sec. III-C extension).

The paper notes PIT "can be easily integrated with other DMaskingNAS
techniques ... e.g. [MorphNet] to tune the number of channels in each
layer, simply by adding further regularization terms and masking
parameters".  This example does exactly that: a small TCN whose layers are
:class:`repro.core.PITChannelConv1d` — searchable in time (dilation) *and*
width (output channels) — trained with both Lasso terms at once.

Run with::

    python examples/combined_search.py
"""

import numpy as np

from repro.autograd import Tensor
from repro.core import (
    PITChannelConv1d,
    PITTrainer,
    channel_layers,
    effective_parameters,
)
from repro.data import DataLoader, PPGDaliaConfig, make_ppg_dalia, train_val_test_split
from repro.nn import AvgPool1d, CausalConv1d, Flatten, Linear, Module, ReLU, Sequential
from repro.nn import mae_loss


class CombinedSearchTCN(Module):
    """A TEMPONet-flavored stack with combined-searchable convolutions."""

    def __init__(self, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.features = Sequential(
            PITChannelConv1d(4, 16, rf_max=9, min_channels=2, rng=rng), ReLU(),
            AvgPool1d(4),                                     # 256 -> 64
            PITChannelConv1d(16, 32, rf_max=17, min_channels=2, rng=rng), ReLU(),
            AvgPool1d(4),                                     # 64 -> 16
        )
        self.head = Sequential(
            Flatten(),
            Linear(32 * 16, 32, rng=rng), ReLU(),
            Linear(32, 1, rng=rng),
        )
        self.head[-1].bias.data[...] = 100.0  # start at the mean HR

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.features(x))


def main():
    config = PPGDaliaConfig(num_subjects=3, seconds_per_subject=60)
    dataset = make_ppg_dalia(config, seed=0)
    train, val, _ = train_val_test_split(dataset, rng=np.random.default_rng(0))
    train_loader = DataLoader(train, 16, shuffle=True, rng=np.random.default_rng(1))
    val_loader = DataLoader(val, 16)

    model = CombinedSearchTCN(seed=0)
    print(f"seed: {model.count_parameters()} parameters, "
          f"{len(channel_layers(model))} combined-search convs")

    trainer = PITTrainer(
        model, mae_loss,
        lam=0.05,           # time-axis (dilation) Lasso, Eq. 6
        channel_lam=0.002,  # width-axis (channel) Lasso, Sec. III-C
        gamma_lr=0.05, warmup_epochs=2, max_prune_epochs=8, prune_patience=6,
        finetune_epochs=4, finetune_patience=4, verbose=True)
    result = trainer.fit(train_loader, val_loader)

    print(f"\ndilations found : {result.dilations}")
    for i, layer in enumerate(channel_layers(model)):
        print(f"conv{i} channels  : {layer.alive_channels()}/{layer.out_channels} alive")
    print(f"validation MAE  : {result.best_val:.2f} BPM")
    print(f"effective params: {effective_parameters(model)} "
          f"(seed had {model.count_parameters()})")


if __name__ == "__main__":
    main()
