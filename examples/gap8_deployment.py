"""GAP8 deployment: int8 quantization + latency/energy estimation.

Reproduces the Table III workflow: take trained TCNs, quantize them to
int8 (NN-Tool-style post-training quantization with activation
calibration) and price them on the GAP8 SoC model (8-core cluster,
100 MHz, 64 kB L1 / 512 kB L2).

Also prints the *full-scale* cost table: paper-width ResTCN/TEMPONet with
seed, hand-tuned and PIT-style dilations — directly comparable to the
paper's ms/mJ magnitudes.

Run with::

    python examples/gap8_deployment.py
"""

import numpy as np

from repro.core import train_plain
from repro.data import DataLoader, PPGDaliaConfig, make_ppg_dalia, train_val_test_split
from repro.hw import GAP8Model, deploy
from repro.models import (
    RESTCN_HAND_DILATIONS,
    TEMPONET_HAND_DILATIONS,
    restcn_fixed,
    temponet_fixed,
)
from repro.nn import mae_loss


def full_scale_cost_table():
    """Cost columns of Table III at paper width (no training needed)."""
    gap8 = GAP8Model()
    print("full-scale GAP8 cost estimates (paper-width networks)")
    print(f"{'network':<26s} {'#weights':>9s} {'latency':>10s} {'energy':>9s}")
    cases = [
        ("ResTCN dil=1", restcn_fixed(None), (1, 88, 128)),
        ("ResTCN dil=hand-tuned", restcn_fixed(RESTCN_HAND_DILATIONS), (1, 88, 128)),
        ("ResTCN dil=max", restcn_fixed((4, 4, 8, 8, 16, 16, 32, 32)), (1, 88, 128)),
        ("TEMPONet dil=1", temponet_fixed(None), (1, 4, 256)),
        ("TEMPONet dil=hand-tuned", temponet_fixed(TEMPONET_HAND_DILATIONS), (1, 4, 256)),
        ("TEMPONet dil=max", temponet_fixed((4, 4, 4, 8, 8, 16, 16)), (1, 4, 256)),
    ]
    for name, net, shape in cases:
        report = gap8.estimate(net, shape)
        print(f"{name:<26s} {net.count_parameters() / 1e6:>8.2f}M "
              f"{report.latency_ms:>8.1f}ms {report.energy_mj:>7.1f}mJ"
              + ("" if report.fits_l2 else "  [L3 spill]"))
    print()


def trained_deployment():
    """Train a small TEMPONet, then run the full int8 deployment flow."""
    config = PPGDaliaConfig(num_subjects=3, seconds_per_subject=50)
    dataset = make_ppg_dalia(config, seed=0)
    train, val, test = train_val_test_split(dataset, rng=np.random.default_rng(0))
    train_loader = DataLoader(train, 16, shuffle=True, rng=np.random.default_rng(1))
    val_loader = DataLoader(val, 16)
    test_loader = DataLoader(test, 16)

    print("trained int8 deployments (laptop-scale TEMPONet variants)")
    print(f"{'network':<26s} {'#weights':>9s} {'float MAE':>10s} {'int8 MAE':>9s} "
          f"{'latency':>9s} {'energy':>8s}")
    for name, dilations in [("TEMPONet dil=1", None),
                            ("TEMPONet hand-tuned", TEMPONET_HAND_DILATIONS),
                            ("TEMPONet dil=max", (4, 4, 4, 8, 8, 16, 16))]:
        net = temponet_fixed(dilations, width_mult=0.25, seed=0)
        train_plain(net, mae_loss, train_loader, val_loader, epochs=6, patience=4)
        report = deploy(net, mae_loss, train_loader, test_loader, (1, 4, 256),
                        name=name)
        print(f"{name:<26s} {report.params:>9d} {report.float_loss:>10.2f} "
              f"{report.quantized_loss:>9.2f} {report.latency_ms:>7.2f}ms "
              f"{report.energy_mj:>6.2f}mJ")


if __name__ == "__main__":
    full_scale_cost_table()
    trained_deployment()
