"""PPG-based heart-rate estimation: a λ sweep tracing the Pareto front.

Reproduces the Fig. 4 (bottom) workflow of the paper at laptop scale: PIT
searches the TEMPONet seed under several regularization strengths; each
run yields one (size, MAE) point, together tracing the accuracy-vs-size
trade-off.  The undilated seed and the hand-engineered TEMPONet are
trained as references.

Run with::

    python examples/ppg_heart_rate.py
"""

import numpy as np

from repro.core import train_plain
from repro.data import DataLoader, PPGDaliaConfig, make_ppg_dalia, train_val_test_split
from repro.evaluation import pareto_points, run_dse
from repro.models import TEMPONET_HAND_DILATIONS, temponet_fixed, temponet_seed
from repro.nn import mae_loss

WIDTH = 0.25
LAMBDAS = (0.0, 0.02, 0.2, 2.0)


def main():
    config = PPGDaliaConfig(num_subjects=4, seconds_per_subject=60)
    dataset = make_ppg_dalia(config, seed=0)
    train, val, _ = train_val_test_split(dataset, rng=np.random.default_rng(0))
    train_loader = DataLoader(train, 16, shuffle=True, rng=np.random.default_rng(1))
    val_loader = DataLoader(val, 16)

    # References: the d=1 seed and the hand-engineered network.
    references = {}
    for name, dilations in [("seed (d=1)", None),
                            ("hand-tuned", TEMPONET_HAND_DILATIONS)]:
        model = temponet_fixed(dilations, width_mult=WIDTH, seed=0)
        outcome = train_plain(model, mae_loss, train_loader, val_loader,
                              epochs=10, patience=5)
        references[name] = (model.count_parameters(), outcome.best_val)
        print(f"{name:<12s}: {references[name][0]:>7d} params, "
              f"MAE {references[name][1]:.2f} BPM")

    # The PIT λ sweep (one full search per λ).
    sweep = run_dse(
        lambda: temponet_seed(width_mult=WIDTH, seed=0),
        mae_loss, train_loader, val_loader,
        lambdas=LAMBDAS, warmups=(1,),
        trainer_kwargs=dict(gamma_lr=0.03, max_prune_epochs=6, prune_patience=4,
                            finetune_epochs=4, finetune_patience=4),
        verbose=True)

    print("\nlambda      params   MAE     dilations")
    for p in sorted(sweep.points, key=lambda q: q.params):
        print(f"{p.lam:<10g} {p.params:>7d} {p.loss:>7.2f} {p.dilations}")

    points = ([(p.params, p.loss) for p in sweep.points]
              + list(references.values()))
    print("\nPareto front (params, MAE):")
    for params, mae in pareto_points(points):
        print(f"  {int(params):>7d}  {mae:.2f}")


if __name__ == "__main__":
    main()
