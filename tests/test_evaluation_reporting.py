"""Tests for table rendering and the experiment registry."""

import pytest

from repro.evaluation.reporting import (
    Comparison,
    ExperimentRegistry,
    format_markdown_table,
    format_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_numeric_right_aligned(self):
        out = format_table(["n"], [[1], [100]])
        lines = out.splitlines()
        assert lines[2].endswith("1")
        assert lines[3].endswith("100")

    def test_format_specs(self):
        out = format_table(["x"], [[3.14159]], formats=[".2f"])
        assert "3.14" in out
        assert "3.14159" not in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_bools_render_as_yes_no(self):
        out = format_table(["fits L2"], [[True], [False]])
        assert "yes" in out and "no" in out
        assert "True" not in out and "False" not in out

    def test_markdown_bools_render_as_yes_no(self):
        out = format_markdown_table(["ok"], [[True]])
        assert "| yes |" in out


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(["a", "b"], [[1, 2]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_formats(self):
        out = format_markdown_table(["x"], [[0.123456]], formats=[".3f"])
        assert "| 0.123 |" in out


class TestComparison:
    def test_ratio(self):
        assert Comparison("e", "q", 2.0, 3.0).ratio() == pytest.approx(1.5)

    def test_ratio_non_numeric(self):
        assert Comparison("e", "q", "(1,2)", "(1,4)").ratio() is None

    def test_ratio_zero_paper(self):
        assert Comparison("e", "q", 0.0, 3.0).ratio() is None


class TestRegistry:
    def make(self):
        registry = ExperimentRegistry()
        registry.record("table3", "seed latency ms", 1002, 1043.1)
        registry.record("table3", "hand latency ms", 500, 466.3)
        registry.record("fig5", "proxyless/pit time", 10.4, 3.1, note="toy scale")
        return registry

    def test_experiments_ordered_unique(self):
        assert self.make().experiments() == ["table3", "fig5"]

    def test_markdown_sections(self):
        md = self.make().to_markdown()
        assert "### table3" in md
        assert "### fig5" in md
        assert "toy scale" in md

    def test_json_round_trip(self, tmp_path):
        registry = self.make()
        path = tmp_path / "record.json"
        registry.save_json(path)
        loaded = ExperimentRegistry.load_json(path)
        assert len(loaded.entries) == 3
        assert loaded.entries[0].paper == 1002
        assert loaded.entries[2].note == "toy scale"
