"""Tests for the channel-masking extension (paper Sec. III-C)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.channel_mask import (
    ChannelMask,
    PITChannelConv1d,
    channel_layers,
    channel_regularizer,
    export_channel_conv,
)
from repro.nn import Module, ReLU, Sequential

RNG = np.random.default_rng(123)


class TestChannelMask:
    def test_initial_all_alive(self):
        mask = ChannelMask(8)
        assert np.allclose(mask().data, 1.0)
        assert mask.alive_channels() == 8

    def test_threshold_binarization(self):
        mask = ChannelMask(4)
        mask.gamma_hat.data[...] = [0.9, 0.1, 0.6, 0.4]
        assert mask.current_mask().tolist() == [1, 0, 1, 0]
        assert mask.alive_channels() == 2

    def test_min_channels_rescue(self):
        mask = ChannelMask(4, min_channels=2)
        mask.gamma_hat.data[...] = [0.1, 0.2, 0.05, 0.3]
        current = mask.current_mask()
        assert current.sum() == 2
        # The two largest γ̂ survive.
        assert current.tolist() == [0, 1, 0, 1]

    def test_forward_matches_current_mask_with_rescue(self):
        mask = ChannelMask(3, min_channels=1)
        mask.gamma_hat.data[...] = [0.1, 0.2, 0.3]
        assert np.allclose(mask().data, mask.current_mask())

    def test_gradient_flows(self):
        mask = ChannelMask(4)
        (mask() * Tensor(np.arange(4.0))).sum().backward()
        assert mask.gamma_hat.grad is not None

    def test_freeze(self):
        mask = ChannelMask(4)
        mask.gamma_hat.data[...] = [1.0, 0.0, 1.0, 0.0]
        mask.freeze()
        mask.gamma_hat.data[...] = 1.0
        assert mask.alive_channels() == 2
        mask.unfreeze()
        assert mask.alive_channels() == 4

    def test_set_alive(self):
        mask = ChannelMask(3)
        mask.set_alive(np.array([1.0, 0.0, 1.0]))
        assert mask.current_mask().tolist() == [1, 0, 1]

    def test_set_alive_shape_validation(self):
        with pytest.raises(ValueError):
            ChannelMask(3).set_alive(np.ones(4))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ChannelMask(0)
        with pytest.raises(ValueError):
            ChannelMask(3, min_channels=4)

    def test_repr(self):
        assert "4/4" in repr(ChannelMask(4))


class TestPITChannelConv1d:
    def make(self, **kwargs):
        return PITChannelConv1d(3, 6, rf_max=9, rng=np.random.default_rng(0),
                                **kwargs)

    def test_forward_shape(self):
        layer = self.make()
        assert layer(Tensor(RNG.standard_normal((2, 3, 12)))).shape == (2, 6, 12)

    def test_dead_channels_output_zero(self):
        layer = self.make()
        layer.channel_mask.set_alive(np.array([1, 0, 1, 0, 1, 0], dtype=float))
        out = layer(Tensor(RNG.standard_normal((1, 3, 10))))
        assert np.allclose(out.data[:, 1], 0.0)
        assert np.allclose(out.data[:, 3], 0.0)
        assert not np.allclose(out.data[:, 0], 0.0)

    def test_combined_dilation_and_channels(self):
        layer = self.make()
        layer.time_mask.set_dilation(4)
        layer.channel_mask.set_alive(np.array([1, 1, 0, 0, 0, 0], dtype=float))
        assert layer.current_dilation() == 4
        assert layer.alive_channels() == 2
        assert layer.kept_taps() == 3

    def test_effective_params(self):
        layer = self.make()
        layer.time_mask.set_dilation(4)   # 3 taps
        layer.channel_mask.set_alive(np.array([1, 1, 0, 0, 0, 0], dtype=float))
        assert layer.effective_params() == 3 * 3 * 2 + 2

    def test_both_masks_receive_gradients(self):
        layer = self.make()
        layer(Tensor(RNG.standard_normal((1, 3, 10)))).sum().backward()
        assert layer.time_mask.gamma_hat.grad is not None
        assert layer.channel_mask.gamma_hat.grad is not None

    def test_freeze_freezes_both(self):
        layer = self.make()
        layer.freeze()
        assert layer.time_mask.frozen
        assert layer.channel_mask.frozen

    def test_rejects_rf_1(self):
        with pytest.raises(ValueError):
            PITChannelConv1d(2, 2, rf_max=1)

    def test_repr(self):
        assert "alive=6/6" in repr(self.make())


class Chain(Module):
    def __init__(self):
        super().__init__()
        self.a = PITChannelConv1d(2, 4, rf_max=5, rng=np.random.default_rng(0))
        self.r = ReLU()
        self.b = PITChannelConv1d(4, 3, rf_max=9, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.b(self.r(self.a(x)))


class TestChannelRegularizer:
    def test_value_at_all_alive(self):
        model = Chain()
        lam = 0.5
        expected = lam * (2 * 5 * 4 + 4 * 9 * 3)  # Cin * taps * channels(|γ̂|=1)
        assert channel_regularizer(model, lam).item() == pytest.approx(expected)

    def test_scales_with_time_pruning(self):
        """Channel cost shrinks when the time mask prunes taps."""
        model = Chain()
        base = channel_regularizer(model, 1.0).item()
        model.a.time_mask.set_dilation(4)  # 5-tap -> 2-tap... (rf5,d4 -> lags {0,4})
        pruned = channel_regularizer(model, 1.0).item()
        assert pruned < base

    def test_frozen_excluded(self):
        model = Chain()
        model.a.freeze()
        only_b = channel_regularizer(model, 1.0).item()
        assert only_b == pytest.approx(1.0 * 4 * 9 * 3)

    def test_empty_model(self):
        assert channel_regularizer(Sequential(ReLU()), 1.0).item() == 0.0

    def test_gradient(self):
        model = Chain()
        channel_regularizer(model, 0.1).backward()
        assert model.a.channel_mask.gamma_hat.grad is not None

    def test_discovery(self):
        assert len(channel_layers(Chain())) == 2


class TestExportChannelConv:
    def test_export_slices_channels(self):
        layer = PITChannelConv1d(3, 6, rf_max=9, rng=np.random.default_rng(0))
        layer.time_mask.set_dilation(2)
        layer.channel_mask.set_alive(np.array([1, 0, 1, 0, 1, 1], dtype=float))
        conv, alive = export_channel_conv(layer)
        assert conv.out_channels == 4
        assert conv.dilation == 2
        assert alive.tolist() == [0, 2, 4, 5]

    def test_export_forward_matches_alive_rows(self):
        layer = PITChannelConv1d(3, 6, rf_max=9, rng=np.random.default_rng(0))
        layer.time_mask.set_dilation(4)
        alive = np.array([1, 1, 0, 0, 1, 0], dtype=float)
        layer.channel_mask.set_alive(alive)
        conv, index = export_channel_conv(layer)
        x = Tensor(RNG.standard_normal((2, 3, 14)))
        full = layer(x).data
        compact = conv(x).data
        assert np.allclose(full[:, index], compact)
        # Dead rows of the full output are exactly zero.
        dead = [i for i in range(6) if i not in index]
        assert np.allclose(full[:, dead], 0.0)

    def test_export_param_count(self):
        layer = PITChannelConv1d(3, 6, rf_max=9, rng=np.random.default_rng(0))
        layer.time_mask.set_dilation(8)
        layer.channel_mask.set_alive(np.array([1, 0, 0, 0, 0, 1], dtype=float))
        conv, _ = export_channel_conv(layer)
        assert conv.count_parameters() == layer.effective_params()


class TestCombinedSearchIntegration:
    def test_joint_regularized_training_prunes_both_axes(self):
        """A few steps with both Lasso terms shrink taps AND channels."""
        from repro.optim import Adam
        from repro.core.regularizer import size_regularizer

        model = Chain()
        params = model.parameters()
        optimizer = Adam(params, lr=0.05)
        x = Tensor(RNG.standard_normal((4, 2, 12)))
        for _ in range(30):
            optimizer.zero_grad()
            out = model(x)
            loss = (out * out).mean() + channel_regularizer(model, 1.0)
            # Time masks of PITChannelConv1d are TimeMask modules too; their
            # Lasso needs direct wiring since size_regularizer targets
            # PITConv1d. Use the channel term + the task loss here and pull
            # time γ̂ down manually through an L1 term.
            time_l1 = (model.a.time_mask.gamma_hat.abs().sum()
                       + model.b.time_mask.gamma_hat.abs().sum())
            loss = loss + time_l1 * 1.0
            loss.backward()
            optimizer.step()
        assert model.a.current_dilation() > 1
        assert model.b.current_dilation() > 1
        assert (model.a.alive_channels() < 4 or model.b.alive_channels() < 3)
