"""Tests for npz model checkpointing."""

import os

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import temponet_seed
from repro.nn import BatchNorm1d, CausalConv1d, Linear, ReLU, Sequential
from repro.nn.serialization import (
    CheckpointError,
    load_model,
    load_state,
    save_model,
    save_state,
)

RNG = np.random.default_rng(404)


def make_net(seed=0):
    from repro.nn import GlobalAvgPool1d
    rng = np.random.default_rng(seed)
    return Sequential(CausalConv1d(2, 4, 3, rng=rng), BatchNorm1d(4), ReLU(),
                      GlobalAvgPool1d(), Linear(4, 2, rng=rng))


class TestStateRoundTrip:
    def test_save_and_load_state(self, tmp_path):
        state = {"a": np.arange(6.0).reshape(2, 3), "b": np.ones(4)}
        path = tmp_path / "ckpt.npz"
        save_state(state, path)
        loaded, metadata = load_state(path)
        assert metadata is None
        assert set(loaded) == {"a", "b"}
        assert np.allclose(loaded["a"], state["a"])

    def test_metadata_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        meta = {"lam": 1e-3, "dilations": [1, 2, 4], "name": "pit-small"}
        save_state({"w": np.zeros(2)}, path, metadata=meta)
        _, loaded = load_state(path)
        assert loaded == meta

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state({"__repro_metadata__": np.zeros(1)}, tmp_path / "x.npz")

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "ckpt.npz"
        save_state({"w": np.zeros(1)}, path)
        assert path.exists()


class TestAtomicityAndCorruption:
    def test_save_replaces_atomically(self, tmp_path):
        """A failed write must never tear the previous good archive."""
        path = tmp_path / "ckpt.npz"
        save_state({"w": np.arange(3.0)}, path)

        class Boom:
            dtype = None  # np.savez chokes on this object mid-archive

        with pytest.raises(Exception):
            save_state({"w": Boom()}, path)
        loaded, _ = load_state(path)  # old archive intact
        assert np.array_equal(loaded["w"], np.arange(3.0))
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []  # staging file cleaned up

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(tmp_path / "nope.npz")

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_state({"w": np.zeros(4)}, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # killed mid-write
        with pytest.raises(CheckpointError):
            load_state(path)
        assert path.exists()  # no quarantine unless asked

    def test_corrupt_file_quarantined_on_request(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"\x89PNG not a zip archive")
        with pytest.warns(UserWarning, match="corrupt"):
            with pytest.raises(CheckpointError):
                load_state(path, quarantine=True)
        assert not path.exists()  # moved, not copied
        assert (tmp_path / "ckpt.npz.corrupt").exists()

    def test_checkpoint_error_is_runtime_error(self):
        assert issubclass(CheckpointError, RuntimeError)

    def test_load_model_corruption_is_typed(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(make_net(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(CheckpointError):
            load_model(make_net(), path)


class TestModelRoundTrip:
    def test_weights_restored_exactly(self, tmp_path):
        source = make_net(seed=1)
        target = make_net(seed=2)
        path = tmp_path / "model.npz"
        save_model(source, path)
        load_model(target, path)
        for (na, pa), (nb, pb) in zip(source.named_parameters(),
                                      target.named_parameters()):
            assert na == nb
            assert np.allclose(pa.data, pb.data)

    def test_buffers_restored(self, tmp_path):
        source = make_net(seed=1)
        # Move the BatchNorm running stats away from init.
        source(Tensor(RNG.standard_normal((8, 2, 10)) * 3 + 1))
        target = make_net(seed=2)
        path = tmp_path / "model.npz"
        save_model(source, path)
        load_model(target, path)
        bn_source = source[1]
        bn_target = target[1]
        assert np.allclose(bn_source.running_mean, bn_target.running_mean)

    def test_outputs_identical_after_restore(self, tmp_path):
        source = make_net(seed=1)
        source.eval()
        target = make_net(seed=2)
        target.eval()
        path = tmp_path / "model.npz"
        save_model(source, path)
        load_model(target, path)
        x = Tensor(RNG.standard_normal((3, 2, 8)))
        assert np.allclose(source(x).data, target(x).data)

    def test_architecture_mismatch_raises(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(make_net(), path)
        other = Sequential(Linear(3, 3, rng=np.random.default_rng(0)))
        with pytest.raises(KeyError):
            load_model(other, path)

    def test_searchable_model_round_trip(self, tmp_path):
        """γ̂ parameters checkpoint like any other parameter."""
        source = temponet_seed(width_mult=0.125, seed=1)
        from repro.core import pit_layers
        pit_layers(source)[0].set_dilation(4)
        path = tmp_path / "seed.npz"
        save_model(source, path, metadata={"phase": "pruned"})
        target = temponet_seed(width_mult=0.125, seed=2)
        meta = load_model(target, path)
        assert meta == {"phase": "pruned"}
        assert pit_layers(target)[0].current_dilation() == 4
