"""Tests for the dilation regularizers (paper Eq. 6)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    PITConv1d,
    flops_regularizer,
    gamma_size_coefficients,
    mask_from_binary_gamma,
    num_gamma,
    pit_layers,
    size_regularizer,
)
from repro.nn import Module, ReLU, Sequential

RNG = np.random.default_rng(5)


class TwoLayerModel(Module):
    def __init__(self, rf1=9, rf2=17):
        super().__init__()
        self.conv1 = PITConv1d(2, 4, rf_max=rf1, rng=np.random.default_rng(0))
        self.relu = ReLU()
        self.conv2 = PITConv1d(4, 3, rf_max=rf2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.conv2(self.relu(self.conv1(x)))


class TestCoefficients:
    def test_rf9_values(self):
        """Paper example: rf=9, L=4 -> round(8/2^{4-i}) = (1, 2, 4)."""
        assert gamma_size_coefficients(9).tolist() == [1.0, 2.0, 4.0]

    def test_rf17_values(self):
        assert gamma_size_coefficients(17).tolist() == [1.0, 2.0, 4.0, 8.0]

    def test_rf5_values(self):
        assert gamma_size_coefficients(5).tolist() == [1.0, 2.0]

    def test_rf2_empty(self):
        assert gamma_size_coefficients(2).size == 0

    @pytest.mark.parametrize("rf", [3, 5, 9, 17, 33])
    def test_accounting_identity_power_of_two(self, rf):
        """Σ coeffs + always-alive slices == rf_max for rf-1 a power of two.

        Coefficient i counts the slices γ_i marginally keeps alive; with the
        2 endpoint slices always alive (lag 0 and lag rf-1), everything sums
        to the full kernel.
        """
        coeffs = gamma_size_coefficients(rf)
        assert coeffs.sum() + 2 == rf

    @pytest.mark.parametrize("rf", [5, 9, 17])
    def test_marginal_slice_counts(self, rf):
        """coeff[i-1] equals the slices lost when γ_i is zeroed from full."""
        length = num_gamma(rf)
        full = mask_from_binary_gamma(np.ones(length), rf).sum()
        for i in range(1, length):
            gamma = np.ones(length)
            # Zeroing γ_i (others 1) collapses all Γ_j containing γ_i; the
            # resulting dilation is determined by the Γ structure.
            gamma[i] = 0.0
            kept = mask_from_binary_gamma(gamma, rf).sum()
            # The regularizer attributes round((rf-1)/2^{L-i}) slices to γ_i;
            # zeroing γ_i removes *at least* that many (it also removes the
            # contribution of the γ_j above it).
            coeff = gamma_size_coefficients(rf)[i - 1]
            assert full - kept >= coeff


class TestSizeRegularizer:
    def test_value_at_gamma_one(self):
        """At γ̂=1, L_R = λ Σ_l Cin·Cout·Σ coeffs (|γ̂| = 1)."""
        model = TwoLayerModel()
        lam = 0.5
        expected = lam * (2 * 4 * sum(gamma_size_coefficients(9))
                          + 4 * 3 * sum(gamma_size_coefficients(17)))
        assert size_regularizer(model, lam).item() == pytest.approx(expected)

    def test_scales_linearly_with_lambda(self):
        model = TwoLayerModel()
        r1 = size_regularizer(model, 1.0).item()
        r2 = size_regularizer(model, 2.0).item()
        assert r2 == pytest.approx(2 * r1)

    def test_uses_absolute_value(self):
        model = TwoLayerModel()
        base = size_regularizer(model, 1.0).item()
        for layer in pit_layers(model):
            layer.mask.gamma_hat.data *= -1.0
        assert size_regularizer(model, 1.0).item() == pytest.approx(base)

    def test_gradient_is_signed_coefficients(self):
        model = TwoLayerModel()
        lam = 0.1
        reg = size_regularizer(model, lam)
        reg.backward()
        conv1 = model.conv1
        expected = lam * 2 * 4 * gamma_size_coefficients(9)
        assert np.allclose(conv1.mask.gamma_hat.grad, expected)

    def test_frozen_layers_excluded(self):
        model = TwoLayerModel()
        model.conv1.freeze()
        lam = 1.0
        expected = lam * 4 * 3 * sum(gamma_size_coefficients(17))
        assert size_regularizer(model, lam).item() == pytest.approx(expected)

    def test_all_frozen_returns_zero(self):
        model = TwoLayerModel()
        for layer in pit_layers(model):
            layer.freeze()
        reg = size_regularizer(model, 1.0)
        assert reg.item() == 0.0

    def test_no_pit_layers_returns_zero(self):
        assert size_regularizer(Sequential(ReLU()), 1.0).item() == 0.0

    def test_rf2_layer_contributes_nothing(self):
        layer = PITConv1d(2, 2, rf_max=2, rng=np.random.default_rng(0))
        model = Sequential(layer)
        assert size_regularizer(model, 1.0).item() == 0.0


class TestFlopsRegularizer:
    def test_weighted_by_output_length(self):
        model = TwoLayerModel()
        model(Tensor(RNG.standard_normal((1, 2, 16))))  # trace t_out = 16
        size_val = size_regularizer(model, 1.0).item()
        flops_val = flops_regularizer(model, 1.0).item()
        assert flops_val == pytest.approx(16 * size_val)

    def test_default_t_out_before_trace(self):
        model = TwoLayerModel()
        flops_val = flops_regularizer(model, 1.0, default_t_out=1).item()
        assert flops_val == pytest.approx(size_regularizer(model, 1.0).item())

    def test_gradient_flows(self):
        model = TwoLayerModel()
        model(Tensor(RNG.standard_normal((1, 2, 8))))
        flops_regularizer(model, 0.5).backward()
        assert model.conv1.mask.gamma_hat.grad is not None


class TestPitLayers:
    def test_discovery_order(self):
        model = TwoLayerModel()
        layers = pit_layers(model)
        assert len(layers) == 2
        assert layers[0].rf_max == 9
        assert layers[1].rf_max == 17

    def test_empty_for_plain_model(self):
        assert pit_layers(Sequential(ReLU())) == []
