"""Tests for PITConv1d (paper Eq. 5) and its export equivalences."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import PITConv1d, export_conv, kept_lags, num_gamma
from repro.nn import CausalConv1d

RNG = np.random.default_rng(99)


def make_layer(rf_max=9, in_ch=3, out_ch=4, **kwargs):
    return PITConv1d(in_ch, out_ch, rf_max=rf_max,
                     rng=np.random.default_rng(0), **kwargs)


class TestConstruction:
    def test_rejects_rf_below_2(self):
        with pytest.raises(ValueError):
            PITConv1d(2, 2, rf_max=1)

    def test_weight_shape(self):
        layer = make_layer(rf_max=9, in_ch=3, out_ch=4)
        assert layer.weight.data.shape == (4, 3, 9)

    def test_initial_dilation_is_1(self):
        assert make_layer().current_dilation() == 1

    def test_gamma_parameters_present(self):
        layer = make_layer(rf_max=17)
        names = [name for name, _ in layer.named_parameters()]
        assert any(name.endswith("gamma_hat") for name in names)

    def test_no_bias_option(self):
        layer = PITConv1d(2, 2, rf_max=5, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None


class TestForward:
    def test_initial_forward_equals_full_conv(self):
        """With all masks on, PITConv1d is a plain conv with k = rf_max."""
        layer = make_layer()
        conv = CausalConv1d(3, 4, kernel_size=9, rng=np.random.default_rng(1))
        conv.weight.data[...] = layer.weight.data
        conv.bias.data[...] = layer.bias.data
        x = Tensor(RNG.standard_normal((2, 3, 15)))
        assert np.allclose(layer(x).data, conv(x).data)

    @pytest.mark.parametrize("rf_max", [5, 9, 17, 6, 12])
    def test_masked_forward_equals_dilated_conv(self, rf_max):
        """Paper Eq. 5 == Eq. 1: masking time slices == dilated convolution."""
        for d in (2 ** i for i in range(num_gamma(rf_max))):
            layer = make_layer(rf_max=rf_max)
            layer.set_dilation(d)
            x = Tensor(RNG.standard_normal((2, 3, 20)))
            masked_out = layer(x)

            lags = kept_lags(rf_max, d)
            ref = CausalConv1d(3, 4, kernel_size=len(lags), dilation=d,
                               rng=np.random.default_rng(2))
            for j in range(len(lags)):
                lag = (len(lags) - 1 - j) * d
                ref.weight.data[:, :, j] = layer.weight.data[:, :, rf_max - 1 - lag]
            ref.bias.data[...] = layer.bias.data
            assert np.allclose(masked_out.data, ref(x).data), d

    def test_output_shape(self):
        layer = make_layer()
        assert layer(Tensor(RNG.standard_normal((2, 3, 11)))).shape == (2, 4, 11)

    def test_stride(self):
        layer = PITConv1d(2, 2, rf_max=5, stride=2, rng=np.random.default_rng(0))
        assert layer(Tensor(RNG.standard_normal((1, 2, 10)))).shape[-1] == 5

    def test_causality_preserved_under_masking(self):
        layer = make_layer()
        layer.set_dilation(4)
        x = RNG.standard_normal((1, 3, 12))
        base = layer(Tensor(x)).data
        x2 = x.copy()
        x2[:, :, -1] += 3.0
        out = layer(Tensor(x2)).data
        assert np.allclose(out[:, :, :-1], base[:, :, :-1])


class TestGradients:
    def test_weight_receives_grad_only_on_alive_taps(self):
        layer = make_layer()
        layer.set_dilation(4)  # alive lags {0, 4, 8} -> kernel indices {8, 4, 0}
        out = layer(Tensor(RNG.standard_normal((1, 3, 10))))
        out.sum().backward()
        grads_per_tap = np.abs(layer.weight.grad).sum(axis=(0, 1))
        alive_kernel = {8, 4, 0}
        for tap in range(9):
            if tap in alive_kernel:
                assert grads_per_tap[tap] > 0
            else:
                assert grads_per_tap[tap] == 0

    def test_gamma_hat_receives_grad(self):
        layer = make_layer()
        out = layer(Tensor(RNG.standard_normal((1, 3, 10))))
        out.sum().backward()
        assert layer.mask.gamma_hat.grad is not None
        assert np.any(layer.mask.gamma_hat.grad != 0)

    def test_frozen_layer_gamma_gets_no_grad(self):
        layer = make_layer()
        layer.freeze()
        out = layer(Tensor(RNG.standard_normal((1, 3, 10))))
        out.sum().backward()
        assert layer.mask.gamma_hat.grad is None

    def test_bias_grad(self):
        layer = make_layer()
        layer(Tensor(RNG.standard_normal((1, 3, 10)))).sum().backward()
        assert np.allclose(layer.bias.grad, 10.0)


class TestAccounting:
    def test_kept_taps(self):
        layer = make_layer(rf_max=9)
        assert layer.kept_taps() == 9
        layer.set_dilation(4)
        assert layer.kept_taps() == 3
        layer.set_dilation(8)
        assert layer.kept_taps() == 2

    def test_effective_kernel_size(self):
        layer = make_layer(rf_max=9)
        layer.set_dilation(2)
        assert layer.effective_kernel_size() == 5

    def test_effective_params(self):
        layer = make_layer(rf_max=9, in_ch=3, out_ch=4)
        layer.set_dilation(4)
        assert layer.effective_params() == 3 * 3 * 4 + 4  # taps*Cin*Cout + bias

    def test_effective_params_no_bias(self):
        layer = PITConv1d(3, 4, rf_max=9, bias=False, rng=np.random.default_rng(0))
        layer.set_dilation(8)
        assert layer.effective_params() == 2 * 3 * 4

    def test_effective_macs(self):
        layer = make_layer(rf_max=9, in_ch=3, out_ch=4)
        layer.set_dilation(4)
        assert layer.effective_macs(t_out=10) == 3 * 3 * 4 * 10

    def test_effective_macs_uses_traced_length(self):
        layer = make_layer()
        layer(Tensor(RNG.standard_normal((1, 3, 7))))
        assert layer.effective_macs() == 9 * 3 * 4 * 7

    def test_repr_shows_dilation(self):
        layer = make_layer()
        layer.set_dilation(2)
        assert "d=2" in repr(layer)


class TestExportConv:
    @pytest.mark.parametrize("rf_max", [5, 9, 17, 6])
    def test_export_forward_identical(self, rf_max):
        for d in (2 ** i for i in range(num_gamma(rf_max))):
            layer = make_layer(rf_max=rf_max)
            layer.set_dilation(d)
            conv = export_conv(layer)
            x = Tensor(RNG.standard_normal((2, 3, 18)))
            assert np.allclose(layer(x).data, conv(x).data), d

    def test_export_kernel_size_and_dilation(self):
        layer = make_layer(rf_max=9)
        layer.set_dilation(4)
        conv = export_conv(layer)
        assert conv.kernel_size == 3
        assert conv.dilation == 4
        assert conv.receptive_field == 9

    def test_export_param_count_matches_effective(self):
        layer = make_layer(rf_max=17)
        layer.set_dilation(8)
        conv = export_conv(layer)
        assert conv.count_parameters() == layer.effective_params()

    def test_export_respects_stride_and_bias(self):
        layer = PITConv1d(2, 3, rf_max=5, stride=2, bias=False,
                          rng=np.random.default_rng(0))
        layer.set_dilation(2)
        conv = export_conv(layer)
        assert conv.stride == 2
        assert conv.bias is None

    def test_export_of_frozen_layer(self):
        layer = make_layer()
        layer.set_dilation(2)
        layer.freeze()
        conv = export_conv(layer)
        assert conv.dilation == 2
