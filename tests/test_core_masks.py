"""Tests for PIT's mask algebra (paper Eq. 2-4, Fig. 2)."""

import itertools

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    TimeMask,
    build_k_matrix,
    build_t_matrix,
    effective_dilation,
    gamma_from_dilation,
    gamma_index_for_lag,
    kept_lags,
    lag_gamma_indices,
    mask_eq4,
    mask_from_binary_gamma,
    mask_from_dilation,
    num_gamma,
)


class TestNumGamma:
    @pytest.mark.parametrize("rf,expected", [
        (2, 1), (3, 2), (5, 3), (9, 4), (17, 5), (33, 6),
        (4, 2), (6, 3), (8, 3), (10, 4), (16, 4), (32, 5),
    ])
    def test_values(self, rf, expected):
        # L = floor(log2(rf-1)) + 1 (paper Sec. III-A).
        assert num_gamma(rf) == expected

    def test_rejects_rf_below_2(self):
        with pytest.raises(ValueError):
            num_gamma(1)


class TestLagIndexing:
    def test_lag_zero_always_on(self):
        for rf in (3, 5, 9, 17):
            length = num_gamma(rf)
            assert gamma_index_for_lag(0, length) == length - 1

    def test_rf9_mapping(self):
        """Fig. 2 example: rf_max = 9, L = 4."""
        idx = lag_gamma_indices(9)
        #            lag: 0  1  2  3  4  5  6  7  8
        assert idx.tolist() == [3, 0, 1, 0, 2, 0, 1, 0, 3]

    def test_v2_structure(self):
        # Odd lags always map to Γ0 (alive only at d=1).
        idx = lag_gamma_indices(33)
        for lag in range(1, 33, 2):
            assert idx[lag] == 0


class TestConstructiveMask:
    def test_all_ones_gamma_gives_full_mask(self):
        for rf in (2, 5, 9, 17):
            gamma = np.ones(num_gamma(rf))
            assert np.allclose(mask_from_binary_gamma(gamma, rf), 1.0)

    def test_fig2_dilation_2(self):
        """Fig. 2: γ3 = 0 (others 1) encodes d = 2 for rf_max = 9."""
        gamma = np.array([1.0, 1, 1, 0])
        mask = mask_from_binary_gamma(gamma, 9)
        assert mask.tolist() == [1, 0, 1, 0, 1, 0, 1, 0, 1]

    def test_fig2_dilation_4(self):
        gamma = np.array([1.0, 1, 0, 0])
        mask = mask_from_binary_gamma(gamma, 9)
        assert mask.tolist() == [1, 0, 0, 0, 1, 0, 0, 0, 1]

    def test_fig2_dilation_8(self):
        """Fig. 2: γ1 = 0 forces d = 8 regardless of γ2, γ3."""
        for g2, g3 in itertools.product([0.0, 1.0], repeat=2):
            gamma = np.array([1.0, 0, g2, g3])
            mask = mask_from_binary_gamma(gamma, 9)
            assert mask.tolist() == [1, 0, 0, 0, 0, 0, 0, 0, 1]

    def test_gamma0_must_be_one(self):
        with pytest.raises(ValueError):
            mask_from_binary_gamma(np.array([0.0, 1, 1, 1]), 9)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            mask_from_binary_gamma(np.ones(3), 9)

    @pytest.mark.parametrize("rf", [3, 5, 6, 9, 12, 17, 33])
    def test_every_gamma_produces_regular_dilation(self, rf):
        """Any binary γ maps to some regular power-of-two pattern.

        This is the key search-space property of Sec. III-A: the Γ products
        collapse arbitrary γ assignments to regular dilation masks.
        """
        length = num_gamma(rf)
        for bits in itertools.product([0.0, 1.0], repeat=length - 1):
            gamma = np.array([1.0] + list(bits))
            mask = mask_from_binary_gamma(gamma, rf)
            d = effective_dilation(gamma, rf)
            assert np.allclose(mask, mask_from_dilation(rf, d)), (gamma, d)

    def test_gamma_monotone_products(self):
        """Γ_i is non-decreasing in i and Γ_{L-1} = 1."""
        for bits in itertools.product([0.0, 1.0], repeat=3):
            gamma = np.array([1.0] + list(bits))
            cumulative = np.cumprod(gamma)
            big_gamma = cumulative[::-1]
            assert all(a <= b for a, b in zip(big_gamma, big_gamma[1:]))
            assert big_gamma[-1] == 1.0


class TestDilationRoundTrip:
    @pytest.mark.parametrize("rf", [3, 5, 9, 17, 33, 6, 12])
    def test_gamma_from_dilation_inverts(self, rf):
        for d in (2 ** i for i in range(num_gamma(rf))):
            gamma = gamma_from_dilation(rf, d)
            assert effective_dilation(gamma, rf) == d

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            gamma_from_dilation(9, 3)

    def test_rejects_oversized_dilation(self):
        with pytest.raises(ValueError):
            gamma_from_dilation(9, 16)

    def test_kept_lags(self):
        assert kept_lags(9, 1) == list(range(9))
        assert kept_lags(9, 4) == [0, 4, 8]
        assert kept_lags(9, 8) == [0, 8]
        assert kept_lags(6, 4) == [0, 4]

    def test_kept_lags_invalid(self):
        with pytest.raises(ValueError):
            kept_lags(9, 0)

    def test_mask_from_dilation_includes_lag0(self):
        for rf in (5, 9, 17):
            for d in (1, 2, 4):
                assert mask_from_dilation(rf, d)[0] == 1.0


class TestEq4TensorForm:
    def test_t_matrix_structure(self):
        t = build_t_matrix(4)
        # Column c has ones in rows 0..L-1-c (γ_k participates in Γ_c).
        expected = np.array([
            [1, 1, 1, 1],
            [1, 1, 1, 0],
            [1, 1, 0, 0],
            [1, 0, 0, 0],
        ], dtype=float)
        assert np.allclose(t, expected)

    def test_k_matrix_one_hot_columns(self):
        k = build_k_matrix(9)
        assert k.shape == (4, 9)
        assert np.allclose(k.sum(axis=0), 1.0)

    def test_k_matrix_repeating_pattern(self):
        """Paper: K is generated by repeating a 0/1 pattern (2-adic)."""
        k = build_k_matrix(17)
        # Odd lags select row 0 in a strict alternation.
        assert np.allclose(k[0, 1::2], 1.0)
        assert np.allclose(k[0, 0::2], 0.0)

    @pytest.mark.parametrize("rf", [3, 5, 9, 17, 6])
    def test_matches_constructive_for_all_gammas(self, rf):
        length = num_gamma(rf)
        for bits in itertools.product([0.0, 1.0], repeat=length - 1):
            gamma = np.array([1.0] + list(bits))
            constructive = mask_from_binary_gamma(gamma, rf)
            tensor_form = mask_eq4(Tensor(gamma), rf)
            assert np.allclose(constructive, tensor_form.data), (rf, gamma)

    def test_eq4_differentiable(self):
        gamma = Tensor(np.array([1.0, 1, 1, 1]), requires_grad=True)
        mask = mask_eq4(gamma, 9)
        mask.sum().backward()
        assert gamma.grad is not None

    def test_eq4_shape_validation(self):
        with pytest.raises(ValueError):
            mask_eq4(Tensor(np.ones(3)), 9)


class TestTimeMask:
    def test_initial_mask_all_ones(self):
        mask = TimeMask(9)
        assert np.allclose(mask().data, 1.0)
        assert mask.current_dilation() == 1

    def test_parameter_count(self):
        assert TimeMask(9).gamma_hat.data.shape == (3,)
        assert TimeMask(2).gamma_hat.data.shape == (0,)

    def test_rf2_has_no_search(self):
        mask = TimeMask(2)
        assert np.allclose(mask().data, 1.0)
        assert mask.current_dilation() == 1

    def test_set_dilation_roundtrip(self):
        mask = TimeMask(17)
        for d in (1, 2, 4, 8, 16):
            mask.set_dilation(d)
            assert mask.current_dilation() == d
            assert np.allclose(mask().data, mask_from_dilation(17, d))

    def test_threshold_binarization(self):
        mask = TimeMask(9, threshold=0.5)
        mask.gamma_hat.data[...] = [0.6, 0.4, 0.7]
        # γ = (1, 1, 0, 1): Γ products kill everything above Γ2 -> d = 4.
        assert mask.current_dilation() == 4

    def test_forward_matches_current_mask(self):
        mask = TimeMask(9)
        mask.gamma_hat.data[...] = [0.9, 0.2, 0.8]
        assert np.allclose(mask().data, mask.current_mask())

    def test_gradient_flows_to_gamma_hat(self):
        mask = TimeMask(9)
        out = mask() * Tensor(np.arange(9, dtype=float))
        out.sum().backward()
        assert mask.gamma_hat.grad is not None
        assert not np.allclose(mask.gamma_hat.grad, 0.0)

    def test_freeze_makes_mask_constant(self):
        mask = TimeMask(9)
        mask.set_dilation(2)
        mask.freeze()
        frozen = mask()
        assert not frozen.requires_grad
        assert np.allclose(frozen.data, mask_from_dilation(9, 2))

    def test_freeze_survives_gamma_changes(self):
        mask = TimeMask(9)
        mask.set_dilation(2)
        mask.freeze()
        mask.gamma_hat.data[...] = 0.0  # would mean d=8 if unfrozen
        assert mask.current_dilation() == 2

    def test_unfreeze_restores_gamma_control(self):
        mask = TimeMask(9)
        mask.set_dilation(2)
        mask.freeze()
        mask.unfreeze()
        mask.set_dilation(4)
        assert mask.current_dilation() == 4

    def test_repr(self):
        assert "d=1" in repr(TimeMask(9))
