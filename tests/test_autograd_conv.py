"""Tests for causal dilated conv1d and pooling ops."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool1d,
    check_gradients,
    conv1d_causal,
    global_avg_pool1d,
    max_pool1d,
)

RNG = np.random.default_rng(7)


def naive_conv1d_causal(x, w, b=None, dilation=1, stride=1):
    """Direct implementation of paper Eq. 1 (lag form) for cross-checking."""
    n, c_in, t = x.shape
    c_out, _, k = w.shape
    t_out = (t + stride - 1) // stride
    out = np.zeros((n, c_out, t_out))
    for sample in range(n):
        for m in range(c_out):
            for idx, t_pos in enumerate(range(0, t, stride)):
                acc = 0.0
                for i in range(k):
                    lag = (k - 1 - i) * dilation
                    src = t_pos - lag
                    if src >= 0:
                        acc += float(x[sample, :, src] @ w[m, :, i])
                out[sample, m, idx] = acc
            if b is not None:
                out[sample, m, :] += b[m]
    return out


class TestConvForward:
    @pytest.mark.parametrize("dilation", [1, 2, 3, 4])
    @pytest.mark.parametrize("kernel", [1, 2, 3, 5])
    def test_matches_naive(self, dilation, kernel):
        x = RNG.standard_normal((2, 3, 12))
        w = RNG.standard_normal((4, 3, kernel))
        b = RNG.standard_normal(4)
        out = conv1d_causal(Tensor(x), Tensor(w), Tensor(b), dilation=dilation)
        assert np.allclose(out.data, naive_conv1d_causal(x, w, b, dilation))

    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_stride_matches_naive(self, stride):
        x = RNG.standard_normal((2, 3, 13))
        w = RNG.standard_normal((4, 3, 3))
        out = conv1d_causal(Tensor(x), Tensor(w), dilation=2, stride=stride)
        assert np.allclose(out.data, naive_conv1d_causal(x, w, None, 2, stride))

    def test_output_length_preserved(self):
        out = conv1d_causal(Tensor(np.zeros((1, 2, 10))),
                            Tensor(np.zeros((3, 2, 5))), dilation=2)
        assert out.shape == (1, 3, 10)

    def test_causality(self):
        """Changing a future input must not affect past outputs."""
        x = RNG.standard_normal((1, 2, 10))
        w = RNG.standard_normal((3, 2, 4))
        base = conv1d_causal(Tensor(x), Tensor(w), dilation=2).data
        perturbed = x.copy()
        perturbed[:, :, 7] += 10.0
        out = conv1d_causal(Tensor(perturbed), Tensor(w), dilation=2).data
        assert np.allclose(out[:, :, :7], base[:, :, :7])
        assert not np.allclose(out[:, :, 7], base[:, :, 7])

    def test_receptive_field_extent(self):
        """Output at t only sees (k-1)*d + 1 samples back."""
        k, d = 3, 4
        rf = (k - 1) * d + 1
        x = np.zeros((1, 1, 20))
        w = np.ones((1, 1, k))
        t_probe = 15
        far_past = t_probe - rf  # just outside the receptive field
        x[0, 0, far_past] = 1.0
        out = conv1d_causal(Tensor(x), Tensor(w), dilation=d).data
        assert out[0, 0, t_probe] == 0.0
        x[0, 0, far_past + 1] = 1.0  # oldest in-field sample
        out = conv1d_causal(Tensor(x), Tensor(w), dilation=d).data
        assert out[0, 0, t_probe] == 1.0

    def test_kernel_size_one_is_pointwise(self):
        x = RNG.standard_normal((2, 3, 8))
        w = RNG.standard_normal((4, 3, 1))
        out = conv1d_causal(Tensor(x), Tensor(w))
        expected = np.einsum("oc,nct->not", w[:, :, 0], x)
        # atol for REPRO_DTYPE=float32 runs, where the conv computes in
        # single precision against this float64 reference.
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            conv1d_causal(Tensor(np.zeros((2, 3))), Tensor(np.zeros((4, 3, 3))))
        with pytest.raises(ValueError):
            conv1d_causal(Tensor(np.zeros((1, 3, 5))), Tensor(np.zeros((4, 3))))
        with pytest.raises(ValueError):
            conv1d_causal(Tensor(np.zeros((1, 2, 5))), Tensor(np.zeros((4, 3, 3))))
        with pytest.raises(ValueError):
            conv1d_causal(Tensor(np.zeros((1, 3, 5))), Tensor(np.zeros((4, 3, 3))),
                          dilation=0)


class TestConvBackward:
    @pytest.mark.parametrize("dilation,stride", [(1, 1), (2, 1), (3, 2), (1, 3)])
    def test_gradcheck_all_inputs(self, dilation, stride):
        x = Tensor(RNG.standard_normal((2, 2, 9)), requires_grad=True)
        w = Tensor(RNG.standard_normal((3, 2, 3)), requires_grad=True)
        b = Tensor(RNG.standard_normal(3), requires_grad=True)
        check_gradients(
            lambda x, w, b: conv1d_causal(x, w, b, dilation=dilation, stride=stride),
            [x, w, b])

    def test_gradcheck_no_bias(self):
        x = Tensor(RNG.standard_normal((1, 2, 7)), requires_grad=True)
        w = Tensor(RNG.standard_normal((2, 2, 3)), requires_grad=True)
        check_gradients(lambda x, w: conv1d_causal(x, w, dilation=2), [x, w])

    def test_weight_only_grad(self):
        x = Tensor(RNG.standard_normal((1, 2, 7)))
        w = Tensor(RNG.standard_normal((2, 2, 3)), requires_grad=True)
        out = conv1d_causal(x, w)
        out.sum().backward()
        assert w.grad is not None
        assert x.grad is None


class TestPooling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(8, dtype=float).reshape(1, 1, 8))
        out = avg_pool1d(x, 2)
        assert out.data.reshape(-1).tolist() == [0.5, 2.5, 4.5, 6.5]

    def test_avg_pool_stride(self):
        x = Tensor(np.arange(8, dtype=float).reshape(1, 1, 8))
        out = avg_pool1d(x, 2, stride=3)
        assert out.data.reshape(-1).tolist() == [0.5, 3.5, 6.5]

    def test_avg_pool_drops_trailing(self):
        x = Tensor(np.arange(7, dtype=float).reshape(1, 1, 7))
        assert avg_pool1d(x, 2).shape == (1, 1, 3)

    def test_avg_pool_gradcheck(self):
        x = Tensor(RNG.standard_normal((2, 3, 9)), requires_grad=True)
        check_gradients(lambda x: avg_pool1d(x, 3, stride=2), [x])

    def test_avg_pool_window_too_large(self):
        with pytest.raises(ValueError):
            avg_pool1d(Tensor(np.zeros((1, 1, 3))), 5)

    def test_max_pool_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 8.0, 0.0, 5.0]]]))
        out = max_pool1d(x, 2)
        assert out.data.reshape(-1).tolist() == [3.0, 8.0, 5.0]

    def test_max_pool_gradient_to_argmax(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 8.0]]]), requires_grad=True)
        max_pool1d(x, 2).sum().backward()
        assert np.allclose(x.grad, [[[0.0, 1.0, 0.0, 1.0]]])

    def test_max_pool_gradcheck(self):
        # Distinct values avoid tie ambiguity in the numeric gradient.
        x = Tensor(np.arange(18, dtype=float).reshape(2, 3, 3) ** 1.1,
                   requires_grad=True)
        check_gradients(lambda x: max_pool1d(x, 3), [x])

    def test_pool_rejects_2d(self):
        with pytest.raises(ValueError):
            avg_pool1d(Tensor(np.zeros((2, 3))), 2)
        with pytest.raises(ValueError):
            max_pool1d(Tensor(np.zeros((2, 3))), 2)

    def test_global_avg_pool(self):
        x = Tensor(RNG.standard_normal((2, 3, 5)), requires_grad=True)
        out = global_avg_pool1d(x)
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.data.mean(axis=2))
        check_gradients(global_avg_pool1d, [x])
