"""Stacked-vs-sequential DSE parity suite.

The stacked executor trains M (λ, warmup) grid points as one weight-stacked
program; this suite locks it to the sequential path:

* **Trajectory parity** — per-point final losses, dilations, effective
  parameters and full validation histories match a sequential
  :class:`repro.core.PITTrainer` run within ``TOL`` (documented below),
  across every registered conv backend, with dropout + BatchNorm in the
  model and *divergent* per-model early stopping (the hard case: a model
  that stops pruning at epoch 3 rides along masked while another prunes
  for 20+, then both fine-tune on their own loader-epoch streams).
* **Bookkeeping exactness** — warmup/prune/finetune epoch counts, history
  lengths and early-stop epochs are compared *exactly*: stacking may only
  perturb floating point, never control flow, at these tolerances.
* **Engine semantics** — ``stack=1`` is bit-identical to the pre-stacking
  engine; stacked sweeps share :class:`DSECache` entries with sequential
  ones (half-sequential → finish-stacked resumes without retraining);
  unsupported models fall back to sequential per chunk; grouping never
  mixes warmups.
* **Loader machinery** — :class:`repro.data.EpochReplayLoader` replays
  bit-identical epoch streams, and the per-worker loader cache (the
  clone-hoist fix) rewinds to pristine state so parallel + stacked sweeps
  see bit-identical batch order.

Documented tolerance
--------------------
Stacked kernels batch M per-model contractions into single einsum/GEMM/FFT
calls whose floating-point reduction order differs from the per-model
kernels.  Over the short trainings here the accumulated divergence stays
below ``1e-8`` absolute at float64; under ``REPRO_DTYPE=float32``
(the CI stacked leg) everything computes in single precision and the bound
loosens to ``5e-3`` absolute / relative on O(1) losses.  Integer outcomes
(dilations, params, epoch counts) must not move at all.
"""

import json
import threading

import numpy as np
import pytest

from repro.autograd import Tensor, available_backends, get_default_dtype
from repro.core import PITConv1d, PITTrainer, StackedPITTrainer
from repro.core.stacked import clip_grad_norm_stacked, per_model_loss
from repro.data import ArrayDataset, DataLoader, EpochReplayLoader, clone_loader
from repro.evaluation import DSEEngine, stack_width_default
from repro.evaluation.dse import ENV_STACK, _worker_loader
from repro.nn import (
    BatchNorm1d,
    CausalConv1d,
    Dropout,
    Module,
    Parameter,
    ReLU,
    StackedModel,
    StackingUnsupported,
    mse_loss,
)
from repro.optim import clip_grad_norm

if np.dtype(get_default_dtype()) == np.float64:
    TOL = dict(atol=1e-8, rtol=1e-8)
else:
    TOL = dict(atol=5e-3, rtol=5e-3)

LAMS = [0.0, 0.05, 0.5, 5.0]
# lr=1e-2 makes the λ=0 point prune for ~24 epochs while the heavily
# regularized points stop at ~3 — maximal early-stop divergence, which is
# exactly what the stacked masking/per-model-stream machinery must absorb.
SCHEDULE = dict(lr=1e-2, gamma_lr=0.1, max_prune_epochs=25,
                finetune_epochs=12, prune_patience=2, finetune_patience=2,
                warmup_epochs=2)


class StackSeed(Module):
    """Two PIT convs with BatchNorm + Dropout: every stacked layer kind
    that carries per-model state (γ̂, running stats, RNG streams)."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c1 = PITConv1d(2, 4, rf_max=5, rng=rng)
        self.bn = BatchNorm1d(4)
        self.r1 = ReLU()
        self.dp = Dropout(0.2, rng=rng)
        self.c2 = PITConv1d(4, 4, rf_max=9, rng=rng)
        self.r2 = ReLU()
        self.h = CausalConv1d(4, 1, 1, rng=rng)

    def forward(self, x):
        return self.h(self.r2(self.c2(self.dp(self.r1(self.bn(self.c1(x)))))))


def _loaders(seed=0, shuffle=True):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((24, 2, 12))
    y = (x[:, :1, :] * 0.5 + np.roll(x[:, 1:, :], 1, axis=2)
         + 0.5 * rng.standard_normal((24, 1, 12)))
    train = DataLoader(ArrayDataset(x[:16], y[:16]), 4, shuffle=shuffle,
                       rng=np.random.default_rng(seed + 1))
    val = DataLoader(ArrayDataset(x[16:], y[16:]), 4)
    return train, val


def _sequential_results(schedule=SCHEDULE, compile_step=None, lams=LAMS,
                        graph_exec=None):
    train, val = _loaders()
    results = []
    for lam in lams:
        trainer = PITTrainer(StackSeed(), mse_loss, lam=lam,
                             compile_step=compile_step,
                             graph_exec=graph_exec, **schedule)
        results.append(trainer.fit(clone_loader(train), clone_loader(val)))
    return results


def _stacked_results(schedule=SCHEDULE, compile_step=None, lams=LAMS,
                     graph_exec=None):
    train, val = _loaders()
    trainer = StackedPITTrainer(StackSeed(), mse_loss, lams=lams,
                                compile_step=compile_step,
                                graph_exec=graph_exec, **schedule)
    return trainer.fit(train, val)


def _assert_result_parity(sequential, stacked):
    assert len(sequential) == len(stacked)
    for seq, stk in zip(sequential, stacked):
        # Integer outcomes are exact: stacking must not change control flow.
        assert seq.dilations == stk.dilations
        assert seq.effective_params == stk.effective_params
        assert seq.warmup_epochs == stk.warmup_epochs
        assert seq.prune_epochs == stk.prune_epochs
        assert seq.finetune_epochs == stk.finetune_epochs
        # Float outcomes within the documented tolerance.
        assert np.allclose(seq.best_val, stk.best_val, **TOL)
        for key in seq.history:
            assert len(seq.history[key]) == len(stk.history[key]), key
            assert np.allclose(seq.history[key], stk.history[key], **TOL), key


# ----------------------------------------------------------------------
# Trainer-level parity
# ----------------------------------------------------------------------

class TestTrainerParity:
    def test_divergent_early_stopping_parity(self):
        """The headline case: per-model stop epochs differ by 20+ epochs."""
        sequential = _sequential_results()
        stacked = _stacked_results()
        _assert_result_parity(sequential, stacked)
        # The schedule is only a hard test if stops actually diverge.
        prune_epochs = {r.prune_epochs for r in stacked}
        assert len(prune_epochs) > 1, \
            f"schedule no longer diverges: {prune_epochs}"

    @pytest.mark.parametrize("graph_exec", ["interp", "source"])
    def test_compiled_stacked_parity(self, graph_exec):
        """Stacked training through the graph-capture executor — under
        both the interpreted replay and the codegen (source) executor."""
        sequential = _sequential_results(compile_step=True,
                                         graph_exec=graph_exec)
        stacked = _stacked_results(compile_step=True, graph_exec=graph_exec)
        _assert_result_parity(sequential, stacked)

    @pytest.mark.parametrize("backend", available_backends())
    def test_parity_across_conv_backends(self, backend):
        """Every registered backend's stacked kernels, end to end (short
        schedule: the long one is exercised under the default backend)."""
        from repro.autograd import use_backend
        schedule = dict(SCHEDULE, max_prune_epochs=4, finetune_epochs=3)
        with use_backend(backend):
            sequential = _sequential_results(schedule=schedule,
                                             lams=LAMS[:3])
            stacked = _stacked_results(schedule=schedule, lams=LAMS[:3])
        _assert_result_parity(sequential, stacked)

    def test_grad_clip_parity(self):
        """Per-model clipping: no model's clip decision leaks into another."""
        schedule = dict(SCHEDULE, max_prune_epochs=4, finetune_epochs=2,
                        grad_clip=0.5)
        sequential = _sequential_results(schedule=schedule, lams=LAMS[:2])
        stacked = _stacked_results(schedule=schedule, lams=LAMS[:2])
        _assert_result_parity(sequential, stacked)

    def test_warmup_zero_and_no_finetune(self):
        schedule = dict(SCHEDULE, warmup_epochs=0, max_prune_epochs=3,
                        finetune_epochs=0)
        sequential = _sequential_results(schedule=schedule, lams=LAMS[:2])
        stacked = _stacked_results(schedule=schedule, lams=LAMS[:2])
        _assert_result_parity(sequential, stacked)

    def test_unsupported_model_raises_before_training(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.c = PITConv1d(1, 2, rf_max=5, rng=rng)
                self.scale = Parameter(np.ones(2), name="scale")

            def forward(self, x):
                return self.c(x) * self.scale.reshape(1, 2, 1)

        with pytest.raises(StackingUnsupported):
            StackedPITTrainer(Custom(), mse_loss, lams=[0.0, 1.0])

    def test_non_plain_loader_raises_stacking_unsupported(self):
        class LoggingLoader(DataLoader):
            pass

        train, val = _loaders()
        logging_train = LoggingLoader(train.dataset, train.batch_size,
                                      shuffle=True)
        trainer = StackedPITTrainer(StackSeed(), mse_loss, lams=[0.0, 1.0],
                                    **SCHEDULE)
        with pytest.raises(StackingUnsupported):
            trainer.fit(logging_train, val)


# ----------------------------------------------------------------------
# Per-model loss / clipping primitives
# ----------------------------------------------------------------------

class TestPerModelPrimitives:
    def test_registered_loss_matches_slicing(self):
        rng = np.random.default_rng(0)
        pred = Tensor(rng.standard_normal((3, 4, 2, 8)), requires_grad=True)
        y = Tensor(rng.standard_normal((3, 4, 2, 8)))
        fast = per_model_loss(mse_loss, pred, y)
        assert fast.shape == (3,)
        for m in range(3):
            ref = mse_loss(Tensor(pred.data[m]), Tensor(y.data[m]))
            assert np.allclose(fast.data[m], ref.data, **TOL)

    def test_unregistered_loss_falls_back_to_slices(self):
        def odd_loss(pred, target):
            return ((pred - target) ** 2).mean() * 3.0

        rng = np.random.default_rng(1)
        pred = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        y = Tensor(rng.standard_normal((2, 4, 5)))
        vec = per_model_loss(odd_loss, pred, y)
        assert vec.shape == (2,)
        for m in range(2):
            ref = odd_loss(Tensor(pred.data[m]), Tensor(y.data[m]))
            assert np.allclose(vec.data[m], ref.data, **TOL)

    def test_stacked_clip_matches_per_model_clip(self):
        rng = np.random.default_rng(2)
        m = 3
        stacked = [Parameter(rng.standard_normal((m, 4, 5))),
                   Parameter(rng.standard_normal((m, 7)))]
        grads = [rng.standard_normal(p.shape) for p in stacked]
        # Scale model 1's gradients up so exactly one slice clips.
        for g in grads:
            g[1] *= 10.0
        for p, g in zip(stacked, grads):
            p.grad = g.copy()
        norms = clip_grad_norm_stacked(stacked, max_norm=1.0)
        for i in range(m):
            singles = [Parameter(g[i].copy()) for g in grads]
            for s, g in zip(singles, grads):
                s.grad = g[i].copy()
            ref_norm = clip_grad_norm(singles, max_norm=1.0)
            assert np.allclose(norms[i], ref_norm, atol=1e-12)
            for p, s in zip(stacked, singles):
                assert np.allclose(p.grad[i], s.grad, atol=1e-12)

    def test_stacked_dropout_streams_match_sequential(self):
        from repro.autograd import dropout, dropout_stacked
        rng = np.random.default_rng(3)
        x = rng.standard_normal((3, 4, 5))
        base = np.random.default_rng(42)
        clones = [np.random.default_rng(42) for _ in range(3)]
        stacked_x = np.broadcast_to(x, (3,) + x.shape).copy()
        out = dropout_stacked(Tensor(stacked_x), 0.4, True, clones)
        ref = dropout(Tensor(x), 0.4, True, rng=base)
        for m in range(3):
            assert np.allclose(out.data[m], ref.data, **TOL)

    def test_inactive_models_skip_dropout_draws(self):
        from repro.autograd import dropout_stacked
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((2, 3, 4)))
        clones = [np.random.default_rng(7), np.random.default_rng(7)]
        active = np.array([1.0, 0.0])
        out = dropout_stacked(x, 0.5, True, clones, active=active)
        # The masked model is passed through unscaled...
        assert np.allclose(out.data[1], x.data[1])
        # ...and its generator did not advance while the active one's did.
        assert (clones[1].bit_generator.state
                == np.random.default_rng(7).bit_generator.state)
        assert (clones[0].bit_generator.state
                != np.random.default_rng(7).bit_generator.state)


# ----------------------------------------------------------------------
# Engine-level semantics
# ----------------------------------------------------------------------

class CountingFactory:
    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
        return StackSeed()


ENGINE_SCHEDULE = dict(lr=1e-2, gamma_lr=0.1, max_prune_epochs=3,
                       finetune_epochs=2, prune_patience=2,
                       finetune_patience=2)


def _engine(factory=StackSeed, stack=None, workers=0, cache_path=None,
            trainer_kwargs=None, **kwargs):
    train, val = _loaders()
    return DSEEngine(factory, mse_loss, train, val, workers=workers,
                     cache_path=cache_path, stack=stack,
                     trainer_kwargs=dict(trainer_kwargs or ENGINE_SCHEDULE),
                     **kwargs)


def _points_close(a, b):
    assert len(a.points) == len(b.points)
    for pa, pb in zip(a.points, b.points):
        assert (pa.lam, pa.warmup_epochs) == (pb.lam, pb.warmup_epochs)
        assert pa.dilations == pb.dilations
        assert pa.params == pb.params
        assert np.allclose(pa.loss, pb.loss, **TOL)


class TestEngineStacking:
    def test_stack1_is_bit_identical_to_sequential(self):
        """--stack 1 must be the *exact* current sequential path."""
        base = _engine(stack=1).run(LAMS, warmups=[1])
        again = _engine(stack=1).run(LAMS, warmups=[1])
        for pa, pb in zip(base.points, again.points):
            assert pa.loss == pb.loss          # bit-identical, not allclose
            assert pa.dilations == pb.dilations

    def test_stacked_sweep_matches_sequential_within_tol(self):
        sequential = _engine(stack=1).run(LAMS, warmups=[1])
        stacked = _engine(stack=4).run(LAMS, warmups=[1])
        parallel = _engine(stack=2, workers=2).run(LAMS, warmups=[1])
        _points_close(sequential, stacked)
        _points_close(sequential, parallel)

    def test_chunks_never_mix_warmups(self):
        """Grouping is warmup-major: a stack holds one warmup value only,
        so the factory builds one seed per (warmup, chunk)."""
        factory = CountingFactory()
        result = _engine(factory=factory, stack=8).run(LAMS, warmups=[0, 1])
        assert len(result.points) == len(LAMS) * 2
        # 4 λ per warmup group, width 8 -> one chunk per warmup.
        assert factory.calls == 2
        combos = [(p.warmup_epochs, p.lam) for p in result.points]
        assert combos == [(w, lam) for w in [0, 1] for lam in LAMS]

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_STACK, "3")
        assert stack_width_default() == 3
        engine = _engine()
        assert engine.stack == 3
        monkeypatch.delenv(ENV_STACK)
        assert stack_width_default() == 1

    def test_stack_accepted_via_trainer_kwargs(self):
        """Legacy spelling: stack inside trainer_kwargs is stripped into
        the engine knob (and therefore stays out of cache keys)."""
        engine = _engine(trainer_kwargs=dict(ENGINE_SCHEDULE, stack=4))
        assert engine.stack == 4
        assert "stack" not in engine.trainer_kwargs

    def test_invalid_stack_rejected(self):
        with pytest.raises(ValueError, match="stack"):
            _engine(stack=0)

    def test_unsupported_model_falls_back_per_point(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.c = PITConv1d(1, 2, rf_max=5, rng=rng)
                self.scale = Parameter(np.ones(2), name="scale")

            def forward(self, x):
                return self.c(x) * self.scale.reshape(1, 2, 1)

        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 1, 10))
        y = rng.standard_normal((8, 1, 10))
        train = DataLoader(ArrayDataset(x[:6], y[:6]), 3)
        val = DataLoader(ArrayDataset(x[6:], y[6:]), 2)
        sequential = DSEEngine(Custom, mse_loss, train, val, stack=1,
                               trainer_kwargs=dict(ENGINE_SCHEDULE)
                               ).run(LAMS[:2], warmups=[0])
        stacked = DSEEngine(Custom, mse_loss, train, val, stack=2,
                            trainer_kwargs=dict(ENGINE_SCHEDULE)
                            ).run(LAMS[:2], warmups=[0])
        # Fallback is the sequential path itself: bit-identical results.
        for pa, pb in zip(sequential.points, stacked.points):
            assert pa.loss == pb.loss
            assert pa.dilations == pb.dilations

    def test_evaluators_run_on_stacked_points(self):
        class Probe:
            cache_name = "probe"

            def __call__(self, model, point):
                # The stacked path must hand evaluators a real,
                # sequential-shaped trained model.
                assert isinstance(model, StackSeed)
                return {"probe": float(sum(p.data.sum()
                                           for p in model.parameters()))}

        sequential = _engine(stack=1, point_evaluators=[Probe()]
                             ).run(LAMS[:2], warmups=[1])
        stacked = _engine(stack=2, point_evaluators=[Probe()]
                          ).run(LAMS[:2], warmups=[1])
        for pa, pb in zip(sequential.points, stacked.points):
            assert np.allclose(pa.metrics["probe"], pb.metrics["probe"],
                               **TOL)


class TestCacheInterop:
    """Acceptance: stacked sweeps resume from and write to the same
    DSECache entries as sequential sweeps."""

    def test_half_sequential_finish_stacked_no_retraining(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        # Train half the grid sequentially...
        _engine(stack=1, cache_path=cache).run(LAMS[:2], warmups=[1])
        # ...finish the grid stacked: cached points must not retrain, so
        # the factory builds exactly one seed (one stack for the 2 new λ).
        factory = CountingFactory()
        result = _engine(factory=factory, stack=4, cache_path=cache
                         ).run(LAMS, warmups=[1])
        assert factory.calls == 1
        assert [p.lam for p in result.points] == LAMS

    def test_stacked_entries_satisfy_sequential_resume(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        stacked = _engine(stack=4, cache_path=cache).run(LAMS, warmups=[1])
        factory = CountingFactory()
        resumed = _engine(factory=factory, stack=1, cache_path=cache
                          ).run(LAMS, warmups=[1])
        assert factory.calls == 0
        _points_close(stacked, resumed)

    def test_stack_width_not_in_cache_key(self, tmp_path):
        """Same grid at widths 1, 2, 4 shares one cache entry per point."""
        cache = str(tmp_path / "dse.json")
        _engine(stack=2, cache_path=cache).run(LAMS[:2], warmups=[1])
        with open(cache) as handle:
            first = json.load(handle)["points"]
        factory = CountingFactory()
        _engine(factory=factory, stack=4, cache_path=cache
                ).run(LAMS[:2], warmups=[1])
        assert factory.calls == 0
        with open(cache) as handle:
            assert set(json.load(handle)["points"]) == set(first)


# ----------------------------------------------------------------------
# Loader machinery: epoch replay + the per-worker clone hoist
# ----------------------------------------------------------------------

def _materialize(iterator):
    return [(x.copy(), y.copy()) for x, y in iterator]


class TestEpochReplayLoader:
    def test_epochs_match_streamed_loader(self):
        train, _ = _loaders(shuffle=True)
        view = EpochReplayLoader(train)
        stream = clone_loader(train)
        streamed = [_materialize(stream) for _ in range(4)]
        # Same epochs, replayed out of order and repeatedly.
        for epoch in (2, 0, 3, 1, 2):
            replayed = _materialize(view.epoch(epoch))
            assert len(replayed) == len(streamed[epoch])
            for (xa, ya), (xb, yb) in zip(replayed, streamed[epoch]):
                assert np.array_equal(xa, xb) and np.array_equal(ya, yb)

    def test_rejects_loader_subclasses(self):
        class Custom(DataLoader):
            pass

        train, _ = _loaders()
        with pytest.raises(TypeError, match="plain DataLoader"):
            EpochReplayLoader(Custom(train.dataset, 4))

    def test_does_not_touch_the_template(self):
        train, _ = _loaders(shuffle=True)
        before = train.rng.bit_generator.state
        view = EpochReplayLoader(train)
        _materialize(view.epoch(0))
        _materialize(view.epoch(5))
        assert train.rng.bit_generator.state == before


class TestWorkerLoaderHoist:
    """The clone-per-point fix: one clone per worker, rewound per point."""

    def test_reuse_is_bit_identical_to_fresh_clones(self):
        train, _ = _loaders(shuffle=True)
        first = _worker_loader(train)
        epochs_first = [_materialize(first) for _ in range(3)]
        again = _worker_loader(train)
        assert again is first                  # hoisted: same clone object
        epochs_again = [_materialize(again) for _ in range(3)]
        reference = clone_loader(train)
        epochs_ref = [_materialize(reference) for _ in range(3)]
        for seq_a, seq_b, seq_r in zip(epochs_first, epochs_again, epochs_ref):
            for (xa, _), (xb, _), (xr, _) in zip(seq_a, seq_b, seq_r):
                assert np.array_equal(xa, xb)
                assert np.array_equal(xa, xr)

    def test_advanced_template_forces_reclone(self):
        train, _ = _loaders(shuffle=True)
        first = _worker_loader(train)
        list(train)                            # caller consumes the template
        second = _worker_loader(train)
        assert second is not first
        # The fresh clone starts from the template's *current* state,
        # exactly like clone-per-point did.
        assert (second.rng.bit_generator.state
                == train.rng.bit_generator.state)

    def test_non_pcg64_generators_supported(self):
        """Regression: MT19937/Philox state dicts embed numpy arrays, on
        which plain dict equality raises — the staleness check must
        deep-compare instead of crashing the second grid point."""
        train, _ = _loaders()
        loader = DataLoader(train.dataset, 4, shuffle=True,
                            rng=np.random.Generator(np.random.MT19937(7)))
        first = _worker_loader(loader)
        again = _worker_loader(loader)       # used to raise ValueError
        assert again is first
        reference = clone_loader(loader)
        assert [np.array_equal(xa, xb)
                for (xa, _), (xb, _) in zip(_materialize(again),
                                            _materialize(reference))]

    def test_dead_templates_are_evicted(self):
        """The per-worker cache must not pin datasets of dropped loaders."""
        from repro.evaluation.dse import _LOADER_CACHE
        train, _ = _loaders()
        transient = DataLoader(train.dataset, 4, shuffle=True,
                               rng=np.random.default_rng(3))
        _worker_loader(transient)
        key = (id(transient), "train")
        assert key in _LOADER_CACHE.map
        del transient
        _worker_loader(train)                # any later call evicts the dead
        assert key not in _LOADER_CACHE.map

    def test_aliased_train_and_val_loaders_stay_independent(self):
        """Regression: one loader object passed as both train and val must
        yield two distinct clones with independent RNG streams, exactly
        like clone-per-point did — not one shared, rewound clone."""
        train, _ = _loaders(shuffle=True)
        as_train = _worker_loader(train, "train")
        as_val = _worker_loader(train, "val")
        assert as_train is not as_val
        # Consuming the training stream must not advance the val stream.
        first_train = _materialize(as_train)
        first_val = _materialize(as_val)
        reference = clone_loader(train)
        for (xa, _), (xr, _) in zip(first_val, reference):
            assert np.array_equal(xa, xr)
        assert [np.array_equal(xa, xb)
                for (xa, _), (xb, _) in zip(first_train, first_val)]

    def test_subclasses_keep_clone_per_point(self):
        class Custom(DataLoader):
            pass

        train, _ = _loaders()
        custom = Custom(train.dataset, 4)
        a = _worker_loader(custom)
        b = _worker_loader(custom)
        assert a is not custom and b is not custom and a is not b

    def test_parallel_and_stacked_sweeps_share_batch_order(self):
        """Regression (satellite fix): whatever combination of workers and
        stack width runs a sweep, every grid point consumes the same batch
        sequence — so results are interchangeable."""
        serial = _engine(stack=1, workers=0).run(LAMS[:2], warmups=[1])
        pooled = _engine(stack=1, workers=2).run(LAMS[:2], warmups=[1])
        stacked = _engine(stack=2, workers=2).run(LAMS[:2], warmups=[1])
        for pa, pb in zip(serial.points, pooled.points):
            assert pa.loss == pb.loss          # same worker path: exact
        _points_close(serial, stacked)


class TestStackedModelUnit:
    def test_eval_forward_matches_template_bitwise(self):
        model = StackSeed()
        stacked = StackedModel(model, 3)
        stacked.eval()
        model.eval()
        x = np.random.default_rng(5).standard_normal((3, 2, 2, 12))
        out = stacked(Tensor(x))
        for m in range(3):
            ref = model(Tensor(x[m]))
            assert np.allclose(out.data[m], ref.data, **TOL)

    def test_slice_state_round_trip(self):
        stacked = StackedModel(StackSeed(), 2)
        state = stacked.slice_state(0)
        for name in state:
            state[name] = state[name] + 1.0
        stacked.load_slice_state(0, state)
        after = stacked.slice_state(0)
        for name in state:
            assert np.allclose(after[name], state[name])
        untouched = stacked.slice_state(1)
        for name in untouched:
            assert not np.allclose(untouched[name], state[name]) or \
                state[name].size == 0

    def test_frozen_mask_drives_per_slice_dilation(self):
        """StackedTimeMask.current_dilation must answer from the frozen
        mask once frozen, like the sequential TimeMask does — even when
        γ̂ later drifts out of sync with it."""
        from repro.core import StackedPITTrainer as _  # noqa: F401
        from repro.core.stacked import StackedPITConv1d
        stacked = StackedModel(StackSeed(), 2)
        layer = next(m for m in stacked.net.modules()
                     if isinstance(m, StackedPITConv1d))
        layer.mask.gamma_hat.data[0, :] = 0.0        # slice 0 encodes d=8
        layer.mask.gamma_hat.data[1, :] = 1.0        # slice 1 encodes d=1
        before = [layer.mask.current_dilation(i) for i in range(2)]
        layer.freeze()
        layer.mask.gamma_hat.data[...] = 1.0         # drift after freezing
        after = [layer.mask.current_dilation(i) for i in range(2)]
        assert after == before
        assert [layer.effective_params(i) for i in range(2)] == [
            int(layer.mask.current_mask(i).sum())
            * layer.in_channels * layer.out_channels + layer.out_channels
            for i in range(2)]

    def test_sync_template_materializes_slice(self):
        model = StackSeed()
        stacked = StackedModel(model, 2)
        state = stacked.slice_state(1)
        for name in state:
            state[name] = state[name] * 0.5
        stacked.load_slice_state(1, state)
        template = stacked.sync_template(1)
        assert template is model
        for name, p in template.named_parameters():
            assert np.allclose(p.data, state[name])


class TestCLI:
    def test_sweep_accepts_stack_flag(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["sweep", "--lambdas", "0", "--stack", "4"])
        assert args.stack == 4

    def test_stack_default_is_env(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["sweep", "--lambdas", "0"])
        assert args.stack is None              # engine then reads the env
