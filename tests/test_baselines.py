"""Tests for the ProxylessNAS and random-search baselines."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines import (
    ProxylessDilatedConv1d,
    ProxylessTrainer,
    expected_size,
    export_proxyless,
    proxyless_layers,
    proxylessify,
    random_configurations,
    random_search,
)
from repro.core import layer_choices, pit_layers, search_space_size
from repro.data import ArrayDataset, DataLoader
from repro.models import temponet_seed
from repro.nn import CausalConv1d, Module, ReLU, Sequential, mse_loss

RNG = np.random.default_rng(55)


class TinySeed(Module):
    def __init__(self, seed=0):
        super().__init__()
        from repro.core import PITConv1d
        rng = np.random.default_rng(seed)
        self.c1 = PITConv1d(1, 3, rf_max=9, rng=rng)
        self.r = ReLU()
        self.c2 = PITConv1d(3, 1, rf_max=5, rng=rng)

    def forward(self, x):
        return self.c2(self.r(self.c1(x)))


def make_loaders(n=16, t=12, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, t))
    y = np.concatenate([np.zeros((n, 1, 1)), x[:, :, :-1]], axis=2)
    train = ArrayDataset(x[: n // 2], y[: n // 2])
    val = ArrayDataset(x[n // 2:], y[n // 2:])
    return (DataLoader(train, 8, shuffle=True, rng=np.random.default_rng(1)),
            DataLoader(val, 8))


class TestProxylessLayer:
    def test_branch_count_matches_pit_choices(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        assert layer.dilations == (1, 2, 4, 8)
        assert len(layer.branches) == 4

    def test_branches_keep_receptive_field(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=17, rng=np.random.default_rng(0))
        for branch in layer.branches:
            assert branch.receptive_field == 17

    def test_initial_probabilities_uniform(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        assert np.allclose(layer.probabilities(), 0.25)

    def test_forward_shape(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        out = layer(Tensor(RNG.standard_normal((2, 2, 10))))
        assert out.shape == (2, 3, 10)

    def test_eval_mode_uses_argmax(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        layer.alpha.data[...] = [0.0, 5.0, 0.0, 0.0]
        layer.eval()
        x = Tensor(RNG.standard_normal((1, 2, 8)))
        expected = layer.branches[1](x)
        assert np.allclose(layer(x).data, expected.data)
        assert layer.chosen_dilation() == 2

    def test_sampling_disabled_uses_argmax(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        layer.alpha.data[...] = [0.0, 0.0, 3.0, 0.0]
        layer.set_sampling(False)
        layer(Tensor(RNG.standard_normal((1, 2, 8))))
        assert layer._last_index == 2

    def test_alpha_receives_gradient(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        out = layer(Tensor(RNG.standard_normal((1, 2, 8))))
        out.sum().backward()
        assert layer.alpha.grad is not None
        assert np.any(layer.alpha.grad != 0)

    def test_sampled_branch_weights_receive_gradient(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(3))
        out = layer(Tensor(RNG.standard_normal((1, 2, 8))))
        out.sum().backward()
        sampled = layer._last_index
        assert layer.branches[sampled].weight.grad is not None
        for i, branch in enumerate(layer.branches):
            if i != sampled:
                assert branch.weight.grad is None

    def test_branch_sizes_decrease_with_dilation(self):
        layer = ProxylessDilatedConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        sizes = layer.branch_sizes()
        assert all(a > b for a, b in zip(sizes, sizes[1:]))


class TestProxylessify:
    def test_replaces_all_pit_layers(self):
        seed = TinySeed()
        supernet = proxylessify(seed, rng=np.random.default_rng(0))
        assert len(proxyless_layers(supernet)) == 2
        assert pit_layers(supernet) == []
        # Original untouched.
        assert len(pit_layers(seed)) == 2

    def test_same_search_space_as_pit(self):
        seed = temponet_seed(width_mult=0.125, seed=0)
        supernet = proxylessify(seed, rng=np.random.default_rng(0))
        pit_space = search_space_size(seed)
        proxyless_space = 1
        for layer in proxyless_layers(supernet):
            proxyless_space *= len(layer.dilations)
        assert proxyless_space == pit_space

    def test_per_layer_choices_match(self):
        seed = TinySeed()
        supernet = proxylessify(seed, rng=np.random.default_rng(0))
        for pit_layer, px_layer in zip(pit_layers(seed), proxyless_layers(supernet)):
            assert list(px_layer.dilations) == layer_choices(pit_layer)


class TestExpectedSize:
    def test_uniform_alpha_is_mean_size(self):
        seed = TinySeed()
        supernet = proxylessify(seed, rng=np.random.default_rng(0))
        total = expected_size(supernet).item()
        manual = sum(layer.branch_sizes().mean() for layer in proxyless_layers(supernet))
        assert total == pytest.approx(manual)

    def test_differentiable_wrt_alpha(self):
        supernet = proxylessify(TinySeed(), rng=np.random.default_rng(0))
        expected_size(supernet).backward()
        for layer in proxyless_layers(supernet):
            assert layer.alpha.grad is not None

    def test_peaked_alpha_approaches_branch_size(self):
        supernet = proxylessify(TinySeed(), rng=np.random.default_rng(0))
        for layer in proxyless_layers(supernet):
            layer.alpha.data[...] = 0.0
            layer.alpha.data[-1] = 50.0  # max dilation branch
        total = expected_size(supernet).item()
        manual = sum(layer.branch_sizes()[-1] for layer in proxyless_layers(supernet))
        assert total == pytest.approx(manual, rel=1e-6)


class TestExportProxyless:
    def test_export_extracts_argmax_branches(self):
        supernet = proxylessify(TinySeed(), rng=np.random.default_rng(0))
        for layer in proxyless_layers(supernet):
            layer.alpha.data[...] = 0.0
            layer.alpha.data[1] = 5.0
        exported = export_proxyless(supernet)
        assert proxyless_layers(exported) == []
        convs = [m for m in exported.modules()
                 if isinstance(m, CausalConv1d) and m.kernel_size > 1]
        assert all(c.dilation == 2 for c in convs)

    def test_export_forward_matches_argmax_path(self):
        supernet = proxylessify(TinySeed(), rng=np.random.default_rng(0))
        supernet.eval()
        exported = export_proxyless(supernet)
        exported.eval()
        x = Tensor(RNG.standard_normal((1, 1, 10)))
        assert np.allclose(supernet(x).data, exported(x).data)


class TestProxylessTrainer:
    def test_requires_supernet(self):
        with pytest.raises(ValueError):
            ProxylessTrainer(Sequential(ReLU()), mse_loss, lam=0.0)

    def test_full_search_runs(self):
        train, val = make_loaders()
        supernet = proxylessify(TinySeed(), rng=np.random.default_rng(2))
        trainer = ProxylessTrainer(supernet, mse_loss, lam=0.0, warmup_epochs=1,
                                   max_search_epochs=2, search_patience=5,
                                   finetune_epochs=2, finetune_patience=5)
        result = trainer.fit(train, val)
        assert len(result.dilations) == 2
        assert result.params > 0
        assert result.search_seconds > 0
        assert result.finetune_seconds > 0
        assert trainer.derived is not None

    def test_size_pressure_shrinks_architecture(self):
        train, val = make_loaders()
        supernet = proxylessify(TinySeed(seed=1), rng=np.random.default_rng(2))
        trainer = ProxylessTrainer(supernet, mse_loss, lam=10.0, alpha_lr=0.5,
                                   warmup_epochs=0, max_search_epochs=10,
                                   search_patience=10, finetune_epochs=0,
                                   finetune_patience=1)
        result = trainer.fit(train, val)
        # Overwhelming size pressure: every layer picks its max dilation.
        assert result.dilations == (8, 4)


class TestRandomSearch:
    def test_configurations_valid_and_unique(self):
        seed = TinySeed()
        configs = random_configurations(seed, 5, rng=np.random.default_rng(0))
        assert len(set(configs)) == len(configs)
        for config in configs:
            assert config[0] in (1, 2, 4, 8)
            assert config[1] in (1, 2, 4)

    def test_cannot_exceed_space(self):
        seed = TinySeed()
        configs = random_configurations(seed, 100, rng=np.random.default_rng(0))
        assert len(configs) <= 12  # |space| = 4 * 3

    def test_search_returns_trained_results(self):
        train, val = make_loaders()
        results = random_search(TinySeed(), mse_loss, train, val, count=2,
                                epochs=2, rng=np.random.default_rng(0))
        assert len(results) == 2
        for r in results:
            assert np.isfinite(r.best_val)
            assert r.params > 0

    def test_search_does_not_mutate_seed(self):
        train, val = make_loaders()
        seed = TinySeed()
        before = [layer.mask.gamma_hat.data.copy() for layer in pit_layers(seed)]
        random_search(seed, mse_loss, train, val, count=1, epochs=1,
                      rng=np.random.default_rng(0))
        for layer, saved in zip(pit_layers(seed), before):
            assert np.allclose(layer.mask.gamma_hat.data, saved)
