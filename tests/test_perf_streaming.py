"""Perf smoke test: O(K)-per-tick streaming vs naive re-windowing.

Marked ``perf`` and skipped in the tier-1 run; enable with::

    REPRO_RUN_PERF=1 PYTHONPATH=src python -m pytest tests/test_perf_streaming.py -q -s

Times per-tick inference of a dilated TCN with receptive field >= 64 two
ways: the ring-buffer :class:`repro.serving.StreamingExecutor` (one O(K)
kernel call per layer per tick) and the naive deployment loop that shifts
a full receptive-field window and re-runs the whole network every sample.
Asserts the streaming path is at least 5x faster per tick and records
latency/tick plus the sustained streams-per-core budget at the paper's
32 Hz PPG sample rate to ``BENCH_streaming.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core.export import network_receptive_field
from repro.nn import CausalConv1d, ReLU, Sequential
from repro.serving import StreamingExecutor

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(not os.environ.get("REPRO_RUN_PERF"),
                       reason="perf smoke test; set REPRO_RUN_PERF=1 to run"),
]

TICKS = 96
REPS = 5
WARMUP = 1
MIN_SPEEDUP = 5.0
SAMPLE_RATE_HZ = 32.0  # the paper's PPG streaming rate

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_streaming.json")


def make_net():
    rng = np.random.default_rng(0)
    net = Sequential(
        CausalConv1d(4, 32, 5, rng=rng), ReLU(),
        CausalConv1d(32, 32, 5, dilation=4, rng=rng), ReLU(),
        CausalConv1d(32, 32, 5, dilation=16, rng=rng), ReLU(),
        CausalConv1d(32, 8, 1, rng=rng))
    net.eval()
    return net


def _time_streaming(net, samples) -> float:
    executor = StreamingExecutor(net, batch=1)
    best = float("inf")
    for rep in range(WARMUP + REPS):
        executor.reset()
        executor.push(samples[:, :, :network_receptive_field(net)])  # warm
        start = time.perf_counter()
        for t in range(TICKS):
            executor.push(samples[:, :, t: t + 1])
        best = min(best, time.perf_counter() - start)
    return best / TICKS


def _time_naive(net, samples, rf) -> float:
    """The deployment loop streaming replaces: shift a full window by one
    sample and re-run the entire receptive field for every tick."""
    best = float("inf")
    for rep in range(WARMUP + REPS):
        window = samples[:, :, :rf].copy()
        start = time.perf_counter()
        for t in range(TICKS):
            window[:, :, :-1] = window[:, :, 1:]
            window[:, :, -1] = samples[0, :, t]
            with no_grad():
                net(Tensor(window)).data[:, :, -1]
        best = min(best, time.perf_counter() - start)
    return best / TICKS


def test_streaming_beats_rewindowing_by_5x():
    net = make_net()
    rf = network_receptive_field(net)
    assert rf >= 64, "benchmark must cover a non-trivial receptive field"
    rng = np.random.default_rng(1)
    samples = rng.standard_normal((1, 4, rf + TICKS))

    streaming_s = _time_streaming(net, samples)
    naive_s = _time_naive(net, samples, rf)
    speedup = naive_s / streaming_s

    executor = StreamingExecutor(net, batch=1)
    payload = {
        "receptive_field": rf,
        "ticks": TICKS,
        "reps": REPS,
        "streaming_seconds_per_tick": streaming_s,
        "naive_seconds_per_tick": naive_s,
        "speedup": speedup,
        "state_bytes_per_stream": executor.state_bytes(),
        "sample_rate_hz": SAMPLE_RATE_HZ,
        # How many independent 32 Hz sensor streams one core sustains.
        "streams_per_core_32hz": {
            "streaming": 1.0 / (streaming_s * SAMPLE_RATE_HZ),
            "naive": 1.0 / (naive_s * SAMPLE_RATE_HZ),
        },
    }
    with open(os.path.abspath(RESULT_PATH), "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nstreaming {streaming_s * 1e6:.1f} us/tick  "
          f"naive {naive_s * 1e6:.1f} us/tick  speedup {speedup:.1f}x")

    assert speedup >= MIN_SPEEDUP, (
        f"streaming executor only {speedup:.2f}x faster than re-windowing "
        f"(required {MIN_SPEEDUP}x at receptive field {rf})")
