"""Tests for optimizers, schedulers, clipping and early stopping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.optim import (
    Adam,
    CosineAnnealingLR,
    EarlyStopping,
    ReduceLROnPlateau,
    SGD,
    StepLR,
    clip_grad_norm,
)


def quadratic_step(param, optimizer, target=0.0):
    """One optimization step on f(p) = 0.5 * ||p - target||^2."""
    optimizer.zero_grad()
    param.grad = param.data - target
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        opt = SGD([p], lr=0.5)
        for _ in range(50):
            quadratic_step(p, opt)
        assert np.allclose(p.data, 0.0, atol=1e-6)

    def test_plain_sgd_update_rule(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.8)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()   # v=1, p=0.9
        p.grad = np.array([1.0])
        opt.step()   # v=1.9, p=0.71
        assert p.data[0] == pytest.approx(0.71)

    def test_nesterov_differs_from_heavy_ball(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        heavy = SGD([p1], lr=0.1, momentum=0.9)
        nesterov = SGD([p2], lr=0.1, momentum=0.9, nesterov=True)
        for _ in range(3):
            quadratic_step(p1, heavy)
            quadratic_step(p2, nesterov)
        assert p1.data[0] != pytest.approx(p2.data[0])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.95)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            quadratic_step(p, opt)
        assert np.allclose(p.data, 0.0, atol=1e-4)

    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.01, rel=1e-4)

    def test_decoupled_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.5, decoupled=True)
        p.grad = np.array([0.0])
        opt.step()
        # Decoupled decay: p -= lr * wd * p (the Adam update itself is 0).
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_param_groups_have_own_lr(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        opt = Adam([{"params": [p1], "lr": 0.1}, {"params": [p2], "lr": 0.0}])
        for p in (p1, p2):
            p.grad = np.array([1.0])
        opt.step()
        assert p1.data[0] < 1.0
        assert p2.data[0] == 1.0

    def test_zero_grad_clears_all(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p])
        p.grad = np.array([1.0])
        opt.zero_grad()
        assert p.grad is None


class TestSchedulers:
    def test_step_lr(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.get_lr() == pytest.approx(1.0)
        sched.step()
        assert opt.get_lr() == pytest.approx(0.1)

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(SGD([Parameter(np.zeros(1))], lr=1.0), step_size=0)

    def test_cosine_reaches_eta_min(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        for _ in range(10):
            sched.step()
        assert opt.get_lr() == pytest.approx(0.01)

    def test_cosine_monotone_decrease(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.get_lr())
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_plateau_reduces_after_patience(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)
        for _ in range(3):
            sched.step(1.0)  # no improvement
        assert opt.get_lr() == pytest.approx(0.5)

    def test_plateau_improvement_resets(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)
        sched.step(1.1)
        sched.step(0.9)  # improvement
        sched.step(1.0)
        sched.step(1.0)
        assert opt.get_lr() == pytest.approx(1.0)

    def test_plateau_mode_validation(self):
        with pytest.raises(ValueError):
            ReduceLROnPlateau(SGD([Parameter(np.zeros(1))], lr=1.0), mode="bad")


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([1.0, 0.0, 0.0])
        norm = clip_grad_norm([p], max_norm=2.0)
        assert norm == pytest.approx(1.0)
        assert np.allclose(p.grad, [1.0, 0.0, 0.0])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        p1, p2 = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        p1.grad = np.array([3.0])
        p2.grad = np.array([4.0])
        norm = clip_grad_norm([p1, p2], max_norm=5.0)
        assert norm == pytest.approx(5.0)

    def test_ignores_none_grads(self):
        p = Parameter(np.zeros(1))
        assert clip_grad_norm([p], 1.0) == 0.0


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.1)
        assert not stopper.should_stop
        stopper.update(1.2)
        assert stopper.should_stop

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.5)
        stopper.update(0.5)
        stopper.update(0.9)
        assert not stopper.should_stop

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(1.0)
        assert not stopper.update(0.95)  # within min_delta: not an improvement
        assert stopper.should_stop

    def test_max_mode(self):
        stopper = EarlyStopping(patience=1, mode="max")
        stopper.update(0.5)
        assert stopper.update(0.9)
        assert not stopper.should_stop

    def test_best_state_checkpoint(self):
        stopper = EarlyStopping(patience=5)
        stopper.update(1.0, state={"w": np.array([1.0])})
        stopper.update(2.0, state={"w": np.array([2.0])})
        assert stopper.best_state["w"][0] == 1.0

    def test_state_is_deep_copied(self):
        stopper = EarlyStopping(patience=5)
        state = {"w": np.array([1.0])}
        stopper.update(1.0, state=state)
        state["w"][0] = 99.0
        assert stopper.best_state["w"][0] == 1.0

    def test_reset(self):
        stopper = EarlyStopping(patience=1)
        stopper.update(1.0)
        stopper.update(2.0)
        stopper.reset()
        assert not stopper.should_stop
        assert stopper.best is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(mode="bad")
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
